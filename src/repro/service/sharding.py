"""Horizontal sharding across provider groups (scaling out Sec. V).

The paper's deployment is one client in front of one n-provider group;
every table lives, whole, on that group.  This module scales the design
*out*: a :class:`ShardRouter` partitions each table's rows across
several provider groups and fans queries out only to the groups that
can own matching rows.

Two partitioning modes, chosen per table:

* **hash** — row ids map onto a fixed ring of buckets
  (``row_id % n_buckets``), each bucket owned by one group.  Uniform
  spread, no pruning for value predicates.
* **range** — an order-preserving (searchable) partition column's
  *encoded* domain is cut into contiguous half-open ranges, one owner
  each.  The same interval rewrite that pushes range predicates to
  providers (Sec. V-A) then prunes entire groups: a query whose
  rewritten intervals miss a group's range never contacts it.

Cross-shard merging stays exact because shares are linear: COUNT and
SUM partials add, AVG is merged as (sum of SUMs) / (sum of non-null
COUNTs) — the identical numerator and denominator the unsharded path
divides — and MIN/MAX take the extremum of extrema.  MEDIAN is the one
holdout (a median of medians is not a median), so it falls back to
fetching matching rows and reusing the plaintext executor.

Elastic pool operations build on the share-rebuild machinery of
:mod:`repro.client.repair`.  All groups are constructed from **one**
:class:`~repro.core.secrets.ClientSecrets`, so a row can be re-homed by
rebuilding its shares for the destination's evaluation points — the
secret polynomial is extended, never reconstructed.  Migration runs
online behind a staging table:

1. *(no lock)* scan the source group through its read quorum, rebuild
   the moving rows, upload them into a provider-side staging table at
   the destination — invisible to queries;
2. *(write lock)* if the source table's epoch moved, redo the copy
   inside the blocking window; then ``merge_table`` flips the staging
   rows live provider-locally (no row payload crosses the network
   while queries are blocked), ownership flips in the shard map, and
   the source rows are deleted.  Both sides' epochs bump, retiring any
   cached plans and rows.

A reader therefore never observes a half-moved row: before the flip the
rows are only in the source's live table (staging is unqueryable);
after it, only in the destination's.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..client.datasource import DataSource, _project_qualified
from ..core import kernels
from ..client.repair import rebuild_rows_for_targets
from ..client.rewriter import (
    RewrittenPredicate,
    rewrite_predicate,
    split_join_predicate,
)
from ..core.scheme import ShareRow, TableSharing
from ..core.secrets import generate_client_secrets
from ..errors import (
    ConfigurationError,
    QueryError,
    SchemaError,
    ServiceError,
    ServiceOverloadedError,
    UnsupportedQueryError,
)
from ..providers.cluster import ProviderCluster
from ..sqlengine.executor import compute_aggregate, compute_group_aggregate
from ..sqlengine.query import (
    Aggregate,
    AggregateFunc,
    Delete,
    Insert,
    JoinSelect,
    Select,
    Update,
)
from ..sqlengine.schema import TableSchema, python_value_sort_key
from ..sqlengine.sqlparser import parse_sql
from ..sqlengine.table import Table
from .admission import AdmissionController
from .service import QueryService, ServiceStats, TableLock
from .session import Session, SessionManager

Row = Dict[str, object]

#: Default hash-ring size.  Many more buckets than groups, so rebalancing
#: moves ~1/n_groups of the data instead of re-hashing everything.
DEFAULT_HASH_BUCKETS = 64

#: Suffix of the provider-side staging table an online migration uploads
#: into.  The client never registers a sharing under this name, so the
#: staged rows are unreachable by any query until ``merge_table`` flips
#: them live.
MIGRATION_STAGING_SUFFIX = "__incoming"


# ------------------------------------------------------------- shard maps --


class HashShardMap:
    """Row-id hash partitioning over a fixed bucket ring."""

    mode = "hash"

    def __init__(self, buckets: Sequence[int]) -> None:
        if not buckets:
            raise ConfigurationError("a hash shard map needs >= 1 bucket")
        self.buckets: List[int] = list(buckets)

    def group_for_row_id(self, row_id: int) -> int:
        return self.buckets[row_id % len(self.buckets)]

    def groups_for_row_ids(self, row_ids: Sequence[int]) -> List[int]:
        """Batch :meth:`group_for_row_id` (vectorized when numpy is on)."""
        np = kernels.numpy_module()
        if np is not None:
            try:
                rids = np.asarray(row_ids, dtype=np.int64)
            except (OverflowError, TypeError, ValueError):
                rids = None
            if rids is not None and (rids.shape[0] == 0 or int(rids.min()) >= 0):
                buckets = np.asarray(self.buckets, dtype=np.int64)
                return buckets[rids % len(self.buckets)].tolist()
        return [self.group_for_row_id(rid) for rid in row_ids]

    def owning_groups(self) -> List[int]:
        return sorted(set(self.buckets))

    def buckets_of(self, group: int) -> List[int]:
        return [b for b, owner in enumerate(self.buckets) if owner == group]

    def to_dict(self) -> Dict[str, object]:
        return {"mode": self.mode, "buckets": list(self.buckets)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HashShardMap":
        return cls([int(b) for b in payload["buckets"]])


class RangeShardMap:
    """Contiguous half-open ranges of a partition column's encoded domain.

    ``ranges`` is ``[(lo, hi, group), ...]`` with ``lo <= key < hi``,
    sorted, gap-free, and jointly covering ``[domain.lo, domain.hi + 1)``
    — every encodable key has exactly one owner, which is what makes
    per-row routing total and disjoint.
    """

    mode = "range"

    def __init__(
        self, partition_column: str, ranges: Sequence[Sequence[int]]
    ) -> None:
        cleaned = [
            (int(lo), int(hi), int(group)) for lo, hi, group in ranges
        ]
        cleaned = [(lo, hi, g) for lo, hi, g in cleaned if lo < hi]
        if not cleaned:
            raise ConfigurationError("a range shard map needs >= 1 range")
        cleaned.sort()
        for (_, hi, _), (lo, _, _) in zip(cleaned, cleaned[1:]):
            if hi != lo:
                raise ConfigurationError(
                    f"shard ranges must tile the domain without gaps or "
                    f"overlaps; found boundary mismatch {hi} != {lo}"
                )
        self.partition_column = partition_column
        self.ranges: List[Tuple[int, int, int]] = cleaned

    @property
    def lo(self) -> int:
        return self.ranges[0][0]

    @property
    def hi(self) -> int:
        return self.ranges[-1][1] - 1

    def group_for_key(self, key: int) -> int:
        for lo, hi, group in self.ranges:
            if lo <= key < hi:
                return group
        raise QueryError(
            f"key {key} outside the sharded domain "
            f"[{self.lo}, {self.hi}] of column {self.partition_column!r}"
        )

    def groups_for_interval(self, low: int, high: int) -> List[int]:
        """Owners of ``[low, high]`` (inclusive, encoded domain)."""
        return sorted(
            {
                group
                for lo, hi, group in self.ranges
                if lo <= high and low < hi
            }
        )

    def owning_groups(self) -> List[int]:
        return sorted({group for _, _, group in self.ranges})

    def ranges_of(self, group: int) -> List[Tuple[int, int]]:
        return [(lo, hi) for lo, hi, g in self.ranges if g == group]

    def split_at(self, key: int, group: int) -> None:
        """Give ``[key, hi)`` of the range containing ``key`` to ``group``."""
        for position, (lo, hi, owner) in enumerate(self.ranges):
            if lo <= key < hi:
                if key == lo:
                    self.ranges[position] = (lo, hi, group)
                else:
                    self.ranges[position : position + 1] = [
                        (lo, key, owner),
                        (key, hi, group),
                    ]
                self.normalise()
                return
        raise ConfigurationError(f"split key {key} outside the sharded domain")

    def reassign(self, lo: int, group: int) -> None:
        """Reassign the range starting at ``lo`` to ``group``."""
        for position, (range_lo, hi, _) in enumerate(self.ranges):
            if range_lo == lo:
                self.ranges[position] = (lo, hi, group)
                self.normalise()
                return
        raise ConfigurationError(f"no shard range starts at {lo}")

    def normalise(self) -> None:
        """Merge adjacent ranges with the same owner."""
        merged: List[Tuple[int, int, int]] = []
        for lo, hi, group in self.ranges:
            if merged and merged[-1][2] == group and merged[-1][1] == lo:
                merged[-1] = (merged[-1][0], hi, group)
            else:
                merged.append((lo, hi, group))
        self.ranges = merged

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "partition_column": self.partition_column,
            "ranges": [list(r) for r in self.ranges],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RangeShardMap":
        return cls(str(payload["partition_column"]), payload["ranges"])


def shard_map_from_dict(payload: Dict[str, object]):
    """Inverse of ``to_dict`` for either map kind (snapshot restore)."""
    mode = payload.get("mode")
    if mode == "hash":
        return HashShardMap.from_dict(payload)
    if mode == "range":
        return RangeShardMap.from_dict(payload)
    raise ConfigurationError(f"unknown shard map mode {mode!r}")


# ---------------------------------------------------------- partial merges --
#
# Pure functions over per-shard partial results.  Soundness arguments sit
# with each; the property suite checks them against the plaintext
# executor on randomly partitioned row sets.


def merge_counts(partials: Sequence[Optional[int]]) -> int:
    """COUNT partials add — shards partition the matching rows."""
    return sum(int(p) for p in partials if p is not None)


def merge_sums(partials: Sequence[object]) -> Optional[object]:
    """SUM partials add; all-NULL shards contribute nothing.

    ``None`` (no non-null value anywhere) stays ``None``, matching the
    unsharded SQL convention.
    """
    present = [p for p in partials if p is not None]
    if not present:
        return None
    total = present[0]
    for value in present[1:]:
        total = total + value
    return total


def merge_extremum(
    partials: Sequence[object], func: AggregateFunc
) -> Optional[object]:
    """MIN/MAX of per-shard extrema is the global extremum."""
    present = [p for p in partials if p is not None]
    if not present:
        return None
    return min(present) if func is AggregateFunc.MIN else max(present)


def merge_avg(
    pairs: Sequence[Tuple[Optional[object], Optional[int]]]
) -> Optional[object]:
    """AVG from per-shard (SUM, non-null COUNT) pairs.

    Dividing the merged sum by the merged count reproduces the unsharded
    ``total / len(values)`` *exactly* — same numerator, same denominator,
    same single division — so even float results are bit-identical.
    """
    total = merge_sums([s for s, _ in pairs])
    count = merge_counts([c for _, c in pairs])
    if count == 0 or total is None:
        return None
    return total / count


def merge_grouped(
    aggregate: Aggregate,
    group_column: str,
    shard_results: Sequence[List[Row]],
) -> List[Row]:
    """Merge per-shard grouped COUNT/SUM/MIN/MAX results by group key."""
    label = aggregate.func.value
    merged: Dict[object, List[object]] = {}
    for result in shard_results:
        for row in result:
            merged.setdefault(row[group_column], []).append(row[label])
    out: List[Row] = []
    for key in sorted(merged):
        values = merged[key]
        if aggregate.func is AggregateFunc.COUNT:
            value: object = merge_counts(values)
        elif aggregate.func is AggregateFunc.SUM:
            value = merge_sums(values)
        else:
            value = merge_extremum(values, aggregate.func)
        out.append({group_column: key, label: value})
    return out


def merge_grouped_avg(
    group_column: str,
    sum_results: Sequence[List[Row]],
    count_results: Sequence[List[Row]],
) -> List[Row]:
    """Merge grouped AVG from per-shard grouped SUMs and non-null COUNTs."""
    totals: Dict[object, object] = {}
    counts: Dict[object, int] = {}
    for result in sum_results:
        for row in result:
            if row["sum"] is not None:
                key = row[group_column]
                totals[key] = (
                    row["sum"] if key not in totals else totals[key] + row["sum"]
                )
    for result in count_results:
        for row in result:
            key = row[group_column]
            counts[key] = counts.get(key, 0) + int(row["count"])
    out: List[Row] = []
    for key in sorted(counts):
        count = counts[key]
        value = None if count == 0 or key not in totals else totals[key] / count
        out.append({group_column: key, "avg": value})
    return out


def rebalance_plan(
    buckets: Sequence[int], active: Sequence[int]
) -> Dict[Tuple[int, int], List[int]]:
    """Minimal-move plan spreading ``buckets`` evenly over ``active`` groups.

    Returns ``{(src_group, dst_group): [bucket, ...]}``.  Buckets owned
    by non-active groups always move; active groups shed only their
    surplus above ``len(buckets) // len(active)`` (+1 for the remainder,
    granted to the lowest group indexes), so the plan never shuffles a
    bucket between two under-target groups.
    """
    if not active:
        raise ConfigurationError("rebalance needs >= 1 active group")
    ordered = sorted(set(active))
    held: Dict[int, List[int]] = {g: [] for g in ordered}
    surplus: List[Tuple[int, int]] = []
    for bucket, owner in enumerate(buckets):
        if owner in held:
            held[owner].append(bucket)
        else:
            surplus.append((owner, bucket))
    base, remainder = divmod(len(buckets), len(ordered))
    desired = {
        g: base + (1 if position < remainder else 0)
        for position, g in enumerate(ordered)
    }
    for g in ordered:
        extra = len(held[g]) - desired[g]
        if extra > 0:
            surplus.extend((g, bucket) for bucket in held[g][-extra:])
    plan: Dict[Tuple[int, int], List[int]] = {}
    for g in ordered:
        need = desired[g] - min(len(held[g]), desired[g])
        for _ in range(need):
            if not surplus:
                break
            src, bucket = surplus.pop(0)
            plan.setdefault((src, g), []).append(bucket)
    return plan


# ------------------------------------------------------------ the router --


@dataclass
class ShardGroup:
    """One provider group participating in a sharded deployment."""

    name: str
    source: DataSource
    retired: bool = False
    service: Optional[QueryService] = None

    @property
    def cluster(self):
        return self.source.cluster

    @property
    def network(self):
        return self.source.cluster.network


class ShardRouter:
    """Route, fan out, and merge queries over sharded provider groups.

    Presents the same ``execute``/``sql``/session surface as
    :class:`~repro.service.service.QueryService`, plus the elastic pool
    operations (:meth:`add_group`, :meth:`split_shard`,
    :meth:`rebalance`, :meth:`drain_group`).

    All groups must be built from one shared
    :class:`~repro.core.secrets.ClientSecrets`: identical evaluation
    points and hash keys are what make share rows *portable* between
    groups (cross-group migration rebuilds shares without ever touching
    plaintext).
    """

    def __init__(
        self,
        sources: Sequence[DataSource],
        mode: str = "hash",
        n_buckets: int = DEFAULT_HASH_BUCKETS,
        seed: int = 0,
    ) -> None:
        if not sources:
            raise ConfigurationError("a shard router needs >= 1 group")
        if mode not in ("hash", "range"):
            raise ConfigurationError(
                f"unknown sharding mode {mode!r} (hash or range)"
            )
        if n_buckets < 1:
            raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
        first = sources[0]
        for source in sources[1:]:
            if (
                source.secrets.evaluation_points
                != first.secrets.evaluation_points
                or source.secrets.hash_key != first.secrets.hash_key
            ):
                raise ConfigurationError(
                    "shard groups must share one client secret set — "
                    "cross-group share rebuilds rely on identical "
                    "evaluation points and hash keys"
                )
            if (
                source.threshold != first.threshold
                or source.cluster.n_providers != first.cluster.n_providers
            ):
                raise ConfigurationError(
                    "shard groups must agree on (n, k); mixed geometries "
                    "would make rebuilt rows unreadable"
                )
            if source.namespace != first.namespace:
                raise ConfigurationError(
                    "shard groups must share a namespace"
                )
        self.groups: List[ShardGroup] = [
            ShardGroup(f"group{index}", source)
            for index, source in enumerate(sources)
        ]
        self.default_mode = mode
        self.n_buckets = n_buckets
        self.threshold = first.threshold
        self.secrets = first.secrets
        self._seed = seed
        self._maps: Dict[str, object] = {}
        self._next_row_id: Dict[str, int] = {}
        self._row_id_lock = threading.Lock()
        self._lock = TableLock()
        self._stats_lock = threading.Lock()
        self.stats = ServiceStats()
        self.admission: Optional[AdmissionController] = None
        self.sessions = SessionManager(self)
        #: :class:`~repro.service.session.Session` allocates row ids
        #: through ``service.source.reserve_row_ids`` — the router is its
        #: own source, so session id blocks come from the router-global
        #: counter and never collide across groups
        self.source = self
        self._service_params: Optional[Tuple[int, int, int, bool]] = None
        self.migrations = 0

    # ------------------------------------------------------------- building --

    @staticmethod
    def _group_seed(seed: int, index: int) -> int:
        # distinct, deterministic per-group RNG streams from one seed
        return (seed * 1_000_003 + 7_919 * index + 1) % (1 << 62)

    @classmethod
    def build(
        cls,
        n_groups: int = 2,
        providers_per_group: int = 5,
        threshold: int = 3,
        seed: int = 0,
        mode: str = "hash",
        n_buckets: int = DEFAULT_HASH_BUCKETS,
        dispatch: str = "parallel",
    ) -> "ShardRouter":
        """Construct ``n_groups`` fresh provider groups sharing one secret."""
        if n_groups < 1:
            raise ConfigurationError(f"n_groups must be >= 1, got {n_groups}")
        secrets = generate_client_secrets(providers_per_group, seed)
        sources = []
        for index in range(n_groups):
            cluster = ProviderCluster(
                providers_per_group,
                threshold,
                dispatch=dispatch,
                name_prefix=f"g{index}/",
            )
            sources.append(
                DataSource(
                    cluster,
                    seed=cls._group_seed(seed, index),
                    secrets=secrets,
                )
            )
        return cls(sources, mode=mode, n_buckets=n_buckets, seed=seed)

    @classmethod
    def restore(
        cls,
        sources: Sequence[DataSource],
        mode: str,
        maps: Dict[str, Dict[str, object]],
        next_row_ids: Dict[str, int],
        retired: Sequence[int] = (),
        n_buckets: int = DEFAULT_HASH_BUCKETS,
        seed: int = 0,
    ) -> "ShardRouter":
        """Reassemble a router from snapshot state (see ``persistence``)."""
        router = cls(sources, mode=mode, n_buckets=n_buckets, seed=seed)
        for index in retired:
            router.groups[index].retired = True
        router._maps = {
            name: shard_map_from_dict(payload)
            for name, payload in maps.items()
        }
        router._next_row_id = {
            name: int(value) for name, value in next_row_ids.items()
        }
        return router

    # ---------------------------------------------------------- introspection --

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def active_group_indexes(self) -> List[int]:
        return [i for i, g in enumerate(self.groups) if not g.retired]

    def shard_map(self, table: str):
        try:
            return self._maps[table]
        except KeyError:
            raise SchemaError(f"table {table!r} is not sharded here") from None

    def table_names(self) -> List[str]:
        return sorted(self._maps)

    def _sharing(self, table: str) -> TableSharing:
        # group 0 always carries every table's sharing (schemas are
        # registered on all groups, retired ones included)
        return self.groups[0].source.sharing(table)

    def shard_row_ids(self, table: str) -> Dict[int, List[int]]:
        """``{group_index: sorted row ids}`` actually held per group.

        Ground truth for the "no row lost, no row duplicated" invariants
        the elastic tests and the benchmark's ``--check`` gate assert.
        """
        out: Dict[int, List[int]] = {}
        for index in self.active_group_indexes():
            aligned = self.groups[index].source.scan_share_rows(table)
            out[index] = sorted(
                rid
                for rid, share_rows in aligned.items()
                if len(share_rows) >= self.threshold
            )
        return out

    # ----------------------------------------------------------------- DDL --

    def create_table(
        self,
        schema: TableSchema,
        mode: Optional[str] = None,
        partition_column: Optional[str] = None,
        boundaries: Optional[Sequence[object]] = None,
    ) -> None:
        """Create a table on every group and install its shard map.

        ``boundaries`` (range mode) are plaintext cut values — group i
        owns ``[boundary[i-1], boundary[i])``; omitted, the encoded
        domain is cut into equal slices over the active groups.
        """
        self._lock.acquire_write()
        try:
            self._create_table(schema, mode, partition_column, boundaries)
        finally:
            self._lock.release_write()

    def _create_table(
        self,
        schema: TableSchema,
        mode: Optional[str],
        partition_column: Optional[str],
        boundaries: Optional[Sequence[object]],
    ) -> None:
        mode = mode or self.default_mode
        if mode not in ("hash", "range"):
            raise ConfigurationError(f"unknown sharding mode {mode!r}")
        if schema.name in self._maps:
            raise SchemaError(f"table {schema.name!r} already sharded")
        active = self.active_group_indexes()
        for index, group in enumerate(self.groups):
            if group.retired:
                # keep the sharing registered so a later un-drain or
                # restore can still resolve schemas; no provider RPC
                group.source.restore_table(schema, 0)
            else:
                group.source.create_table(schema)
        if mode == "hash":
            buckets = [
                active[position % len(active)]
                for position in range(self.n_buckets)
            ]
            shard_map: object = HashShardMap(buckets)
        else:
            column = partition_column or schema.primary_key
            if column is None:
                raise SchemaError(
                    f"range-sharding {schema.name!r} needs a partition "
                    "column (none given, no primary key)"
                )
            sharing = self._sharing(schema.name)
            if not sharing.is_searchable(column):
                raise SchemaError(
                    f"partition column {column!r} must be searchable "
                    "(order-preserving shares are what let range "
                    "predicates prune shards)"
                )
            domain = sharing.op_scheme(column).domain
            if boundaries is not None:
                cuts = sorted(
                    self._encode_partition_key(sharing, column, value)
                    for value in boundaries
                )
                if len(cuts) != len(active) - 1:
                    raise ConfigurationError(
                        f"{len(active)} active groups need "
                        f"{len(active) - 1} boundaries, got {len(cuts)}"
                    )
            else:
                cuts = [
                    domain.lo + (domain.size * (j + 1)) // len(active)
                    for j in range(len(active) - 1)
                ]
            edges = [domain.lo] + cuts + [domain.hi + 1]
            shard_map = RangeShardMap(
                column,
                [
                    (edges[j], edges[j + 1], active[j])
                    for j in range(len(active))
                ],
            )
        self._maps[schema.name] = shard_map
        self._next_row_id[schema.name] = 0

    def outsource_table(
        self,
        table: Table,
        mode: Optional[str] = None,
        partition_column: Optional[str] = None,
        boundaries: Optional[Sequence[object]] = None,
        batch_size: int = 500,
    ) -> int:
        """Create + bulk-load a plaintext table across the groups."""
        self.create_table(table.schema, mode, partition_column, boundaries)
        rows = table.rows()
        for start in range(0, len(rows), batch_size):
            self.insert_many(table.schema.name, rows[start : start + batch_size])
        return len(rows)

    # --------------------------------------------------------------- routing --

    @staticmethod
    def _encode_partition_key(
        sharing: TableSharing, column: str, value: object
    ) -> int:
        encoded = sharing.encode(column, value)
        if encoded is None:
            raise QueryError(
                f"cannot encode {value!r} for partition column {column!r}"
            )
        return encoded

    def _read_owners(
        self, shard_map: object, rewritten: RewrittenPredicate
    ) -> List[int]:
        """Groups that can hold a matching row, after interval pruning."""
        if rewritten.provably_empty:
            return []
        owners = shard_map.owning_groups()
        if isinstance(shard_map, RangeShardMap):
            intervals = [
                interval
                for interval in rewritten.intervals
                if interval.column == shard_map.partition_column
            ]
            for interval in intervals:
                hit = shard_map.groups_for_interval(
                    interval.low, interval.high
                )
                owners = [g for g in owners if g in hit]
        return owners

    def _owner_for_row(
        self, shard_map: object, table: str, row_id: int, row: Row
    ) -> int:
        if isinstance(shard_map, HashShardMap):
            return shard_map.group_for_row_id(row_id)
        value = row.get(shard_map.partition_column)
        if value is None:
            raise QueryError(
                f"cannot route a row with NULL partition column "
                f"{shard_map.partition_column!r} of {table!r}"
            )
        sharing = self._sharing(table)
        encoded = self._encode_partition_key(
            sharing, shard_map.partition_column, value
        )
        return shard_map.group_for_key(encoded)

    def _partition_key(
        self, sharing: TableSharing, column: str, share_rows: Dict[int, ShareRow]
    ) -> Optional[int]:
        """A row's encoded partition key, robustly from its OP shares."""
        op = sharing.op_scheme(column)
        non_null = {
            index: row.get(column)
            for index, row in share_rows.items()
            if row.get(column) is not None
        }
        if not non_null:
            return None
        return op.reconstruct_robust(non_null)

    # ---------------------------------------------------------------- writes --

    def reserve_row_ids(self, table: str, count: int) -> int:
        """Router-global row-id block (sessions allocate through this)."""
        if count < 1:
            raise QueryError(f"cannot reserve {count} row ids")
        self.shard_map(table)
        with self._row_id_lock:
            start = self._next_row_id.get(table, 0)
            self._next_row_id[table] = start + count
        return start

    def insert_many(
        self,
        table: str,
        rows: Sequence[Row],
        row_ids: Optional[Sequence[int]] = None,
    ) -> List[int]:
        self._lock.acquire_write()
        try:
            return self._insert_many(table, rows, row_ids)
        finally:
            self._lock.release_write()

    def _insert_many(
        self,
        table: str,
        rows: Sequence[Row],
        row_ids: Optional[Sequence[int]],
    ) -> List[int]:
        shard_map = self.shard_map(table)
        if not rows:
            return []
        if row_ids is None:
            start = self.reserve_row_ids(table, len(rows))
            row_ids = list(range(start, start + len(rows)))
        elif len(row_ids) != len(rows):
            raise QueryError(
                f"{len(rows)} rows but {len(row_ids)} row ids"
            )
        per_group: Dict[int, Tuple[List[Row], List[int]]] = {}
        if isinstance(shard_map, HashShardMap):
            # one batched ring lookup instead of a per-row owner probe
            owners = shard_map.groups_for_row_ids(row_ids)
        else:
            owners = [
                self._owner_for_row(shard_map, table, row_id, row)
                for row_id, row in zip(row_ids, rows)
            ]
        for row_id, row, owner in zip(row_ids, rows, owners):
            bucket = per_group.setdefault(owner, ([], []))
            bucket[0].append(row)
            bucket[1].append(row_id)
        for owner in sorted(per_group):
            group_rows, group_ids = per_group[owner]
            self.groups[owner].source.insert_many(table, group_rows, group_ids)
        return list(row_ids)

    def _update(self, query: Update) -> int:
        shard_map = self.shard_map(query.table)
        if (
            isinstance(shard_map, RangeShardMap)
            and shard_map.partition_column in query.assignments
        ):
            raise UnsupportedQueryError(
                f"updating range-partition column "
                f"{shard_map.partition_column!r} would re-home rows across "
                "shard groups; DELETE + INSERT instead"
            )
        sharing = self._sharing(query.table)
        rewritten = rewrite_predicate(query.where.bind(sharing.schema), sharing)
        total = 0
        for owner in self._read_owners(shard_map, rewritten):
            total += self.groups[owner].source.update(query)
        return total

    def _delete(self, query: Delete) -> int:
        shard_map = self.shard_map(query.table)
        sharing = self._sharing(query.table)
        rewritten = rewrite_predicate(query.where.bind(sharing.schema), sharing)
        total = 0
        for owner in self._read_owners(shard_map, rewritten):
            total += self.groups[owner].source.delete(query)
        return total

    def update(self, query: Update) -> int:
        self._lock.acquire_write()
        try:
            return self._update(query)
        finally:
            self._lock.release_write()

    def delete(self, query: Delete) -> int:
        self._lock.acquire_write()
        try:
            return self._delete(query)
        finally:
            self._lock.release_write()

    # ----------------------------------------------------------------- reads --

    def select(self, query: Select):
        self._lock.acquire_read()
        try:
            return self._select(query)
        finally:
            self._lock.release_read()

    def _select(self, query: Select):
        sharing = self._sharing(query.table)
        shard_map = self.shard_map(query.table)
        rewritten = rewrite_predicate(query.where.bind(sharing.schema), sharing)
        owners = self._read_owners(shard_map, rewritten)
        telemetry.count(
            "shard.fanout", max(len(owners), 1), table=query.table
        )
        if not owners:
            if query.is_grouped:
                return []
            if query.is_aggregate:
                return compute_aggregate(query.aggregate, [])
            return []
        if len(owners) == 1:
            return self.groups[owners[0]].source.select(query)
        if query.is_grouped:
            return self._grouped_multi(query, owners)
        if query.is_aggregate:
            return self._aggregate_multi(query, owners)
        return self._rows_multi(sharing, query, owners)

    def _rows_multi(
        self, sharing: TableSharing, query: Select, owners: List[int]
    ) -> List[Row]:
        # each shard returns its own top-limit superset; the global
        # order/limit/projection are reapplied after the concat
        shard_query = replace(query, columns=())
        rows: List[Row] = []
        for owner in owners:
            rows.extend(self.groups[owner].source.select(shard_query))
        if query.order_by is not None:
            column = sharing.schema.column(query.order_by)
            rows.sort(
                key=lambda row: python_value_sort_key(
                    column, row.get(query.order_by)
                ),
                reverse=query.descending,
            )
        if query.limit is not None:
            rows = rows[: query.limit]
        if query.columns:
            for name in query.columns:
                sharing.schema.column(name)
            rows = [
                {name: row[name] for name in query.columns} for row in rows
            ]
        return rows

    def _aggregate_multi(self, query: Select, owners: List[int]):
        aggregate = query.aggregate
        if aggregate.func is AggregateFunc.MEDIAN:
            # a median of shard medians is not the median; fall back to
            # fetching the matching column values and reusing the
            # plaintext executor
            fetch = replace(
                query, aggregate=None, columns=(aggregate.column,)
            )
            rows: List[Row] = []
            for owner in owners:
                rows.extend(self.groups[owner].source.select(fetch))
            return compute_aggregate(aggregate, rows)
        if aggregate.func is AggregateFunc.AVG:
            pairs = []
            for owner in owners:
                source = self.groups[owner].source
                shard_sum = source.select(
                    replace(
                        query,
                        aggregate=Aggregate(AggregateFunc.SUM, aggregate.column),
                    )
                )
                shard_count = source.select(
                    replace(
                        query,
                        aggregate=Aggregate(
                            AggregateFunc.COUNT, aggregate.column
                        ),
                    )
                )
                pairs.append((shard_sum, shard_count))
            return merge_avg(pairs)
        partials = [
            self.groups[owner].source.select(query) for owner in owners
        ]
        if aggregate.func is AggregateFunc.COUNT:
            return merge_counts(partials)
        if aggregate.func is AggregateFunc.SUM:
            return merge_sums(partials)
        return merge_extremum(partials, aggregate.func)

    def _grouped_multi(self, query: Select, owners: List[int]) -> List[Row]:
        aggregate = query.aggregate
        group_column = query.group_by
        if aggregate.func is AggregateFunc.MEDIAN:
            fetch = replace(
                query,
                aggregate=None,
                group_by=None,
                columns=(aggregate.column, group_column),
            )
            rows: List[Row] = []
            for owner in owners:
                rows.extend(self.groups[owner].source.select(fetch))
            return compute_group_aggregate(aggregate, group_column, rows)
        if aggregate.func is AggregateFunc.AVG:
            sums = []
            counts = []
            for owner in owners:
                source = self.groups[owner].source
                sums.append(
                    source.select(
                        replace(
                            query,
                            aggregate=Aggregate(
                                AggregateFunc.SUM, aggregate.column
                            ),
                        )
                    )
                )
                counts.append(
                    source.select(
                        replace(
                            query,
                            aggregate=Aggregate(
                                AggregateFunc.COUNT, aggregate.column
                            ),
                        )
                    )
                )
            return merge_grouped_avg(group_column, sums, counts)
        partials = [
            self.groups[owner].source.select(query) for owner in owners
        ]
        return merge_grouped(aggregate, group_column, partials)

    def join(self, query: JoinSelect) -> List[Row]:
        self._lock.acquire_read()
        try:
            return self._join(query)
        finally:
            self._lock.release_read()

    def _join(self, query: JoinSelect) -> List[Row]:
        left_sharing = self._sharing(query.left_table)
        right_sharing = self._sharing(query.right_table)
        left_pred, right_pred, residual = split_join_predicate(
            query.where, query.left_table, query.right_table
        )
        left_rewritten = rewrite_predicate(
            left_pred.bind(left_sharing.schema), left_sharing
        )
        right_rewritten = rewrite_predicate(
            right_pred.bind(right_sharing.schema), right_sharing
        )
        left_owners = self._read_owners(
            self.shard_map(query.left_table), left_rewritten
        )
        right_owners = self._read_owners(
            self.shard_map(query.right_table), right_rewritten
        )
        if not left_owners or not right_owners:
            return []
        if len(left_owners) == 1 and left_owners == right_owners:
            # co-located: the one owning group can run its native join
            # protocol (including the provider-side intersection path)
            return self.groups[left_owners[0]].source.join(query)
        left_rows = self._select(
            Select(query.left_table, where=left_pred)
        )
        right_rows = self._select(
            Select(query.right_table, where=right_pred)
        )
        by_key: Dict[object, List[Row]] = {}
        for row in right_rows:
            key = row.get(query.right_column)
            if key is not None:
                by_key.setdefault(key, []).append(row)
        joined: List[Row] = []
        for left_row in left_rows:
            key = left_row.get(query.left_column)
            if key is None:
                continue
            for right_row in by_key.get(key, ()):
                combined = {
                    f"{query.left_table}.{name}": value
                    for name, value in left_row.items()
                }
                combined.update(
                    {
                        f"{query.right_table}.{name}": value
                        for name, value in right_row.items()
                    }
                )
                if residual.matches(combined):
                    joined.append(combined)
        return _project_qualified(joined, query.columns)

    # ------------------------------------------------------------- execution --

    def execute(self, query, session: Optional[Session] = None):
        """Admit, lock, route one statement (SQL text or AST node)."""
        statement = parse_sql(query) if isinstance(query, str) else query
        is_read = isinstance(statement, (Select, JoinSelect))
        if self.admission is not None:
            try:
                self.admission.acquire()
            except ServiceOverloadedError:
                if session is not None:
                    session.record(error=True, rejected=True)
                raise
        try:
            if is_read:
                self._lock.acquire_read()
            else:
                self._lock.acquire_write()
            try:
                with telemetry.span(
                    "shard.query",
                    write=not is_read,
                    client=None if session is None else session.client_id,
                ):
                    result = self._run(statement, session)
            except BaseException:
                if session is not None:
                    session.record(error=True)
                with self._stats_lock:
                    self.stats.failed += 1
                raise
            finally:
                if is_read:
                    self._lock.release_read()
                else:
                    self._lock.release_write()
        finally:
            if self.admission is not None:
                self.admission.release()
        returned = len(result) if isinstance(result, list) else 0
        written = result if isinstance(result, int) and not is_read else 0
        if session is not None:
            session.record(rows_returned=returned, rows_written=written)
        with self._stats_lock:
            self.stats.completed += 1
            self.stats.rows_returned += returned
            self.stats.rows_written += written
        return result

    def _run(self, statement, session: Optional[Session]):
        if isinstance(statement, Insert):
            row_ids = (
                session.allocate_row_ids(statement.table, 1)
                if session is not None
                else None
            )
            self._insert_many(statement.table, [statement.row], row_ids)
            return 1
        if isinstance(statement, Select):
            return self._select(statement)
        if isinstance(statement, JoinSelect):
            return self._join(statement)
        if isinstance(statement, Update):
            return self._update(statement)
        if isinstance(statement, Delete):
            return self._delete(statement)
        raise QueryError(
            f"unsupported statement {type(statement).__name__}"
        )

    def sql(self, text: str):
        return self.execute(text)

    def _single_owner(self, statement) -> Optional[int]:
        """The sole owning group of a read, or None if it fans out."""
        if not isinstance(statement, Select):
            return None
        sharing = self._sharing(statement.table)
        rewritten = rewrite_predicate(
            statement.where.bind(sharing.schema), sharing
        )
        owners = self._read_owners(self.shard_map(statement.table), rewritten)
        return owners[0] if len(owners) == 1 else None

    def execute_wave(self, statements: List[str]) -> List[object]:
        """Read-only wave: single-owner reads run per group, in parallel.

        Each group's slice goes through its attached service's
        :meth:`~repro.service.service.QueryService.run_wave`, so the
        fan-out batcher coalesces that group's provider rounds exactly as
        in the unsharded service.  Groups run on parallel threads (they
        are independent deployments), which is what the benchmark's
        modelled-latency accounting takes the max over.  Multi-owner
        reads run inline after the per-group waves.
        """
        if not statements:
            return []
        parsed = [parse_sql(text) for text in statements]
        for text, statement in zip(statements, parsed):
            if not isinstance(statement, (Select, JoinSelect)):
                raise ServiceError(
                    f"execute_wave() is read-only; got a "
                    f"{type(statement).__name__}: {text!r}"
                )
        self._lock.acquire_read()
        try:
            per_group: Dict[int, List[int]] = {}
            inline: List[int] = []
            for position, statement in enumerate(parsed):
                owner = self._single_owner(statement)
                if owner is not None and self.groups[owner].service is not None:
                    per_group.setdefault(owner, []).append(position)
                else:
                    inline.append(position)
            results: List[object] = [None] * len(parsed)
            errors: List[BaseException] = []

            def run_group(group_index: int, positions: List[int]) -> None:
                try:
                    wave = self.groups[group_index].service.run_wave(
                        [statements[p] for p in positions]
                    )
                    for position, result in zip(positions, wave):
                        results[position] = result
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(
                    target=run_group,
                    args=(group_index, positions),
                    name=f"repro-shard-wave-{group_index}",
                )
                for group_index, positions in sorted(per_group.items())
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for position in inline:
                results[position] = self._run(parsed[position], None)
        finally:
            self._lock.release_read()
        if errors:
            raise errors[0]
        with self._stats_lock:
            self.stats.completed += len(parsed)
            self.stats.rows_returned += sum(
                len(r) for r in results if isinstance(r, list)
            )
        return results

    # -------------------------------------------------------------- services --

    def attach_services(
        self,
        max_in_flight: int = 16,
        queue_limit: int = 32,
        plan_cache_capacity: int = 256,
        batching: bool = True,
    ) -> None:
        """Wrap every group in a :class:`QueryService` (batcher + plan cache)."""
        if any(group.service is not None for group in self.groups):
            raise ServiceError("services are already attached")
        self._service_params = (
            max_in_flight, queue_limit, plan_cache_capacity, batching
        )
        for group in self.groups:
            group.service = QueryService(
                group.source,
                max_in_flight,
                queue_limit,
                plan_cache_capacity,
                batching,
            )
        scale = max(1, len(self.active_group_indexes()))
        self.admission = AdmissionController(
            max_in_flight * scale, queue_limit * scale
        )

    def detach_services(self) -> None:
        for group in self.groups:
            if group.service is not None:
                group.service.close()
                group.service = None
        self.admission = None
        self._service_params = None

    def open_session(self, client_id: Optional[str] = None, **kwargs) -> Session:
        return self.sessions.open(client_id, **kwargs)

    def close_session(self, session: Session) -> None:
        self.sessions.close(session)

    def close(self) -> None:
        self.detach_services()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ accounting --

    def total_network_bytes(self) -> int:
        return sum(group.network.total_bytes for group in self.groups)

    def total_network_messages(self) -> int:
        return sum(group.network.total_messages for group in self.groups)

    def modelled_network_seconds(self) -> float:
        """Wall-clock under the cost model: groups transfer in parallel."""
        return max(
            (group.network.modelled_seconds for group in self.groups),
            default=0.0,
        )

    def modelled_network_seconds_total(self) -> float:
        return sum(group.network.modelled_seconds for group in self.groups)

    def reset_accounting(self) -> None:
        for group in self.groups:
            group.source.reset_accounting()

    def report(self) -> Dict[str, object]:
        return {
            "router": self.stats.snapshot(),
            "admission": (
                None if self.admission is None else self.admission.snapshot()
            ),
            "sessions": self.sessions.snapshot(),
            "migrations": self.migrations,
            "groups": [
                {
                    "name": group.name,
                    "retired": group.retired,
                    "network_bytes": group.network.total_bytes,
                    "network_messages": group.network.total_messages,
                    "modelled_seconds": group.network.modelled_seconds,
                }
                for group in self.groups
            ],
        }

    # ------------------------------------------------------------ elasticity --

    def add_group(self, dispatch: str = "parallel") -> int:
        """Register a fresh provider group (owning nothing yet) under load."""
        self._lock.acquire_write()
        try:
            index = len(self.groups)
            first = self.groups[0]
            cluster = ProviderCluster(
                first.cluster.n_providers,
                self.threshold,
                dispatch=dispatch,
                name_prefix=f"g{index}/",
            )
            source = DataSource(
                cluster,
                seed=self._group_seed(self._seed, index),
                secrets=self.secrets,
            )
            for name in sorted(self._maps):
                source.create_table(self._sharing(name).schema)
            group = ShardGroup(f"group{index}", source)
            if self._service_params is not None:
                max_in_flight, queue_limit, capacity, batching = (
                    self._service_params
                )
                group.service = QueryService(
                    source, max_in_flight, queue_limit, capacity, batching
                )
            self.groups.append(group)
            return index
        finally:
            self._lock.release_write()

    def split_shard(
        self,
        table: str,
        at_value: object,
        to_group: Optional[int] = None,
        checkpoint: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Move keys ``>= at_value`` of their range onto another group.

        ``to_group`` defaults to a freshly added group.  Returns the
        number of rows migrated.  Runs online (see :meth:`_migrate`).
        """
        shard_map = self.shard_map(table)
        if not isinstance(shard_map, RangeShardMap):
            raise ConfigurationError(
                f"{table!r} is hash-sharded; split applies to range "
                "sharding (use rebalance instead)"
            )
        sharing = self._sharing(table)
        key = self._encode_partition_key(
            sharing, shard_map.partition_column, at_value
        )
        src = shard_map.group_for_key(key)
        range_lo, range_hi = next(
            (lo, hi)
            for lo, hi, group in shard_map.ranges
            if lo <= key < hi
        )
        if key == range_lo:
            raise ConfigurationError(
                f"split point {at_value!r} is the lower bound of its "
                "range; nothing would remain on the source group"
            )
        if to_group is None:
            to_group = self.add_group()
        self._check_destination(to_group, src)
        column = shard_map.partition_column

        def row_filter(row_id: int, share_rows: Dict[int, ShareRow]) -> bool:
            value = self._partition_key(sharing, column, share_rows)
            return value is not None and key <= value < range_hi

        def flip() -> None:
            shard_map.split_at(key, to_group)

        return self._migrate(table, src, to_group, row_filter, flip, checkpoint)

    def rebalance(
        self,
        table: Optional[str] = None,
        checkpoint: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Even out hash buckets across the active groups, minimally.

        Newly added groups receive their fair share; retired groups shed
        everything.  Returns total rows moved.
        """
        if table is not None:
            names = [table]
            if not isinstance(self.shard_map(table), HashShardMap):
                raise ConfigurationError(
                    f"{table!r} is range-sharded; rebalance applies to "
                    "hash sharding (use split_shard instead)"
                )
        else:
            names = [
                name
                for name in sorted(self._maps)
                if isinstance(self._maps[name], HashShardMap)
            ]
        active = self.active_group_indexes()
        moved = 0
        for name in names:
            shard_map = self._maps[name]
            plan = rebalance_plan(shard_map.buckets, active)
            for (src, dst), buckets in sorted(plan.items()):
                moved += self._migrate_buckets(
                    name, shard_map, src, dst, buckets, checkpoint
                )
        return moved

    def _migrate_buckets(
        self,
        table: str,
        shard_map: HashShardMap,
        src: int,
        dst: int,
        buckets: List[int],
        checkpoint: Optional[Callable[[str], None]],
    ) -> int:
        self._check_destination(dst, src)
        bucket_set = set(buckets)
        ring = len(shard_map.buckets)

        def row_filter(row_id: int, share_rows: Dict[int, ShareRow]) -> bool:
            return row_id % ring in bucket_set

        def flip() -> None:
            for bucket in buckets:
                shard_map.buckets[bucket] = dst

        return self._migrate(table, src, dst, row_filter, flip, checkpoint)

    def drain_group(
        self,
        group_index: int,
        checkpoint: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Move everything off a group, then retire it."""
        if not 0 <= group_index < len(self.groups):
            raise ConfigurationError(f"no group at index {group_index}")
        if self.groups[group_index].retired:
            raise ConfigurationError(
                f"group {group_index} is already retired"
            )
        remaining = [
            g for g in self.active_group_indexes() if g != group_index
        ]
        if not remaining:
            raise ConfigurationError(
                "cannot drain the last active group"
            )
        moved = 0
        for name in sorted(self._maps):
            shard_map = self._maps[name]
            if isinstance(shard_map, HashShardMap):
                buckets = shard_map.buckets_of(group_index)
                per_dst: Dict[int, List[int]] = {}
                for position, bucket in enumerate(buckets):
                    per_dst.setdefault(
                        remaining[position % len(remaining)], []
                    ).append(bucket)
                for dst in sorted(per_dst):
                    moved += self._migrate_buckets(
                        name, shard_map, group_index, dst,
                        per_dst[dst], checkpoint,
                    )
            else:
                sharing = self._sharing(name)
                column = shard_map.partition_column
                owned = shard_map.ranges_of(group_index)
                for position, (lo, hi) in enumerate(owned):
                    dst = remaining[position % len(remaining)]

                    def row_filter(
                        row_id: int,
                        share_rows: Dict[int, ShareRow],
                        _lo: int = lo,
                        _hi: int = hi,
                    ) -> bool:
                        value = self._partition_key(
                            sharing, column, share_rows
                        )
                        return value is not None and _lo <= value < _hi

                    def flip(_lo: int = lo, _dst: int = dst) -> None:
                        shard_map.reassign(_lo, _dst)

                    moved += self._migrate(
                        name, group_index, dst, row_filter, flip, checkpoint
                    )
        self.groups[group_index].retired = True
        return moved

    def _check_destination(self, dst: int, src: int) -> None:
        if not 0 <= dst < len(self.groups):
            raise ConfigurationError(f"no group at index {dst}")
        if self.groups[dst].retired:
            raise ConfigurationError(f"group {dst} is retired")
        if dst == src:
            raise ConfigurationError(
                f"migration source and destination are both group {src}"
            )

    # -------------------------------------------------------------- migration --

    def _migrate(
        self,
        table: str,
        src_index: int,
        dst_index: int,
        row_filter: Callable[[int, Dict[int, ShareRow]], bool],
        flip: Callable[[], None],
        checkpoint: Optional[Callable[[str], None]] = None,
    ) -> int:
        """Online share-level migration of the rows ``row_filter`` selects.

        The staging protocol from the module docstring.  ``checkpoint``
        (tests) is called at each phase boundary: ``scanned``, ``copied``,
        ``recopied`` (only if a write raced the online copy), ``cutover``
        (still under the write lock — must not query the router), and
        ``done``.
        """
        notify = checkpoint if checkpoint is not None else (lambda phase: None)
        src = self.groups[src_index].source
        dst = self.groups[dst_index].source
        sharing = src.sharing(table)
        targets = list(range(sharing.n_providers))
        staging = f"{table}{MIGRATION_STAGING_SUFFIX}"
        # one redundant share lets the rebuild blame a tampering quorum
        # member instead of extending a steered polynomial
        extra = 1 if src.cluster.n_providers > self.threshold else 0

        def rebuild() -> List[Tuple[int, Dict[int, ShareRow]]]:
            aligned = src.scan_share_rows(table, extra=extra)
            selected = {
                row_id: share_rows
                for row_id, share_rows in aligned.items()
                if row_filter(row_id, share_rows)
            }
            return rebuild_rows_for_targets(sharing, selected, targets)

        with telemetry.span(
            "shard.migrate", table=table, src=src_index, dst=dst_index
        ) as span:
            epoch = src.table_epoch(table)
            moved = rebuild()
            notify("scanned")
            dst.create_staging_table(table, staging)
            dst.insert_share_rows(table, moved, into=staging)
            notify("copied")
            self._lock.acquire_write()
            try:
                if src.table_epoch(table) != epoch:
                    # a write raced the online copy; redo it inside the
                    # blocking window so the cutover sees a settled row set
                    dst.drop_staging_table(staging)
                    dst.create_staging_table(table, staging)
                    moved = rebuild()
                    dst.insert_share_rows(table, moved, into=staging)
                    notify("recopied")
                dst.merge_staging_table(table, staging)
                flip()
                src.delete_row_ids(table, [row_id for row_id, _ in moved])
                notify("cutover")
            finally:
                self._lock.release_write()
            span.set(rows=len(moved))
            telemetry.count("shard.migrated_rows", len(moved), table=table)
        self.migrations += 1
        notify("done")
        return len(moved)
