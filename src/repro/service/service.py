"""The query service: admission → session → batched execution.

:class:`QueryService` turns a single-client :class:`DataSource` into a
multi-client front end, composing the pieces of this package:

* :class:`~repro.service.admission.AdmissionController` bounds
  concurrency and sheds load loudly;
* :class:`~repro.service.session.SessionManager` hands out per-client
  sessions with isolated row-id allocation;
* :class:`~repro.service.scheduler.FanoutBatcher` coalesces the
  concurrent queries' provider rounds into combined fan-outs (installed
  by swapping the source's cluster for a
  :class:`~repro.service.scheduler.BatchingCluster`);
* :class:`~repro.service.plancache.PlanCache` skips re-parsing and
  re-rewriting repeated statements (installed on ``source.plan_cache``,
  invalidated through the table-epoch mechanism).

Consistency model: statement-level.  Reads share a table lock; writes
take it exclusively, so a read never observes a half-applied write
(reconstruction from mixed old/new shares would yield garbage values,
not just stale ones).  The lock is acquired **before** registering with
the batcher — a registered query must never block on another query's
resources, or the combining barrier could wait forever (see the
scheduler's invariants).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .. import telemetry
from ..client.datasource import DataSource
from ..errors import ServiceError, ServiceOverloadedError
from ..sqlengine.query import Delete, Insert, JoinSelect, Select, Update
from .admission import AdmissionController, priority_level, priority_name
from .plancache import PlanCache
from .scheduler import BatchingCluster, FanoutBatcher
from .session import Session, SessionManager


class TableLock:
    """Readers-writer lock with writer preference.

    Writer preference keeps a steady read stream from starving writes;
    reads queued behind a waiting writer see its result — the freshest
    outcome, and the only ordering under which the concurrent-vs-oracle
    tests can be deterministic.  Shared with the shard router, whose
    migrations take the write side for their cutover window.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class ServiceStats:
    """Service-wide outcome counters (admission keeps its own)."""

    __slots__ = (
        "completed",
        "failed",
        "rows_returned",
        "rows_written",
        "degraded_served",
    )

    def __init__(self) -> None:
        self.completed = 0
        self.failed = 0
        self.rows_returned = 0
        self.rows_written = 0
        self.degraded_served = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class QueryService:
    """Multi-client concurrent query front end over one data source."""

    def __init__(
        self,
        source: DataSource,
        max_in_flight: int = 16,
        queue_limit: int = 32,
        plan_cache_capacity: int = 256,
        batching: bool = True,
        transactional: bool = False,
        degrade_at: float = 0.5,
        restore_at: float = 0.2,
    ) -> None:
        if not 0.0 <= restore_at <= degrade_at <= 1.0:
            raise ServiceError(
                f"need 0 <= restore_at <= degrade_at <= 1, got "
                f"restore_at={restore_at}, degrade_at={degrade_at}"
            )
        self.source = source
        self.batching = batching
        #: route session writes through the shared transaction manager
        #: (client WAL + staged provider apply) instead of the direct
        #: eager path; reads are unaffected
        self.transactional = transactional
        self._inner_cluster = source.cluster
        self.batcher = FanoutBatcher(self._inner_cluster)
        if batching:
            source.cluster = BatchingCluster(self._inner_cluster, self.batcher)
        self._previous_plan_cache = source.plan_cache
        self.plan_cache = PlanCache(plan_cache_capacity)
        source.plan_cache = self.plan_cache
        self.admission = AdmissionController(max_in_flight, queue_limit)
        self.sessions = SessionManager(self)
        self.stats = ServiceStats()
        self._table_lock = TableLock()
        self._stats_lock = threading.Lock()
        self._txn_manager = None
        self._closed = False
        # degradation ladder: under queue pressure, verified reads are
        # transparently downgraded to plain quorum reads (same values,
        # cheaper rounds) before any work is rejected — restored with
        # hysteresis so the mode doesn't flap at the threshold
        self.degrade_at = degrade_at
        self.restore_at = restore_at
        self._premium_reads = bool(getattr(source, "verified_reads", False))
        self._degraded = False
        self._degrade_lock = threading.Lock()

    # ------------------------------------------------------------- sessions --

    def open_session(
        self, client_id: Optional[str] = None, **kwargs
    ) -> Session:
        self._check_open()
        return self.sessions.open(client_id, **kwargs)

    def close_session(self, session: Session) -> None:
        self.sessions.close(session)

    # ------------------------------------------------------------ execution --

    def execute(
        self,
        text: str,
        session: Optional[Session] = None,
        priority=None,
        timeout: Optional[float] = None,
    ):
        """Admit, lock, register, run one SQL statement.

        ``priority`` (a level or class name; defaults to interactive)
        shapes queue admission — under pressure low-priority work is
        shed first.  ``timeout`` bounds the queue wait with an absolute
        deadline.  Raises :class:`ServiceOverloadedError` when admission
        rejects — callers are expected to back off and retry.
        """
        self._check_open()
        statement = self.plan_cache.parse(text)
        is_read = isinstance(statement, (Select, JoinSelect))
        self._update_degraded_mode()
        try:
            self.admission.acquire(timeout=timeout, priority=priority)
        except ServiceOverloadedError:
            if session is not None:
                session.record(error=True, rejected=True)
            raise
        served_degraded = is_read and self._note_degraded_read(priority)
        try:
            # lock BEFORE register: a registered query must never block on
            # another query's resources (scheduler invariant)
            if is_read:
                self._table_lock.acquire_read()
            else:
                self._table_lock.acquire_write()
            try:
                self.batcher.register()
                try:
                    with telemetry.span(
                        "service.query",
                        write=not is_read,
                        client=None if session is None else session.client_id,
                    ):
                        result = self._run(statement, session)
                except BaseException:
                    if session is not None:
                        session.record(error=True)
                    with self._stats_lock:
                        self.stats.failed += 1
                    raise
                finally:
                    self.batcher.finish()
            finally:
                if is_read:
                    self._table_lock.release_read()
                else:
                    self._table_lock.release_write()
        finally:
            self.admission.release()
        returned = len(result) if isinstance(result, list) else 0
        written = result if isinstance(result, int) and not is_read else 0
        if session is not None:
            session.record(rows_returned=returned, rows_written=written)
        with self._stats_lock:
            self.stats.completed += 1
            self.stats.rows_returned += returned
            self.stats.rows_written += written
            if served_degraded:
                self.stats.degraded_served += 1
        return result

    def _update_degraded_mode(self) -> None:
        """Move the degradation ladder from the admission pressure signal."""
        if not self._premium_reads:
            return
        pressure = self.admission.pressure()
        with self._degrade_lock:
            if not self._degraded and pressure >= self.degrade_at:
                self._degraded = True
                self.source.verified_reads = False
                telemetry.count("service.degrade_enter")
            elif self._degraded and pressure <= self.restore_at:
                self._degraded = False
                self.source.verified_reads = True
                telemetry.count("service.degrade_exit")

    def _note_degraded_read(self, priority) -> bool:
        """Whether this read runs degraded; counts it if so."""
        if not (self._premium_reads and self._degraded):
            return False
        from .slo import DEGRADED_METRIC

        telemetry.count(
            DEGRADED_METRIC, priority=priority_name(priority_level(priority))
        )
        return True

    @property
    def degraded(self) -> bool:
        """Whether reads currently run in degraded (plain-quorum) mode."""
        return self._degraded

    def _run(self, statement, session: Optional[Session]):
        if self.transactional and isinstance(
            statement, (Insert, Update, Delete)
        ):
            # WAL-logged write under the exclusive table lock; INSERT's
            # row id is an allocation detail, not a written-rows count
            result = self.transaction_manager().execute(statement)
            return 1 if isinstance(statement, Insert) else result
        if isinstance(statement, Insert) and session is not None:
            # route the insert through the session's private id block so
            # concurrent sessions can never collide on a row id
            row_ids = session.allocate_row_ids(statement.table, 1)
            self.source.insert_many(statement.table, [statement.row], row_ids)
            return 1
        return self.source.execute(statement)

    def run_wave(self, statements: List[str]) -> List[object]:
        """Execute a read-only wave with maximal coalescing.

        All statements are admitted and registered *before* any executes,
        so the batcher combines the whole wave into one round per
        provider per query phase — the deterministic configuration the
        service benchmark measures.  Results are in statement order.
        """
        self._check_open()
        if not statements:
            return []
        parsed = [self.plan_cache.parse(text) for text in statements]
        for text, statement in zip(statements, parsed):
            if not isinstance(statement, (Select, JoinSelect)):
                raise ServiceError(
                    f"run_wave() is read-only; got a "
                    f"{type(statement).__name__}: {text!r}"
                )
        if len(statements) > self.admission.max_in_flight:
            raise ServiceError(
                f"wave of {len(statements)} exceeds max_in_flight="
                f"{self.admission.max_in_flight}; size the service to the wave"
            )
        admitted = 0
        try:
            for _ in statements:
                self.admission.acquire()
                admitted += 1
            self._table_lock.acquire_read()
            try:
                self.batcher.register(len(parsed))
                results: List[object] = [None] * len(parsed)
                errors: List[Optional[BaseException]] = [None] * len(parsed)

                def run_one(position: int) -> None:
                    try:
                        results[position] = self.source.execute(parsed[position])
                    except BaseException as exc:
                        errors[position] = exc
                    finally:
                        self.batcher.finish()

                threads = [
                    threading.Thread(
                        target=run_one, args=(i,), name=f"repro-wave-{i}"
                    )
                    for i in range(len(parsed))
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            finally:
                self._table_lock.release_read()
        finally:
            for _ in range(admitted):
                self.admission.release()
        for error in errors:
            if error is not None:
                raise error
        with self._stats_lock:
            self.stats.completed += len(parsed)
            self.stats.rows_returned += sum(
                len(r) for r in results if isinstance(r, list)
            )
        return results

    # ---------------------------------------------------------------- writes --

    def transaction_manager(self, wal_path: Optional[str] = None):
        """The service's shared transactional write path, created lazily.

        One manager (one WAL, one group-commit engine) serves every
        session: group commit only batches writers that share an engine.
        """
        self._check_open()
        if self._txn_manager is None:
            from ..txn import TransactionManager

            self._txn_manager = TransactionManager(
                self.source, wal_path=wal_path
            )
        return self._txn_manager

    def run_write_wave(self, statements: List[str]) -> List[object]:
        """Write counterpart of :meth:`run_wave` (ISSUE-8 satellite).

        Every statement in the wave is resolved and logged to the client
        WAL, then the whole wave is applied as **one** staged-then-flipped
        ``txn_prepare``/``txn_commit`` round per provider — deterministic
        group formation, so the benchmark's group sizes don't depend on
        thread timing.  Results are in statement order (row id for
        INSERT, affected count for UPDATE/DELETE).
        """
        self._check_open()
        if not statements:
            return []
        parsed = [self.plan_cache.parse(text) for text in statements]
        for text, statement in zip(statements, parsed):
            if isinstance(statement, (Select, JoinSelect)):
                raise ServiceError(
                    f"run_write_wave() is write-only; got a "
                    f"{type(statement).__name__}: {text!r}"
                )
        manager = self.transaction_manager()
        self.admission.acquire()
        try:
            self._table_lock.acquire_write()
            try:
                self.batcher.register()
                try:
                    with telemetry.span(
                        "service.write_wave", statements=len(parsed)
                    ):
                        results = manager.apply_batch(parsed)
                finally:
                    self.batcher.finish()
            finally:
                self._table_lock.release_write()
        finally:
            self.admission.release()
        with self._stats_lock:
            self.stats.completed += len(parsed)
            self.stats.rows_written += sum(
                result if not isinstance(stmt, Insert) else 1
                for result, stmt in zip(results, parsed)
                if isinstance(result, int)
            )
        return results

    # ------------------------------------------------------------ reporting --

    def report(self) -> Dict[str, object]:
        """One dict with every layer's counters (the serve-sim report body)."""
        out = {
            "service": self.stats.snapshot(),
            "degraded": self._degraded,
            "admission": self.admission.snapshot(),
            "batcher": self.batcher.snapshot(),
            "plan_cache": self.plan_cache.stats(),
            "sessions": self.sessions.snapshot(),
        }
        if self._txn_manager is not None:
            out["txn"] = self._txn_manager.stats()
        return out

    # ------------------------------------------------------------- lifecycle --

    def close(self) -> None:
        """Detach from the source, restoring its original cluster and cache."""
        if self._closed:
            return
        self._closed = True
        if self._txn_manager is not None:
            self._txn_manager.close()
        self.source.cluster = self._inner_cluster
        self.source.plan_cache = self._previous_plan_cache
        # un-degrade: the source leaves with the read mode it came with
        self.source.verified_reads = self._premium_reads

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the query service has been closed")
