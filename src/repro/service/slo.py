"""SLO accounting: latency quantiles, error budget, shed/degrade counts.

The overload layer's contract with operators is a **service-level
report**, not raw counters: for each priority class, what latency did
completed queries see (p50/p99/p999 of *modelled* time), how much work
was shed or served degraded, and how much of the availability error
budget burned.  Everything here is computed from the PR 2 telemetry
registry — the overload runner and the service layer write the
well-known metrics below, and :func:`slo_report` reads them back out.

Metric names (all under the active telemetry hub):

* ``slo.latency{priority=...}`` — histogram of modelled end-to-end
  latency (queue wait + service), observed on :data:`FINE_BUCKETS`
  because the default telemetry buckets are far too coarse for p999;
* ``slo.completed{priority=...}`` / ``slo.failed{priority=...}`` —
  terminal outcomes;
* ``slo.shed{priority=..., reason=...}`` — admission rejections
  (reasons: ``queue_full``, ``timeout``);
* ``slo.degraded{priority=...}`` — reads served in degraded mode
  (verified reads transparently downgraded to plain quorum reads);
* ``slo.incorrect{priority=...}`` — answers that failed the oracle
  check (the overload gate requires this to stay zero).

Quantiles are bucket-interpolated: exact enough for gating (the bucket
ladder is geometric with ~19% steps) and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .. import telemetry
from ..telemetry.metrics import Histogram, MetricsRegistry
from .admission import PRIORITY_NAMES

#: Fine geometric latency buckets (seconds): 100 µs … ~5 min, ×1.25
#: steps.  p999 needs resolution the coarse default ladder cannot give.
FINE_BUCKETS: Tuple[float, ...] = tuple(
    round(0.0001 * 1.25**i, 10) for i in range(64)
)

#: Well-known metric names (shared by the runner, service, and report).
LATENCY_METRIC = "slo.latency"
COMPLETED_METRIC = "slo.completed"
FAILED_METRIC = "slo.failed"
SHED_METRIC = "slo.shed"
DEGRADED_METRIC = "slo.degraded"
INCORRECT_METRIC = "slo.incorrect"


def observe_latency(seconds: float, priority_name: str) -> None:
    """Record one completed query's modelled latency for its class.

    Pre-registers the histogram on :data:`FINE_BUCKETS`; the registry
    get-or-creates by (name, labels), so every later observation lands
    in the same fine-bucketed instrument.
    """
    active = telemetry.hub()
    if active is None:
        return
    active.registry.histogram(
        LATENCY_METRIC, buckets=FINE_BUCKETS, priority=priority_name
    ).observe(seconds)


def histogram_quantile(hist: Histogram, quantile: float) -> float:
    """Bucket-interpolated quantile of a telemetry histogram.

    Walks the cumulative counts to the bucket containing the target
    rank and interpolates linearly inside it (lower edge 0 for the
    first bucket).  Observations in the overflow bucket clamp to the
    top bound — a floor, which is the honest direction for an SLO gate.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    if hist.count == 0:
        return 0.0
    target = quantile * hist.count
    cumulative = 0
    lower = 0.0
    for bound, count in zip(hist.bounds, hist.counts):
        if count and cumulative + count >= target:
            fraction = (target - cumulative) / count
            return lower + (bound - lower) * max(0.0, min(1.0, fraction))
        cumulative += count
        lower = bound
    return hist.bounds[-1]  # overflow bucket: clamp to the top bound


def _priority_counter(
    registry: MetricsRegistry, name: str, priority: str
) -> float:
    return registry.counter_value(name, priority=priority)


def slo_report(
    registry: Optional[MetricsRegistry] = None,
    availability_target: float = 0.999,
) -> Dict[str, object]:
    """The SLO rollup: per-priority latency/outcome stats + error budget.

    ``availability_target`` defines the budget: a target of 99.9% means
    0.1% of offered queries may fail or be shed before the budget is
    exhausted (``budget_consumed`` > 1).  Shed work counts against the
    budget — from the tenant's perspective a rejected query is an
    error, even though shedding it was the right engineering call;
    *degraded* work does not, because the answer was still correct.
    """
    if registry is None:
        active = telemetry.hub()
        if active is None:
            raise ValueError(
                "slo_report needs an explicit registry when telemetry "
                "is disabled"
            )
        registry = active.registry
    if not 0.0 < availability_target < 1.0:
        raise ValueError(
            f"availability_target must be in (0, 1), got "
            f"{availability_target}"
        )
    per_priority: Dict[str, Dict[str, object]] = {}
    offered_total = 0.0
    bad_total = 0.0
    for priority in PRIORITY_NAMES:
        hist = registry.histogram(
            LATENCY_METRIC, buckets=FINE_BUCKETS, priority=priority
        )
        completed = _priority_counter(registry, COMPLETED_METRIC, priority)
        failed = _priority_counter(registry, FAILED_METRIC, priority)
        shed_full = registry.counter_value(
            SHED_METRIC, priority=priority, reason="queue_full"
        )
        shed_timeout = registry.counter_value(
            SHED_METRIC, priority=priority, reason="timeout"
        )
        shed = shed_full + shed_timeout
        degraded = _priority_counter(registry, DEGRADED_METRIC, priority)
        incorrect = _priority_counter(registry, INCORRECT_METRIC, priority)
        offered = completed + failed + shed
        offered_total += offered
        bad_total += failed + shed
        per_priority[priority] = {
            "offered": int(offered),
            "completed": int(completed),
            "failed": int(failed),
            "shed": int(shed),
            "shed_queue_full": int(shed_full),
            "shed_timeout": int(shed_timeout),
            "degraded": int(degraded),
            "incorrect": int(incorrect),
            "completion_rate": (
                round(completed / offered, 6) if offered else 1.0
            ),
            "latency_modelled_seconds": {
                "mean": round(hist.mean, 6),
                "p50": round(histogram_quantile(hist, 0.50), 6),
                "p99": round(histogram_quantile(hist, 0.99), 6),
                "p999": round(histogram_quantile(hist, 0.999), 6),
                "count": hist.count,
            },
        }
    availability = (
        (offered_total - bad_total) / offered_total if offered_total else 1.0
    )
    budget = 1.0 - availability_target
    return {
        "availability_target": availability_target,
        "availability": round(availability, 6),
        "error_budget": round(budget, 6),
        "budget_consumed": round((1.0 - availability) / budget, 4),
        "offered": int(offered_total),
        "by_priority": per_priority,
    }
