"""Plan cache: skip re-rewriting repeated query shapes.

Rewriting (Sec. V-A) is the per-query client-side hot path: classify the
predicate, encode interval endpoints, and — per addressed provider —
evaluate the order-preserving polynomials that turn plaintext endpoints
into share-space conditions.  A service replaying the same query shapes
for many clients pays that price over and over for identical output.

:class:`PlanCache` memoises two layers:

* **statements** — normalised SQL text → parsed AST (read-only
  statements only; DML carries mutable payloads and is never cached);
* **plans** — ``(table, predicate, table epoch)`` →
  :class:`CachedPlan`, a rewritten predicate that additionally memoises
  each provider's share-space conditions.

The **table epoch** in the key is the correctness mechanism.  Cached
conditions are functions of the client's secret material (the OP
polynomials), so a plan cached before :meth:`DataSource.rotate_secrets`
would query garbage share ranges afterwards — silently returning wrong
rows.  Every write path (INSERT/UPDATE/DELETE/increment, the lazy update
buffer, resync, rotation) bumps its table's epoch, which both retires
cached keys and future-proofs data-dependent planning (e.g. statistics-
driven pushdown choices).  ``tests/service/test_plancache.py`` includes
the wrong-rows demonstration with invalidation disabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from .. import telemetry
from ..client.rewriter import RewrittenPredicate, rewrite_predicate
from ..core.scheme import TableSharing
from ..errors import ConfigurationError
from ..sqlengine.expression import Predicate
from ..sqlengine.query import JoinSelect, Select
from ..sqlengine.sqlparser import parse_sql


def normalise_sql(text: str) -> str:
    """Whitespace-collapsed form of a statement, the statement-cache key.

    Literal values stay significant (``eid = 5`` and ``eid = 6`` are
    different plans); only spacing differences are folded together.
    """
    return " ".join(text.split())


class CachedPlan:
    """A rewritten predicate plus memoised per-provider conditions.

    Duck-types the :class:`RewrittenPredicate` surface the client uses
    (``intervals``/``residual``/``provably_empty``/``has_residual``/
    ``conditions_for``), so call sites are oblivious to cache hits.  The
    conditions memo is what makes epoch invalidation *load-bearing*: the
    cached dicts embed share-space endpoint values computed from the
    sharing that was current at rewrite time.
    """

    __slots__ = ("_rewritten", "_conditions", "_lock")

    def __init__(self, rewritten: RewrittenPredicate) -> None:
        self._rewritten = rewritten
        self._conditions: Dict[int, List[Dict]] = {}
        self._lock = threading.Lock()

    @property
    def intervals(self):
        return self._rewritten.intervals

    @property
    def residual(self) -> Predicate:
        return self._rewritten.residual

    @property
    def provably_empty(self) -> bool:
        return self._rewritten.provably_empty

    @property
    def has_residual(self) -> bool:
        return self._rewritten.has_residual

    def conditions_for(
        self, sharing: TableSharing, provider_index: int
    ) -> List[Dict]:
        with self._lock:
            cached = self._conditions.get(provider_index)
        if cached is None:
            cached = self._rewritten.conditions_for(sharing, provider_index)
            with self._lock:
                self._conditions[provider_index] = cached
        return cached


class PlanCacheStats:
    """Monotonic counters; read them via :meth:`PlanCache.stats`."""

    __slots__ = (
        "plan_hits",
        "plan_misses",
        "statement_hits",
        "statement_misses",
        "invalidations",
        "evictions",
    )

    def __init__(self) -> None:
        self.plan_hits = 0
        self.plan_misses = 0
        self.statement_hits = 0
        self.statement_misses = 0
        self.invalidations = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PlanCache:
    """LRU cache of parsed statements and rewritten predicates."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"plan cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._plans: "OrderedDict[tuple, CachedPlan]" = OrderedDict()
        self._statements: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = PlanCacheStats()

    # ---------------------------------------------------------- statements --

    def parse(self, text: str):
        """Parse SQL, reusing the AST for repeated read-only statements."""
        key = normalise_sql(text)
        with self._lock:
            cached = self._statements.get(key)
            if cached is not None:
                self._statements.move_to_end(key)
                self._stats.statement_hits += 1
                telemetry.count("plancache.statement_hits")
                return cached
        parsed = parse_sql(text)
        # DML ASTs carry mutable row/assignment payloads — never shared
        if isinstance(parsed, (Select, JoinSelect)):
            with self._lock:
                self._stats.statement_misses += 1
                self._statements[key] = parsed
                if len(self._statements) > self.capacity:
                    self._statements.popitem(last=False)
        telemetry.count("plancache.statement_misses")
        return parsed

    # --------------------------------------------------------------- plans --

    def rewritten(
        self, source, sharing: TableSharing, predicate: Predicate
    ) -> CachedPlan:
        """The cached (or freshly computed) rewrite of a bound predicate.

        Keyed on ``(table, repr(predicate), table epoch)`` — the epoch
        makes every write retire its table's entries (see module docs).
        """
        table = sharing.schema.name
        key = (table, repr(predicate), source.table_epoch(table))
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._stats.plan_hits += 1
                telemetry.count("plancache.hits", table=table)
                return plan
        plan = CachedPlan(rewrite_predicate(predicate, sharing))
        with self._lock:
            self._stats.plan_misses += 1
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._stats.evictions += 1
        telemetry.count("plancache.misses", table=table)
        return plan

    def invalidate(self, table_name: Optional[str] = None) -> int:
        """Drop cached plans for one table (or all); returns count dropped.

        Epoch-keyed entries would already never be *hit* after a bump —
        invalidation reclaims their memory immediately and is what
        :meth:`DataSource.bump_table_epoch` calls.
        """
        with self._lock:
            if table_name is None:
                dropped = len(self._plans)
                self._plans.clear()
            else:
                stale = [k for k in self._plans if k[0] == table_name]
                for k in stale:
                    del self._plans[k]
                dropped = len(stale)
            if dropped:
                self._stats.invalidations += dropped
        if dropped:
            telemetry.count("plancache.invalidated", dropped)
        return dropped

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = self._stats.snapshot()
            out["plans_cached"] = len(self._plans)
            out["statements_cached"] = len(self._statements)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
