"""Cross-query share-RPC batching: N concurrent fan-outs, one round each.

The dominant cost of a point query in this system is not computation but
round trips: every query pays at least one fan-out of ``k`` (reads) or
``n`` (writes) provider messages, each carrying the modelled WAN latency
of :class:`~repro.sim.network.LatencyModel`.  When a service runs many
clients concurrently, their fan-outs address the *same* providers at the
*same* moment — so the scheduler coalesces them: concurrently admitted
queries that are each about to issue a provider round are parked at a
combining barrier, and one **combined** round per provider carries all
their sub-requests (the provider-side ``batch`` RPC demultiplexes).  N
concurrent point queries then cost ~1 round trip per provider instead of
N.

Mechanics
---------

Every admitted query **registers** with the :class:`FanoutBatcher`
before executing and **finishes** after.  A query that reaches a
provider round parks a ticket instead of dispatching.  The barrier
flushes the moment *every* registered query is parked (nothing left that
could contribute more work to this round) or when a query finishes with
tickets still pending.  Tickets are grouped by ``(addressed providers,
minimum, quorum)`` — the parameters that must agree for rounds to share
a wire message; methods may differ within a group because each
sub-request carries its own method.

Correctness invariants:

* **No deadlock by construction**: a registered query must never block
  on a resource held by a parked query.  :class:`~repro.service.service.
  QueryService` therefore acquires its table lock *before* registering.
* **Deterministic accounting**: dispatch is serialised by a single
  dispatch lock and delegates to :meth:`ProviderCluster.call_all`, which
  records all bytes on the dispatching thread in provider-index order —
  so batched runs keep the seed-reproducible byte accounting of the
  sequential path, and telemetry byte counters still equal network
  counters exactly.
* **Error isolation**: a provider-side failure of one sub-request is
  mapped back onto *that* ticket only; unrelated queries in the same
  combined round still get their responses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from .. import errors as _errors
from .. import telemetry
from ..errors import ProviderError
from ..providers.cluster import ProviderCluster

_GroupKey = Tuple[Tuple[int, ...], Optional[int], str]


class _Ticket:
    """One parked fan-out: its request map, and a slot for the outcome."""

    __slots__ = ("method", "requests", "event", "result", "error")

    def __init__(self, method: str, requests: Dict[int, Dict]) -> None:
        self.method = method
        self.requests = requests
        self.event = threading.Event()
        self.result: Optional[Dict[int, Dict]] = None
        self.error: Optional[BaseException] = None


def _rebuild_error(name: str, message: str) -> Exception:
    """Map a provider-serialised ``["err", name, message]`` back to a class."""
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, _errors.ReproError)):
        cls = ProviderError
    return cls(message)


class FanoutBatcher:
    """Combining barrier that coalesces concurrent provider rounds."""

    def __init__(self, cluster: ProviderCluster) -> None:
        self.cluster = cluster
        self._lock = threading.Lock()
        #: Serialises every network round (combined or not) so byte
        #: accounting stays deterministic; also taken by pass-through
        #: ``call_one`` traffic.
        self.dispatch_lock = threading.Lock()
        self._active = 0
        self._parked = 0
        self._pending: "OrderedDict[_GroupKey, List[_Ticket]]" = OrderedDict()
        self.rounds_total = 0
        self.combined_rounds_total = 0
        self.tickets_total = 0
        self.max_batch = 0

    # ----------------------------------------------------------- membership --

    def register(self, n: int = 1) -> None:
        """Declare ``n`` queries active.  MUST precede any blocking on
        resources shared with other registered queries (see module docs)."""
        with self._lock:
            self._active += n

    def finish(self) -> None:
        """Declare one registered query done; flush if it was the holdout."""
        drained = None
        with self._lock:
            if self._active < 1:
                raise ProviderError("finish() without a matching register()")
            self._active -= 1
            if self._pending and self._parked >= self._active:
                drained = self._drain_locked()
        if drained:
            self._dispatch(drained)

    # ------------------------------------------------------------- batching --

    def broadcast(
        self,
        method: str,
        requests: Dict[int, Dict],
        minimum: Optional[int] = None,
        quorum: str = "all",
    ) -> Dict[int, Dict]:
        """Park this query's fan-out; returns once a flush has carried it.

        Drop-in for :meth:`ProviderCluster.call_all` — same request map,
        same response map, same exceptions.
        """
        key: _GroupKey = (tuple(sorted(requests)), minimum, quorum)
        ticket = _Ticket(method, requests)
        drained = None
        with self._lock:
            self._pending.setdefault(key, []).append(ticket)
            self._parked += 1
            if self._parked >= self._active:
                # every registered query is now waiting on a round: nothing
                # can add more tickets, so this thread performs the flush
                drained = self._drain_locked()
        if drained:
            self._dispatch(drained)
        ticket.event.wait()
        if ticket.error is not None:
            raise ticket.error
        assert ticket.result is not None
        return ticket.result

    def _drain_locked(
        self,
    ) -> "OrderedDict[_GroupKey, List[_Ticket]]":
        drained = self._pending
        self._pending = OrderedDict()
        self._parked -= sum(len(tickets) for tickets in drained.values())
        return drained

    # ------------------------------------------------------------- dispatch --

    def _dispatch(
        self, drained: "OrderedDict[_GroupKey, List[_Ticket]]"
    ) -> None:
        with self.dispatch_lock:
            for (targets, minimum, quorum), tickets in drained.items():
                self._dispatch_group(list(targets), minimum, quorum, tickets)

    def _dispatch_group(
        self,
        targets: List[int],
        minimum: Optional[int],
        quorum: str,
        tickets: List[_Ticket],
    ) -> None:
        self.rounds_total += 1
        self.tickets_total += len(tickets)
        self.max_batch = max(self.max_batch, len(tickets))
        telemetry.observe("service.batch_size", len(tickets), quorum=quorum)
        if len(tickets) == 1:
            # nothing to combine: dispatch with the real method, skipping
            # the batch envelope's overhead
            ticket = tickets[0]
            try:
                ticket.result = self.cluster.call_all(
                    ticket.method, ticket.requests, minimum, quorum=quorum
                )
            except BaseException as exc:
                ticket.error = exc
            finally:
                ticket.event.set()
            return
        self.combined_rounds_total += 1
        telemetry.count("service.combined_rounds", batch=len(tickets))
        combined = {
            index: {
                "requests": [
                    [ticket.method, ticket.requests[index]]
                    for ticket in tickets
                ]
            }
            for index in targets
        }
        try:
            responses = self.cluster.call_all(
                "batch", combined, minimum, quorum=quorum
            )
        except _errors.QuorumError as exc:
            # quorum loss in the combined round: demultiplex the partial
            # responses per ticket so each rider's QuorumError carries its
            # own resumable partial round (the shared exception would carry
            # batch envelopes, which are useless to a failover continuation)
            partial = getattr(exc, "partial_responses", {}) or {}
            failures = dict(getattr(exc, "failures", {}) or {})
            for position, ticket in enumerate(tickets):
                error = _errors.QuorumError(str(exc))
                ok = {}
                for index, envelope in partial.items():
                    entry = envelope["responses"][position]
                    if entry[0] == "ok":
                        ok[index] = entry[1]
                error.partial_responses = ok
                error.failures = failures
                ticket.error = error
                ticket.event.set()
            return
        except BaseException as exc:
            # whole-round failure: every rider fails the same way
            for ticket in tickets:
                ticket.error = exc
                ticket.event.set()
            return
        for position, ticket in enumerate(tickets):
            self._demux(ticket, position, responses, minimum)
            ticket.event.set()

    @staticmethod
    def _demux(
        ticket: _Ticket,
        position: int,
        responses: Dict[int, Dict],
        minimum: Optional[int],
    ) -> None:
        """Extract one ticket's per-provider sub-responses from the round."""
        ok: Dict[int, Dict] = {}
        failed: List[Tuple[int, str, str]] = []
        for index in sorted(responses):
            entry = responses[index]["responses"][position]
            if entry[0] == "ok":
                ok[index] = entry[1]
            else:
                failed.append((index, entry[1], entry[2]))
        required = len(ticket.requests) if minimum is None else minimum
        if failed and (minimum is None or len(ok) < required):
            _, name, message = failed[0]
            ticket.error = _rebuild_error(name, message)
        elif len(ok) < required:
            error = _errors.QuorumError(
                f"{ticket.method}: only {len(ok)}/{len(ticket.requests)} "
                f"providers answered in combined round (need {required})"
            )
            # let a failover-capable caller resume from the partial round
            error.partial_responses = ok
            error.failures = {index: message for index, _, message in failed}
            ticket.error = error
        else:
            ticket.result = ok

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "rounds_total": self.rounds_total,
                "combined_rounds_total": self.combined_rounds_total,
                "tickets_total": self.tickets_total,
                "max_batch": self.max_batch,
                "active": self._active,
                "parked": self._parked,
            }


class BatchingCluster:
    """Duck-typed :class:`ProviderCluster` that routes rounds via a batcher.

    :class:`~repro.client.datasource.DataSource` funnels all provider
    traffic through ``cluster.broadcast`` and ``cluster.call_one``, so
    intercepting those (plus ``call_all`` for direct callers) is enough
    to make every query batchable without touching the client code.
    Everything else — ``network``, ``providers``, quorum helpers,
    accounting — delegates to the wrapped cluster.
    """

    def __init__(self, cluster: ProviderCluster, batcher: FanoutBatcher) -> None:
        # object.__setattr__-free: plain attributes, __getattr__ only fires
        # for names not found on the instance
        self._cluster = cluster
        self.batcher = batcher

    def __getattr__(self, name: str):
        return getattr(self._cluster, name)

    def call_all(
        self,
        method: str,
        requests: Dict[int, Dict],
        minimum: Optional[int] = None,
        quorum: str = "all",
    ) -> Dict[int, Dict]:
        return self.batcher.broadcast(method, requests, minimum, quorum)

    def broadcast(
        self,
        method: str,
        request_builder: Callable[[int], Dict],
        minimum: Optional[int] = None,
        provider_indexes: Optional[List[int]] = None,
        quorum: str = "all",
        failover: bool = False,
    ) -> Dict[int, Dict]:
        indexes = (
            provider_indexes
            if provider_indexes is not None
            else list(range(self._cluster.n_providers))
        )
        requests = {i: request_builder(i) for i in indexes}
        try:
            return self.batcher.broadcast(method, requests, minimum, quorum)
        except _errors.QuorumError as exc:
            if not failover or minimum is None:
                raise
            # resume from the partial responses the batched round carried;
            # the continuation is an ordinary (serialised) spare round on
            # the wrapped cluster, outside the combining barrier
            partial = dict(getattr(exc, "partial_responses", {}) or {})
            failures = dict(getattr(exc, "failures", {}) or {})
            with self.batcher.dispatch_lock:
                return self._cluster.failover_spares(
                    method,
                    request_builder,
                    partial,
                    set(requests) | set(partial),
                    minimum,
                    quorum,
                    failures,
                )

    def call_one(self, provider_index: int, method: str, request: Dict) -> Dict:
        # single-provider traffic is not batched, but still serialised
        # against combined rounds so accounting stays deterministic
        with self.batcher.dispatch_lock:
            return self._cluster.call_one(provider_index, method, request)
