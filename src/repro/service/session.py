"""Client sessions: per-client handles over one shared outsourced database.

The paper's service model (Sec. I) is many clients of one organisation
querying the same secret-shared tables through the DBSP.  A
:class:`Session` is the per-client handle: it carries per-session
statistics (the tenant-facing side of metering) and **isolates row-id
allocation** — each session draws private blocks of ids from the shared
:meth:`DataSource.reserve_row_ids` counter, so concurrent inserts from
different sessions can never collide on a row id even though they share
one client-side catalog.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..errors import ServiceError

#: Row ids reserved per allocation; a trade-off between allocator
#: contention (bigger blocks, fewer reservations) and id-space holes
#: left by short-lived sessions (smaller blocks waste fewer ids).
DEFAULT_ID_BLOCK_SIZE = 32


class SessionStats:
    """Per-session counters, updated under the session's lock."""

    __slots__ = (
        "queries",
        "rows_returned",
        "rows_written",
        "errors",
        "rejected",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.rows_returned = 0
        self.rows_written = 0
        self.errors = 0
        self.rejected = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class Session:
    """One client's handle on the query service."""

    def __init__(
        self,
        service,
        session_id: int,
        client_id: str,
        id_block_size: int = DEFAULT_ID_BLOCK_SIZE,
        priority=None,
    ) -> None:
        if id_block_size < 1:
            raise ServiceError(
                f"id_block_size must be >= 1, got {id_block_size}"
            )
        self.service = service
        self.session_id = session_id
        self.client_id = client_id
        self.id_block_size = id_block_size
        #: default admission priority for this client's statements
        #: (level int or class name; None = interactive)
        self.priority = priority
        self.stats = SessionStats()
        self.closed = False
        self._lock = threading.Lock()
        # per-table (next unused id, end-of-block) of the private block
        self._id_blocks: Dict[str, List[int]] = {}

    # ------------------------------------------------------------ execution --

    def execute(self, text: str, priority=None, timeout=None):
        """Run one SQL statement through the service under this session.

        ``priority`` overrides the session's default class for this one
        statement; ``timeout`` bounds the admission queue wait.
        """
        if self.closed:
            raise ServiceError(
                f"session {self.session_id} ({self.client_id}) is closed"
            )
        return self.service.execute(
            text,
            session=self,
            priority=self.priority if priority is None else priority,
            timeout=timeout,
        )

    # ---------------------------------------------------- row id allocation --

    def allocate_row_ids(self, table_name: str, count: int) -> List[int]:
        """``count`` ids from this session's private block (refilled from
        the shared allocator in :data:`DEFAULT_ID_BLOCK_SIZE` chunks)."""
        source = self.service.source
        out: List[int] = []
        with self._lock:
            block = self._id_blocks.get(table_name)
            while len(out) < count:
                if block is None or block[0] >= block[1]:
                    size = max(self.id_block_size, count - len(out))
                    start = source.reserve_row_ids(table_name, size)
                    block = [start, start + size]
                    self._id_blocks[table_name] = block
                take = min(count - len(out), block[1] - block[0])
                out.extend(range(block[0], block[0] + take))
                block[0] += take
        return out

    # ------------------------------------------------------------- plumbing --

    def record(
        self,
        rows_returned: int = 0,
        rows_written: int = 0,
        error: bool = False,
        rejected: bool = False,
    ) -> None:
        with self._lock:
            self.stats.queries += 1
            self.stats.rows_returned += rows_returned
            self.stats.rows_written += rows_written
            if error:
                self.stats.errors += 1
            if rejected:
                self.stats.rejected += 1

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session({self.session_id}, {self.client_id!r})"


class SessionManager:
    """Opens, tracks, and reports on sessions for one service."""

    def __init__(self, service) -> None:
        self.service = service
        self._lock = threading.Lock()
        self._next_id = 1
        self._sessions: Dict[int, Session] = {}

    def open(
        self,
        client_id: Optional[str] = None,
        id_block_size: int = DEFAULT_ID_BLOCK_SIZE,
        priority=None,
    ) -> Session:
        with self._lock:
            session_id = self._next_id
            self._next_id += 1
            session = Session(
                self.service,
                session_id,
                client_id if client_id is not None else f"client-{session_id}",
                id_block_size,
                priority=priority,
            )
            self._sessions[session_id] = session
        return session

    def close(self, session: Session) -> None:
        session.close()
        with self._lock:
            self._sessions.pop(session.session_id, None)

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {
                "session_id": s.session_id,
                "client_id": s.client_id,
                **s.stats.snapshot(),
            }
            for s in sessions
        ]
