"""Admission control: bounded concurrency with explicit backpressure.

A DBSP serves many tenants from shared providers (paper Sec. I); without
admission control a traffic spike turns into unbounded thread growth and
collapsing provider queues.  :class:`AdmissionController` enforces two
bounds:

* ``max_in_flight`` — queries executing concurrently;
* ``queue_limit`` — queries allowed to *wait* for an execution slot.

A query arriving with both full is **rejected loudly** with
:class:`~repro.errors.ServiceOverloadedError` — the classical
load-shedding contract: tell the client to back off instead of degrading
everyone.  Queue depth is exported as a telemetry gauge and every
admit/reject as a counter, so the serve-sim report can show saturation.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .. import telemetry
from ..errors import ConfigurationError, ServiceOverloadedError


class AdmissionController:
    """Counting-semaphore-with-a-bounded-queue, instrumented."""

    def __init__(self, max_in_flight: int, queue_limit: int) -> None:
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.queued_peak = 0

    # ------------------------------------------------------------- lifecycle --

    def acquire(self, timeout: Optional[float] = None) -> None:
        """Take an execution slot, queueing if necessary.

        Raises :class:`ServiceOverloadedError` immediately when both the
        in-flight and queue bounds are full (no blocking — rejection is
        the backpressure signal), or :class:`ServiceOverloadedError` on
        queue-wait timeout when ``timeout`` is given.
        """
        with self._cond:
            if self._in_flight < self.max_in_flight:
                self._admit_locked()
                return
            if self._queued >= self.queue_limit:
                self.rejected_total += 1
                telemetry.count("service.rejected")
                raise ServiceOverloadedError(
                    f"service overloaded: {self._in_flight} queries in flight "
                    f"(max {self.max_in_flight}) and {self._queued} queued "
                    f"(limit {self.queue_limit}); retry later"
                )
            self._queued += 1
            self.queued_peak = max(self.queued_peak, self._queued)
            telemetry.set_gauge("service.queue_depth", self._queued)
            try:
                while self._in_flight >= self.max_in_flight:
                    if not self._cond.wait(timeout):
                        self.rejected_total += 1
                        telemetry.count("service.rejected")
                        raise ServiceOverloadedError(
                            f"service overloaded: no slot freed within "
                            f"{timeout}s (max_in_flight={self.max_in_flight})"
                        )
            finally:
                self._queued -= 1
                telemetry.set_gauge("service.queue_depth", self._queued)
            self._admit_locked()

    def _admit_locked(self) -> None:
        self._in_flight += 1
        self.admitted_total += 1
        telemetry.count("service.admitted")
        telemetry.set_gauge("service.in_flight", self._in_flight)

    def release(self) -> None:
        """Return an execution slot, waking one queued query."""
        with self._cond:
            if self._in_flight < 1:
                raise ConfigurationError(
                    "release() without a matching acquire()"
                )
            self._in_flight -= 1
            telemetry.set_gauge("service.in_flight", self._in_flight)
            self._cond.notify()

    # ------------------------------------------------------------ inspection --

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def snapshot(self) -> Dict[str, int]:
        with self._cond:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "queued_peak": self.queued_peak,
                "max_in_flight": self.max_in_flight,
                "queue_limit": self.queue_limit,
            }
