"""Admission control: bounded concurrency, priority queueing, shedding.

A DBSP serves many tenants from shared providers (paper Sec. I); without
admission control a traffic spike turns into unbounded thread growth and
collapsing provider queues.  :class:`AdmissionController` enforces two
bounds:

* ``max_in_flight`` — queries executing concurrently;
* ``queue_limit`` — queries allowed to *wait* for an execution slot.

The queue is the load-leveling buffer between an open-loop arrival
stream and a fixed-capacity service: bursts are absorbed up to the
bound, and beyond it work is **shed loudly** with
:class:`~repro.errors.ServiceOverloadedError` — tell the client to back
off instead of degrading everyone.

Priority classes (``interactive`` > ``batch`` > ``background``) shape
*which* work is shed first.  Each class may only occupy a shrinking
share of the queue (:meth:`queue_limit_for`), so as the queue fills the
lowest class is rejected first while interactive traffic still finds
room, and a freed slot is always handed to the highest-priority,
longest-waiting query.

Slot handoff is **direct**: :meth:`release` pops the best waiting
ticket, admits it on the waiter's behalf, and notifies only that
ticket's condition.  Two latent timing bugs in the previous
notify-one-and-recheck loop are structurally impossible here:

* **deadline drift** — the old loop passed the *full* timeout to every
  ``Condition.wait`` call, so each wakeup restarted the clock and a
  frequently-notified waiter could wait unboundedly past its deadline.
  Waits now compute one absolute deadline and pass only the remaining
  time to each wait.
* **lost wakeup** — a waiter that consumed a ``notify()`` but then
  timed out (or was interrupted) exited without re-notifying, stranding
  a free slot while other queued queries slept.  Now a grant transfers
  the slot with the notification; a granted waiter that is already
  unwinding releases the slot again, which re-grants to the next ticket.

Queue depth is exported as a telemetry gauge and every
admit/reject/shed as a labelled counter, so the serve-sim and overload
reports can show saturation per priority class.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from .. import telemetry
from ..errors import ConfigurationError, ServiceOverloadedError

#: Priority levels, highest first.  Lower number = more important =
#: served first and shed last.
PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1
PRIORITY_BACKGROUND = 2

PRIORITY_NAMES: Tuple[str, ...] = ("interactive", "batch", "background")
_LEVEL_BY_NAME = {name: level for level, name in enumerate(PRIORITY_NAMES)}


def priority_level(priority: Union[int, str, None]) -> int:
    """Normalise a priority given as level int, class name, or None."""
    if priority is None:
        return PRIORITY_INTERACTIVE
    if isinstance(priority, str):
        try:
            return _LEVEL_BY_NAME[priority]
        except KeyError:
            raise ConfigurationError(
                f"unknown priority {priority!r}; expected one of "
                f"{PRIORITY_NAMES}"
            ) from None
    if not 0 <= priority < len(PRIORITY_NAMES):
        raise ConfigurationError(
            f"priority level must be in [0, {len(PRIORITY_NAMES)}), "
            f"got {priority}"
        )
    return priority


def priority_name(level: int) -> str:
    """The class name of a priority level (for telemetry labels)."""
    return PRIORITY_NAMES[priority_level(level)]


class _Ticket:
    """One queued acquire: its own condition on the shared lock.

    Each waiter sleeps on a private condition so a grant can wake
    exactly the chosen waiter — no thundering herd, no notify stealing.
    ``granted`` means the slot has already been transferred to this
    ticket (``_in_flight`` incremented on its behalf); ``abandoned``
    marks a ticket whose waiter gave up, skipped lazily when popped.
    """

    __slots__ = ("priority", "seq", "granted", "abandoned", "cond")

    def __init__(self, priority: int, seq: int, lock: threading.Lock) -> None:
        self.priority = priority
        self.seq = seq
        self.granted = False
        self.abandoned = False
        self.cond = threading.Condition(lock)


class AdmissionController:
    """Counting-semaphore with a bounded priority queue, instrumented."""

    def __init__(
        self,
        max_in_flight: int,
        queue_limit: int,
        priority_levels: int = len(PRIORITY_NAMES),
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if queue_limit < 0:
            raise ConfigurationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        if not 1 <= priority_levels <= len(PRIORITY_NAMES):
            raise ConfigurationError(
                f"priority_levels must be in [1, {len(PRIORITY_NAMES)}], "
                f"got {priority_levels}"
            )
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.priority_levels = priority_levels
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, int, _Ticket]] = []
        self._seq = 0
        self._in_flight = 0
        self._queued = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.timed_out_total = 0
        self.queued_peak = 0
        self.admitted_by_priority = [0] * priority_levels
        self.rejected_by_priority = [0] * priority_levels

    # ------------------------------------------------------------- policy --

    def queue_limit_for(self, priority: int) -> int:
        """Queue occupancy allowed for a class: shrinks with priority.

        With P levels and queue limit Q, class p may only enter the
        queue while fewer than ``Q * (P - p) / P`` queries wait — the
        head of the queue is reserved for more important work, so under
        pressure background queries are shed first, then batch, and
        interactive last (the full Q).
        """
        level = priority_level(priority)
        return (self.queue_limit * (self.priority_levels - level)) // (
            self.priority_levels
        )

    def pressure(self) -> float:
        """Queue occupancy in [0, 1] — the degradation-ladder signal.

        With no queue configured, in-flight occupancy stands in (the
        only pressure signal a queueless controller has).
        """
        with self._lock:
            if self.queue_limit > 0:
                return self._queued / self.queue_limit
            return self._in_flight / self.max_in_flight

    # ------------------------------------------------------------- lifecycle --

    def acquire(
        self,
        timeout: Optional[float] = None,
        priority: Union[int, str, None] = None,
    ) -> None:
        """Take an execution slot, queueing if necessary.

        Raises :class:`ServiceOverloadedError` immediately when the
        priority class's queue allowance is exhausted (rejection is the
        backpressure signal), with ``timeout=0`` when no slot is free
        (non-blocking probe semantics), or on queue-wait timeout when a
        positive ``timeout`` is given.  The timeout is an **absolute
        deadline** computed once — wakeups wait only the remaining time.
        """
        level = priority_level(priority)
        with self._lock:
            if self._in_flight < self.max_in_flight and self._queued == 0:
                self._admit_locked(level)
                return
            allowance = self.queue_limit_for(level)
            if self._queued >= allowance:
                self._reject_locked(
                    level,
                    f"service overloaded: {self._in_flight} queries in flight "
                    f"(max {self.max_in_flight}) and {self._queued} queued "
                    f"(limit {self.queue_limit}, "
                    f"{PRIORITY_NAMES[level]} allowance {allowance}); "
                    f"retry later",
                )
            if timeout is not None and timeout <= 0:
                self._reject_locked(
                    level,
                    f"service overloaded: no free slot and timeout={timeout} "
                    f"forbids queueing (max_in_flight={self.max_in_flight})",
                )
            deadline = None if timeout is None else time.monotonic() + timeout
            ticket = _Ticket(level, self._seq, self._lock)
            self._seq += 1
            heapq.heappush(self._heap, (level, ticket.seq, ticket))
            self._queued += 1
            self.queued_peak = max(self.queued_peak, self._queued)
            telemetry.set_gauge("service.queue_depth", self._queued)
            # a slot may have freed between the fast-path check and the
            # push (or the queue was momentarily non-empty); granting here
            # admits this ticket immediately if it is the best waiter
            self._grant_next_locked()
            try:
                while not ticket.granted:
                    if deadline is None:
                        ticket.cond.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not ticket.cond.wait(remaining):
                        if ticket.granted:
                            break  # grant raced the timeout: slot is ours
                        ticket.abandoned = True
                        self._queued -= 1
                        telemetry.set_gauge(
                            "service.queue_depth", self._queued
                        )
                        self.timed_out_total += 1
                        self._reject_locked(
                            level,
                            f"service overloaded: no slot freed within "
                            f"{timeout}s "
                            f"(max_in_flight={self.max_in_flight})",
                            shed_reason="timeout",
                        )
            except BaseException:
                if ticket.granted:
                    # interrupted after the grant: hand the slot straight
                    # on so it is never stranded (the lost-wakeup fix)
                    self._queued -= 1
                    telemetry.set_gauge("service.queue_depth", self._queued)
                    self._release_locked()
                elif not ticket.abandoned:
                    ticket.abandoned = True
                    self._queued -= 1
                    telemetry.set_gauge("service.queue_depth", self._queued)
                raise
            self._queued -= 1
            telemetry.set_gauge("service.queue_depth", self._queued)

    def try_acquire(self, priority: Union[int, str, None] = None) -> bool:
        """Non-blocking: admit if a slot is free and nobody waits.

        Returns ``False`` (caller should queue or shed) instead of
        blocking; never raises for a full queue.  Used by the modelled
        open-loop executor, which manages virtual-time queueing itself.
        """
        level = priority_level(priority)
        with self._lock:
            if self._in_flight < self.max_in_flight and self._queued == 0:
                self._admit_locked(level)
                return True
            return False

    def record_shed(
        self, priority: Union[int, str, None], reason: str = "queue_full"
    ) -> None:
        """Count one shed query (modelled executors shed out-of-band)."""
        level = priority_level(priority)
        with self._lock:
            self._count_rejected_locked(level, reason)

    def note_queue_depth(self, depth: int) -> None:
        """Report an external (virtual-time) queue's depth for gauges."""
        with self._lock:
            self.queued_peak = max(self.queued_peak, depth)
            telemetry.set_gauge("service.queue_depth", depth)

    def _admit_locked(self, level: int) -> None:
        self._in_flight += 1
        self.admitted_total += 1
        self.admitted_by_priority[level] += 1
        telemetry.count("service.admitted", priority=PRIORITY_NAMES[level])
        telemetry.set_gauge("service.in_flight", self._in_flight)

    def _count_rejected_locked(self, level: int, reason: str) -> None:
        self.rejected_total += 1
        self.rejected_by_priority[level] += 1
        telemetry.count(
            "service.rejected",
            priority=PRIORITY_NAMES[level],
            reason=reason,
        )

    def _reject_locked(
        self, level: int, message: str, shed_reason: str = "queue_full"
    ) -> None:
        self._count_rejected_locked(level, shed_reason)
        raise ServiceOverloadedError(message)

    def _grant_next_locked(self) -> None:
        """Hand free slots to the best waiting tickets (direct handoff)."""
        while self._in_flight < self.max_in_flight and self._heap:
            _, _, ticket = heapq.heappop(self._heap)
            if ticket.abandoned:
                continue
            ticket.granted = True
            self._admit_locked(ticket.priority)
            ticket.cond.notify()

    def _release_locked(self) -> None:
        self._in_flight -= 1
        telemetry.set_gauge("service.in_flight", self._in_flight)
        self._grant_next_locked()

    def release(self) -> None:
        """Return an execution slot, granting it to the best queued query."""
        with self._lock:
            if self._in_flight < 1:
                raise ConfigurationError(
                    "release() without a matching acquire()"
                )
            self._release_locked()

    # ------------------------------------------------------------ inspection --

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "timed_out_total": self.timed_out_total,
                "queued_peak": self.queued_peak,
                "max_in_flight": self.max_in_flight,
                "queue_limit": self.queue_limit,
                "admitted_by_priority": {
                    PRIORITY_NAMES[level]: count
                    for level, count in enumerate(self.admitted_by_priority)
                },
                "rejected_by_priority": {
                    PRIORITY_NAMES[level]: count
                    for level, count in enumerate(self.rejected_by_priority)
                },
            }
