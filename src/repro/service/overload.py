"""Deterministic open-loop overload execution (discrete-event, modelled).

:func:`run_open_loop` drives an open-loop arrival stream (from
:mod:`repro.workloads.traffic`) through a modelled service with
``max_in_flight`` virtual servers and a bounded priority queue — as a
**discrete-event simulation on the modelled clock**, not wall-clock
threads.  That choice is what makes the overload gates CI-stable: the
same seed yields the same arrivals, the same per-query service times
(measured as the real modelled-network cost of executing each query
against the live :class:`~repro.client.datasource.DataSource`), and
therefore the same queue trajectories, shed counts, and latency
quantiles, on any machine at any load multiple.

Mechanics per arriving event:

1. virtual servers that finished before the arrival complete, each
   freed slot going to the best queued query (priority, then FIFO);
2. the degradation ladder updates from queue occupancy — at
   ``degrade_at`` the source's ``verified_reads`` drops to plain quorum
   reads (cheaper, still correct), restored at ``restore_at``
   (hysteresis so the mode doesn't flap);
3. the arrival takes a free slot if one exists, else queues under its
   priority class's shrinking allowance
   (:meth:`~repro.service.admission.AdmissionController.queue_limit_for`),
   else is **shed** — background first, interactive last.

Every executed query is checked against a plaintext mirror that applies
writes in execution order, so the overload gate's "zero incorrect
results under 4× load" is a real end-to-end correctness claim, not a
status-code count.  Outcomes land in the SLO metrics
(:mod:`repro.service.slo`) and the returned report embeds the rollup.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..client.datasource import DataSource
from ..errors import ConfigurationError, ReproError
from ..workloads.traffic import (
    KIND_AGGREGATE,
    KIND_INSERT,
    KIND_POINT,
    KIND_RANGE,
    KIND_UPDATE,
    TrafficEvent,
)
from .admission import AdmissionController, priority_name
from .slo import (
    COMPLETED_METRIC,
    DEGRADED_METRIC,
    FAILED_METRIC,
    INCORRECT_METRIC,
    SHED_METRIC,
    observe_latency,
    slo_report,
)

#: Floor on a query's modelled service time: a fully cache-hit query can
#: cost zero modelled network seconds, and zero-width service would make
#: a virtual server infinitely fast.
MIN_SERVICE_SECONDS = 1e-9


def estimate_capacity(
    source: DataSource,
    eids: Sequence[int],
    max_in_flight: int = 8,
    probes: int = 50,
    seed: int = 11,
) -> Dict[str, float]:
    """Measure the deployment's modelled capacity with a light probe.

    Runs a sparse, **read-only** probe stream (writes would perturb the
    table the real run is about to flood) and derives capacity as
    ``max_in_flight / mean_service_seconds`` — the rate at which the
    virtual servers can drain work.  Callers use the returned
    ``capacity_qps`` to express offered load as a multiple of capacity
    ("4×"), which is what makes the overload gates meaningful across
    deployment sizes.  Deterministic per seed, like everything else.
    """
    from ..workloads.traffic import TrafficProfile, generate_traffic

    probe_profile = TrafficProfile(
        mean_interarrival=10.0,  # sparse: every probe sees an idle service
        mix=(0.55, 0.25, 0.20, 0.0, 0.0),
    )
    events = generate_traffic(eids, probes, seed=seed, profile=probe_profile)
    report = run_open_loop(
        source,
        events,
        max_in_flight=max_in_flight,
        queue_limit=0,
        check_results=False,
    )
    mean_service = report["modelled_network_seconds"] / max(
        report["completed"], 1
    )
    mean_service = max(mean_service, MIN_SERVICE_SECONDS)
    return {
        "mean_service_seconds": round(mean_service, 6),
        "capacity_qps": round(max_in_flight / mean_service, 2),
    }


class PlaintextMirror:
    """Execution-order oracle for traffic events.

    Holds the plaintext rows and applies each write *when the service
    executes it* (not when it arrives), so the expected answer for every
    query reflects exactly the mutations the real source has applied so
    far — arrival order and execution order diverge under queueing.
    """

    def __init__(self, rows: Sequence[Dict]) -> None:
        self.rows: Dict[int, Dict] = {
            row["eid"]: {"name": row["name"], "salary": row["salary"]}
            for row in rows
        }

    def check_and_apply(self, event: TrafficEvent, actual: object) -> bool:
        """Whether ``actual`` matches the plaintext truth; applies writes."""
        kind = event.kind
        if kind == KIND_POINT:
            (eid,) = event.params
            row = self.rows.get(eid)
            expected = (
                [] if row is None
                else [{"name": row["name"], "salary": row["salary"]}]
            )
            return actual == expected
        if kind == KIND_RANGE:
            lo, hi = event.params
            expected_eids = sorted(
                eid
                for eid, row in self.rows.items()
                if lo <= row["salary"] <= hi
            )
            if not isinstance(actual, list):
                return False
            return sorted(r["eid"] for r in actual) == expected_eids
        if kind == KIND_AGGREGATE:
            lo, hi = event.params
            expected_count = sum(
                1 for row in self.rows.values() if lo <= row["salary"] <= hi
            )
            return actual == expected_count
        if kind == KIND_UPDATE:
            eid, salary = event.params
            present = eid in self.rows
            if present:
                self.rows[eid]["salary"] = salary
            return actual == (1 if present else 0)
        if kind == KIND_INSERT:
            eid, name, _lastname, _dept, salary = event.params
            self.rows[eid] = {"name": name, "salary": salary}
            return actual == 1
        raise ConfigurationError(f"unknown traffic kind {kind!r}")


def run_open_loop(
    source: DataSource,
    events: Sequence[TrafficEvent],
    max_in_flight: int = 8,
    queue_limit: int = 32,
    degrade_at: float = 0.5,
    restore_at: float = 0.2,
    availability_target: float = 0.999,
    check_results: bool = True,
) -> Dict[str, object]:
    """Run an event stream to completion; return the overload report.

    ``degrade_at``/``restore_at`` are queue-occupancy fractions for the
    verified-read degradation ladder (ignored when the source does not
    use verified reads).  With ``check_results`` every answer is
    compared against the plaintext mirror — the report's ``incorrect``
    must be zero for the overload gate to pass.
    """
    if not 0.0 <= restore_at <= degrade_at <= 1.0:
        raise ConfigurationError(
            f"need 0 <= restore_at <= degrade_at <= 1, got "
            f"restore_at={restore_at}, degrade_at={degrade_at}"
        )
    events = sorted(events, key=lambda e: e.arrival)
    network = source.cluster.network
    admission = AdmissionController(max_in_flight, queue_limit)
    mirror: Optional[PlaintextMirror] = None
    if check_results:
        mirror = PlaintextMirror(
            source.sql("SELECT eid, name, salary FROM Employees")
        )
    premium = bool(source.verified_reads)
    start_modelled = network.modelled_seconds
    start_bytes = network.total_bytes
    start_messages = network.total_messages

    state = {
        "degraded": False,
        "degrade_spans": 0,
        "completed": 0,
        "failed": 0,
        "shed": 0,
        "degraded_served": 0,
        "busy_seconds": 0.0,
        "last_finish": 0.0,
        "seq": 0,
    }
    incorrect: List[str] = []
    completions: List[Tuple[float, int, TrafficEvent]] = []  # server heap
    queue: List[Tuple[int, int, TrafficEvent]] = []  # (priority, seq)

    def set_degraded(on: bool) -> None:
        if not premium or state["degraded"] == on:
            return
        state["degraded"] = on
        # transparently downgrade reads: plain quorum reads are cheaper
        # but still reconstruct the same values — correctness is never
        # traded, only tamper-evidence, and only until pressure drops
        source.verified_reads = not on
        if on:
            state["degrade_spans"] += 1
            telemetry.count("service.degrade_enter")
        else:
            telemetry.count("service.degrade_exit")

    def update_ladder() -> None:
        if queue_limit <= 0:
            return
        occupancy = len(queue) / queue_limit
        if not state["degraded"] and occupancy >= degrade_at:
            set_degraded(True)
        elif state["degraded"] and occupancy <= restore_at:
            set_degraded(False)

    def start_job(event: TrafficEvent, now: float) -> None:
        pname = priority_name(event.priority)
        served_degraded = (
            premium and state["degraded"] and not event.is_write
        )
        began = network.modelled_seconds
        error: Optional[str] = None
        actual: object = None
        try:
            actual = source.sql(event.sql)
        except ReproError as exc:
            error = str(exc)
        service_seconds = max(
            network.modelled_seconds - began, MIN_SERVICE_SECONDS
        )
        finish = now + service_seconds
        state["seq"] += 1
        heapq.heappush(completions, (finish, state["seq"], event))
        state["busy_seconds"] += service_seconds
        state["last_finish"] = max(state["last_finish"], finish)
        if error is not None:
            state["failed"] += 1
            telemetry.count(FAILED_METRIC, priority=pname)
            return
        state["completed"] += 1
        telemetry.count(COMPLETED_METRIC, priority=pname)
        observe_latency(finish - event.arrival, pname)
        if served_degraded:
            state["degraded_served"] += 1
            telemetry.count(DEGRADED_METRIC, priority=pname)
        if mirror is not None and not mirror.check_and_apply(event, actual):
            incorrect.append(event.sql)
            telemetry.count(INCORRECT_METRIC, priority=pname)

    def drain_until(virtual_time: float) -> None:
        """Complete every server finishing by ``virtual_time``; refill."""
        while completions and completions[0][0] <= virtual_time:
            finish, _, _ = heapq.heappop(completions)
            admission.release()
            update_ladder()
            if queue:
                _, _, queued_event = heapq.heappop(queue)
                admission.note_queue_depth(len(queue))
                if admission.try_acquire(queued_event.priority):
                    start_job(queued_event, finish)

    try:
        for event in events:
            drain_until(event.arrival)
            update_ladder()
            if admission.try_acquire(event.priority):
                start_job(event, event.arrival)
                continue
            allowance = admission.queue_limit_for(event.priority)
            if len(queue) < allowance:
                state["seq"] += 1
                heapq.heappush(
                    queue, (event.priority, state["seq"], event)
                )
                admission.note_queue_depth(len(queue))
                update_ladder()
            else:
                state["shed"] += 1
                admission.record_shed(event.priority)
                telemetry.count(
                    SHED_METRIC,
                    priority=priority_name(event.priority),
                    reason="queue_full",
                )
        drain_until(float("inf"))
    finally:
        source.verified_reads = premium  # restore the configured mode
    assert not queue, "virtual queue must drain once all servers finish"

    offered = len(events)
    arrival_span = events[-1].arrival if events else 0.0
    makespan = max(state["last_finish"], arrival_span)
    report: Dict[str, object] = {
        "offered": offered,
        "completed": state["completed"],
        "failed": state["failed"],
        "shed": state["shed"],
        "incorrect": len(incorrect),
        "incorrect_examples": incorrect[:5],
        "degraded_served": state["degraded_served"],
        "degrade_spans": state["degrade_spans"],
        "arrival_seconds": round(arrival_span, 6),
        "makespan_seconds": round(makespan, 6),
        "offered_qps": (
            round(offered / arrival_span, 2) if arrival_span else 0.0
        ),
        "goodput_qps": (
            round(state["completed"] / makespan, 2) if makespan else 0.0
        ),
        "utilization": (
            round(
                state["busy_seconds"] / (makespan * max_in_flight), 4
            )
            if makespan
            else 0.0
        ),
        "modelled_network_seconds": round(
            network.modelled_seconds - start_modelled, 6
        ),
        "network_bytes": network.total_bytes - start_bytes,
        "network_messages": network.total_messages - start_messages,
        "admission": admission.snapshot(),
    }
    breakers = getattr(source.cluster, "breakers", None)
    if breakers is not None:
        report["breakers"] = breakers.snapshot()
    if telemetry.is_enabled():
        report["slo"] = slo_report(availability_target=availability_target)
    return report
