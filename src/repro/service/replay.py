"""Multi-client workload replay: the engine behind ``repro.cli serve-sim``.

Generates a deterministic per-client statement mix (point selects, salary
range scans, updates, inserts) over the Employees workload, runs one
thread per client through :class:`~repro.service.service.QueryService`
sessions, and reports throughput and latency alongside the counters of
every service layer.

Two clocks appear in the report and they answer different questions:

* **modelled network seconds** — the simulated WAN time of
  :class:`~repro.sim.network.LatencyModel`; this is where cross-query
  batching shows up, because a combined round advances the clock once
  instead of once per rider;
* **wall seconds** — real host time; this is where admission queueing
  and lock contention show up.

Overloaded statements (admission rejections) are retried with a short
backoff and counted, so the report separates offered load from goodput.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..client.datasource import DataSource
from ..errors import ReproError, ServiceOverloadedError
from ..sim.rng import DeterministicRNG
from ..workloads.employees import EID_HI, SALARY_HI, SALARY_LO
from .service import QueryService

_NAMES = ["ALICE", "BOB", "CARLA", "DEVI", "EMIL", "FARAH", "GUS", "HANA"]
_DEPTS = ["SALES", "ENG", "HR", "OPS"]

#: Statement-mix weights (point select, range select, update, insert).
DEFAULT_MIX = (0.6, 0.2, 0.15, 0.05)


def generate_workload(
    eids: List[int],
    clients: int,
    statements_per_client: int,
    seed: int = 7,
    mix=DEFAULT_MIX,
    table: str = "Employees",
) -> List[List[str]]:
    """Deterministic per-client statement lists.

    Inserted eids are drawn from above :data:`~repro.workloads.employees.
    EID_HI`'s populated range per (seed, client, position), so concurrent
    clients never insert the same key.
    """
    if not eids:
        raise ValueError("cannot generate a workload over an empty table")
    point_w, range_w, update_w, insert_w = mix
    total_w = point_w + range_w + update_w + insert_w
    workload: List[List[str]] = []
    for client in range(clients):
        rng = DeterministicRNG(seed, f"serve-sim/client-{client}")
        statements: List[str] = []
        for position in range(statements_per_client):
            roll = rng.randint(0, 9_999) / 10_000.0 * total_w
            if roll < point_w:
                eid = rng.choice(eids)
                statements.append(
                    f"SELECT name, salary FROM {table} WHERE eid = {eid}"
                )
            elif roll < point_w + range_w:
                lo = rng.randint(SALARY_LO, SALARY_HI - 10_000)
                statements.append(
                    f"SELECT eid FROM {table} "
                    f"WHERE salary BETWEEN {lo} AND {lo + 10_000}"
                )
            elif roll < point_w + range_w + update_w:
                eid = rng.choice(eids)
                salary = rng.randint(SALARY_LO, SALARY_HI)
                statements.append(
                    f"UPDATE {table} SET salary = {salary} WHERE eid = {eid}"
                )
            else:
                # a fresh eid per (client, position), allocated downward
                # from the top of the domain: distinct across clients by
                # construction (workload generators draw uniformly, so a
                # collision with an existing row is vanishingly unlikely
                # and harmless — it would just shadow a point query)
                eid = EID_HI - (client * statements_per_client + position)
                name = _NAMES[position % len(_NAMES)]
                dept = _DEPTS[client % len(_DEPTS)]
                salary = rng.randint(SALARY_LO, SALARY_HI)
                statements.append(
                    f"INSERT INTO {table} "
                    f"(eid, name, lastname, department, salary) VALUES "
                    f"({eid}, '{name}', 'SERVED', '{dept}', {salary})"
                )
        workload.append(statements)
    return workload


def run_simulation(
    source: DataSource,
    clients: int = 8,
    statements_per_client: int = 12,
    seed: int = 7,
    max_in_flight: int = 8,
    queue_limit: int = 16,
    max_retries: int = 50,
    service: Optional[QueryService] = None,
    workload: Optional[List[List[str]]] = None,
    transactional: bool = False,
) -> Dict[str, object]:
    """Replay a generated workload through concurrent sessions; report.

    A caller may supply a prebuilt ``service`` (to control batching or
    capacities) and/or an explicit ``workload``; by default both are
    derived from the arguments.
    """
    eids = sorted(
        row["eid"] for row in source.sql("SELECT eid FROM Employees")
    )
    if workload is None:
        workload = generate_workload(
            eids, clients, statements_per_client, seed
        )
    own_service = service is None
    if service is None:
        service = QueryService(
            source,
            max_in_flight=max_in_flight,
            queue_limit=queue_limit,
            transactional=transactional,
        )
    network = source.cluster.network
    start_modelled = network.modelled_seconds
    start_bytes = network.total_bytes
    start_messages = network.total_messages
    latencies: List[float] = []
    latency_lock = threading.Lock()
    rejected_retries = [0]
    failures: List[str] = []

    def run_client(client_index: int) -> None:
        session = service.open_session(f"sim-client-{client_index}")
        try:
            for text in workload[client_index]:
                attempts = 0
                while True:
                    began = time.monotonic()
                    try:
                        session.execute(text)
                    except ServiceOverloadedError:
                        attempts += 1
                        with latency_lock:
                            rejected_retries[0] += 1
                        if attempts > max_retries:
                            with latency_lock:
                                failures.append(f"{text}: gave up after "
                                                f"{max_retries} overload retries")
                            break
                        time.sleep(0.001 * attempts)
                        continue
                    except ReproError as exc:
                        # a failing statement is part of the report, not a
                        # reason to kill the client thread
                        with latency_lock:
                            failures.append(f"{text}: {exc}")
                        break
                    with latency_lock:
                        latencies.append(time.monotonic() - began)
                    break
        finally:
            service.close_session(session)

    threads = [
        threading.Thread(
            target=run_client, args=(i,), name=f"repro-sim-client-{i}"
        )
        for i in range(len(workload))
    ]
    wall_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.monotonic() - wall_start
    report = service.report()
    if own_service:
        service.close()
    completed = len(latencies)
    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

    modelled = network.modelled_seconds - start_modelled
    return {
        "workload": {
            "clients": len(workload),
            "statements_per_client": statements_per_client,
            "statements_total": sum(len(s) for s in workload),
            "seed": seed,
        },
        "completed": completed,
        "failed": len(failures),
        "failures": failures,
        "rejected_retries": rejected_retries[0],
        "wall_seconds": wall_seconds,
        "modelled_network_seconds": modelled,
        "network_bytes": network.total_bytes - start_bytes,
        "network_messages": network.total_messages - start_messages,
        "throughput_wall_qps": completed / wall_seconds if wall_seconds else 0.0,
        "throughput_modelled_qps": completed / modelled if modelled else 0.0,
        "latency_wall_seconds": {
            "mean": sum(latencies) / completed if completed else 0.0,
            "p50": percentile(0.50),
            "p95": percentile(0.95),
            "max": latencies[-1] if latencies else 0.0,
        },
        **report,
    }
