"""Approximate-value recovery from order-preserving shares (ABL-3).

ABL-2 executes the paper's *exact*-recovery attack and shows the slot
construction resists it.  This module asks the harder, more honest
question later OPE literature raised: how much does a provider learn
**approximately**?

The *normalization attack*: an adversarial provider observing the shares
of a searchable column — with no key material at all — assumes values
roughly span the (public) domain and linearly rescales each share between
the observed extremes:

    estimate(share) = lo + (share - min_share) / (max_share - min_share)
                         * (hi - lo)

Because the slot construction makes shares *near-affine* in the value
(coefficients are ``base + rank·W + hash mod W``, so the keyed hash only
jitters within one slot width), this crude estimator lands within a
fraction of a percent of the true value.  **Order-preserving sharing leaks
approximate magnitudes by construction**, not just order — a finding the
2009 paper does not discuss and honest reproduction should surface
(cf. Boldyreva et al. 2011, Naveed et al. 2015 for the OPE analogues).

The same attack against *random* Shamir shares produces estimates no
better than guessing — quantifying exactly what the searchability
trade-off costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.order_preserving import IntegerDomain
from ..errors import ShareError


@dataclass
class ApproximationOutcome:
    """Accuracy scorecard of a normalization attack run."""

    total: int
    mean_absolute_error: float
    mean_relative_error: float
    within_1_percent: float
    within_10_percent: float

    @property
    def leaks_magnitude(self) -> bool:
        """Rule of thumb: >50% of estimates within 10% of the domain span
        means the adversary learns approximate values."""
        return self.within_10_percent > 0.5


def normalization_attack(
    observed_shares: Sequence[int], domain: IntegerDomain
) -> List[float]:
    """Estimate plaintext values from shares by linear rescaling.

    Needs nothing but the shares and the (public) domain bounds.  The
    adversary assumes the data roughly spans the domain; with skewed data
    the absolute calibration degrades but *relative* structure (who earns
    about twice whom) survives, which is usually the damaging part.
    """
    if len(observed_shares) < 2:
        raise ShareError("need at least two shares to normalise")
    lo_share = min(observed_shares)
    hi_share = max(observed_shares)
    if lo_share == hi_share:
        return [float(domain.lo)] * len(observed_shares)
    span = domain.hi - domain.lo
    return [
        domain.lo + (share - lo_share) / (hi_share - lo_share) * span
        for share in observed_shares
    ]


def evaluate_attack(
    estimates: Sequence[float],
    true_values: Sequence[int],
    domain: IntegerDomain,
) -> ApproximationOutcome:
    """Score estimates against ground truth, relative to the domain span."""
    if len(estimates) != len(true_values):
        raise ShareError("estimate/truth length mismatch")
    if not estimates:
        raise ShareError("nothing to evaluate")
    span = max(1, domain.hi - domain.lo)
    absolute_errors = [
        abs(estimate - truth)
        for estimate, truth in zip(estimates, true_values)
    ]
    relative_errors = [error / span for error in absolute_errors]
    return ApproximationOutcome(
        total=len(estimates),
        mean_absolute_error=sum(absolute_errors) / len(absolute_errors),
        mean_relative_error=sum(relative_errors) / len(relative_errors),
        within_1_percent=sum(1 for e in relative_errors if e <= 0.01)
        / len(relative_errors),
        within_10_percent=sum(1 for e in relative_errors if e <= 0.10)
        / len(relative_errors),
    )


def attack_op_scheme(
    scheme, values: Sequence[int], provider_index: int
) -> ApproximationOutcome:
    """Run the normalization attack against an order-preserving scheme.

    ``scheme`` may be the slot construction or the strawman — both leak
    comparably to this estimator, which is the point: the keyed slots
    defeat *exact* inversion (ABL-2) but cannot hide magnitude, because
    magnitude is what order-preservation over a known domain encodes.
    """
    shares = [scheme.share(value, provider_index) for value in values]
    estimates = normalization_attack(shares, scheme.domain)
    return evaluate_attack(estimates, values, scheme.domain)


def attack_random_shares(
    shares_per_value: Sequence[Dict[int, int]],
    true_values: Sequence[int],
    domain: IntegerDomain,
    provider_index: int,
) -> ApproximationOutcome:
    """The same attack against one provider's *random* Shamir shares.

    Expected outcome: accuracy indistinguishable from guessing — each
    share is a uniform field element independent of the value, which is
    what information-theoretic secrecy buys for non-searchable columns.
    """
    observed = [shares[provider_index] for shares in shares_per_value]
    estimates = normalization_attack(observed, domain)
    return evaluate_attack(estimates, true_values, domain)
