"""The paper's attack on the monotone-function strawman (Sec. IV).

The first order-preserving construction the paper considers derives
coefficients from public monotone affine functions — and the paper itself
shows why that fails: expanding ``p_v(x_i)`` gives

    share(v, i) = A_i · v + B_i

with constants ``A_i, B_i`` fixed per provider.  "If a service provider is
able to break this method for one secret item [it] can determine the
complete set of the secret values."

This module makes that argument executable (ABL-2):

* :func:`recover_affine_map` — from two known (value, share) pairs, solve
  the affine map with no knowledge of the coefficient functions;
* :func:`break_strawman` — invert every observed share through the map;
* :func:`attack_slot_scheme` — run the *same* attack against the secure
  slot construction and report how badly it fails (the per-value keyed
  slot offsets destroy the affine structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..core.order_preserving import MonotoneStrawmanScheme, OrderPreservingScheme
from ..errors import ShareError


@dataclass(frozen=True)
class AffineMap:
    """share = slope * value + intercept (exact rationals)."""

    slope: Fraction
    intercept: Fraction

    def invert(self, share: int) -> Fraction:
        return (Fraction(share) - self.intercept) / self.slope


def recover_affine_map(
    known_pairs: Sequence[Tuple[int, int]],
) -> AffineMap:
    """Solve the provider's (A_i, B_i) from ≥ 2 known (value, share) pairs.

    This is the adversary's step: it needs no key material, only two
    plaintext-share correspondences (e.g. from auxiliary knowledge about
    two employees' salaries).
    """
    if len(known_pairs) < 2:
        raise ShareError("need at least two known (value, share) pairs")
    (v1, s1), (v2, s2) = known_pairs[0], known_pairs[1]
    if v1 == v2:
        raise ShareError("known pairs must have distinct values")
    slope = Fraction(s2 - s1, v2 - v1)
    intercept = Fraction(s1) - slope * v1
    # consistency check against any further pairs (an inconsistency means
    # the scheme is NOT affine — i.e. the attack does not apply)
    for value, share in known_pairs[2:]:
        if slope * value + intercept != share:
            raise ShareError(
                "known pairs are not collinear; the sharing is not affine "
                "in the secret (attack inapplicable)"
            )
    return AffineMap(slope, intercept)


def break_strawman(
    observed_shares: Sequence[int],
    known_pairs: Sequence[Tuple[int, int]],
) -> List[Optional[int]]:
    """Recover every secret behind the observed shares of one provider.

    Returns one recovered integer per share (None when the inversion is
    not an integer — which never happens against the strawman and almost
    always happens against the slot scheme).
    """
    mapping = recover_affine_map(known_pairs)
    out: List[Optional[int]] = []
    for share in observed_shares:
        candidate = mapping.invert(share)
        out.append(int(candidate) if candidate.denominator == 1 else None)
    return out


@dataclass
class AttackOutcome:
    """Scorecard of one attack run (charted by ABL-2)."""

    total: int
    recovered: int
    correct: int

    @property
    def success_rate(self) -> float:
        return self.correct / self.total if self.total else 0.0


def attack_strawman_scheme(
    scheme: MonotoneStrawmanScheme,
    secrets: Sequence[int],
    provider_index: int,
    known_values: Sequence[int],
) -> AttackOutcome:
    """End-to-end attack against the insecure strawman.

    The adversary is provider ``provider_index``: it holds the shares of
    every secret and has learned the plaintext of ``known_values`` (which
    must appear in ``secrets``).  Expected outcome: 100% recovery.
    """
    known_pairs = [
        (value, scheme.share(value, provider_index)) for value in known_values
    ]
    observed = [scheme.share(value, provider_index) for value in secrets]
    recovered = break_strawman(observed, known_pairs)
    correct = sum(
        1 for guess, truth in zip(recovered, secrets) if guess == truth
    )
    return AttackOutcome(
        total=len(secrets),
        recovered=sum(1 for g in recovered if g is not None),
        correct=correct,
    )


def attack_slot_scheme(
    scheme: OrderPreservingScheme,
    secrets: Sequence[int],
    provider_index: int,
    known_values: Sequence[int],
) -> AttackOutcome:
    """The same affine attack against the secure slot construction.

    The keyed per-value slot offsets make shares non-affine in the secret,
    so the recovered "affine map" (fit through two known points) inverts
    other shares to garbage.  Expected outcome: recovery no better than
    the known points themselves.
    """
    known_pairs = [
        (value, scheme.share(value, provider_index)) for value in known_values
    ]
    try:
        mapping = recover_affine_map(known_pairs)
    except ShareError:
        return AttackOutcome(total=len(secrets), recovered=0, correct=0)
    correct = 0
    recovered = 0
    for value in secrets:
        share = scheme.share(value, provider_index)
        guess = mapping.invert(share)
        if guess.denominator == 1:
            recovered += 1
            if int(guess) == value:
                correct += 1
    return AttackOutcome(total=len(secrets), recovered=recovered, correct=correct)
