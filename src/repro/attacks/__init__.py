"""Executable security analyses from the paper's own arguments."""
