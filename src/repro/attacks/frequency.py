"""Frequency analysis against deterministic shares.

The third leakage channel of the searchable scheme (after order, ABL-3's
magnitude): **frequency**.  Equal plaintext values produce equal shares at
each provider — that determinism is what enables provider-side equality
and joins (Sec. V-A) — so a provider sees the exact histogram of the
column.  An adversary with auxiliary knowledge of the value distribution
(public census data, industry salary bands, department sizes) matches
observed share frequencies against expected value frequencies, the
classic attack Naveed et al. ran against deterministic/OPE-encrypted
medical databases.

Because the scheme is also order-preserving, the matching here is even
easier than the general assignment problem: sort shares, sort the assumed
distribution, align rank-by-rank.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import ShareError


@dataclass
class FrequencyOutcome:
    """Scorecard of a frequency-matching attack."""

    total_rows: int
    correct_rows: int
    distinct_values: int

    @property
    def row_recovery_rate(self) -> float:
        return self.correct_rows / self.total_rows if self.total_rows else 0.0


def frequency_match(
    observed_shares: Sequence[int],
    assumed_distribution: Dict[object, int],
) -> Dict[int, object]:
    """Map each distinct share to a guessed plaintext value.

    ``assumed_distribution`` is the adversary's auxiliary knowledge:
    value → expected count.  Both sides are sorted — shares numerically
    (share order is value order for OP schemes), values by their natural
    order — and aligned positionally, with counts used to catch mismatched
    multiplicities.
    """
    if not observed_shares:
        raise ShareError("no shares observed")
    if not assumed_distribution:
        raise ShareError("empty assumed distribution")
    share_counts = Counter(observed_shares)
    shares_by_order = sorted(share_counts)
    values_by_order = sorted(assumed_distribution)
    mapping: Dict[int, object] = {}
    for position, share in enumerate(shares_by_order):
        if position < len(values_by_order):
            mapping[share] = values_by_order[position]
        else:  # more distinct shares than assumed values: reuse the top
            mapping[share] = values_by_order[-1]
    return mapping


def attack_column(
    scheme,
    column_values: Sequence[object],
    encode,
    provider_index: int,
) -> FrequencyOutcome:
    """End-to-end frequency attack against one provider's column of shares.

    The adversary is assumed to know the *exact* value distribution (the
    strongest, and for public demographics realistic, auxiliary model).
    ``encode`` maps a plaintext value to its domain integer.
    """
    shares = [
        scheme.share(encode(value), provider_index) for value in column_values
    ]
    distribution = Counter(column_values)
    mapping = frequency_match(shares, dict(distribution))
    correct = sum(
        1
        for value, share in zip(column_values, shares)
        if mapping[share] == value
    )
    return FrequencyOutcome(
        total_rows=len(column_values),
        correct_rows=correct,
        distinct_values=len(distribution),
    )
