"""Deterministic randomness for the whole library.

Every component that needs random values takes a :class:`DeterministicRNG`
(or a seed from which it builds one).  Nothing in the library calls
``random`` module-level functions or reads OS entropy, so every test,
example, and benchmark is reproducible bit-for-bit across runs and
machines.

Independent sub-streams are derived by *name* rather than by call order
(:meth:`DeterministicRNG.substream`), so adding a new consumer of
randomness does not perturb the values seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List, Sequence, TypeVar

T = TypeVar("T")

_STREAM_SALT = b"repro.rng.v1"


def _derive_seed(seed: int, name: str) -> int:
    """Derive a 128-bit child seed from (seed, name) via SHA-256."""
    digest = hashlib.sha256(
        _STREAM_SALT + seed.to_bytes(32, "big", signed=False) + name.encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:16], "big")


class DeterministicRNG:
    """A seeded random stream with named, order-independent sub-streams.

    Wraps :class:`random.Random` with a few convenience methods used across
    the library (field elements, shuffles, Zipf sampling) and the
    :meth:`substream` derivation that keeps consumers independent.
    """

    def __init__(self, seed: int = 0, _name: str = "root") -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self.name = _name
        self._random = random.Random(_derive_seed(seed, _name))

    def substream(self, name: str) -> "DeterministicRNG":
        """Return an independent RNG derived from this one by ``name``.

        The child depends only on ``(self.seed, self.name, name)`` — never
        on how many values have been drawn — so call order elsewhere cannot
        perturb it.
        """
        return DeterministicRNG(self.seed, f"{self.name}/{name}")

    # -- basic draws -------------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def randrange(self, stop: int) -> int:
        """Uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return self._random.uniform(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """Sample ``count`` distinct elements without replacement."""
        return self._random.sample(list(items), count)

    def shuffled(self, items: Sequence[T]) -> List[T]:
        """Return a new list with the items in random order."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def bytes(self, count: int) -> bytes:
        """Return ``count`` pseudo-random bytes."""
        return self._random.getrandbits(count * 8).to_bytes(count, "big")

    # -- library-specific draws -------------------------------------------

    def field_element(self, modulus: int) -> int:
        """Uniform element of Z_modulus."""
        return self._random.randrange(modulus)

    def nonzero_field_element(self, modulus: int) -> int:
        """Uniform element of Z_modulus \\ {0}."""
        if modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {modulus}")
        return self._random.randrange(1, modulus)

    def distinct_field_elements(self, count: int, modulus: int) -> List[int]:
        """``count`` distinct nonzero elements of Z_modulus.

        Used for the client's secret evaluation points X (Sec. III): they
        must be distinct (interpolation) and nonzero (the share at x=0
        would *be* the secret).
        """
        if count >= modulus:
            raise ValueError(
                f"cannot draw {count} distinct nonzero elements mod {modulus}"
            )
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            candidate = self._random.randrange(1, modulus)
            if candidate not in seen:
                seen.add(candidate)
                chosen.append(candidate)
        return chosen

    def zipf_rank(self, n_items: int, skew: float = 1.0) -> int:
        """Draw a 1-based rank from a Zipf(skew) distribution over n items.

        Implemented by inverse-CDF over the finite harmonic weights; O(n)
        set-up per call is avoided by callers caching via
        :func:`zipf_sampler`.
        """
        return zipf_sampler(self, n_items, skew)()

    def iter_ints(self, low: int, high: int) -> Iterator[int]:
        """Infinite iterator of uniform integers in [low, high]."""
        while True:
            yield self._random.randint(low, high)


def zipf_sampler(rng: DeterministicRNG, n_items: int, skew: float = 1.0):
    """Build a callable returning 1-based Zipf(skew) ranks over ``n_items``.

    Precomputes the cumulative weights once; each draw is a binary search.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, n_items + 1):
        total += 1.0 / (rank**skew)
        cumulative.append(total)

    def draw() -> int:
        target = rng.random() * total
        lo, hi = 0, n_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    return draw
