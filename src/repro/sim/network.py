"""Simulated client↔provider network with byte-exact accounting.

The paper's evaluation question is a **computation vs communication
trade-off** (Sec. V-A, "Future work entails a detailed performance
evaluation...").  Communication is therefore measured, not guessed: every
request and response between the data source and a provider passes through
a :class:`SimulatedNetwork`, which sizes the payload with a documented
wire format and tallies messages/bytes per endpoint and direction.

Wire format (sizing only — data never actually leaves the process):

* integer: 2-byte tag/length header + big-endian magnitude bytes
  (order-preserving shares are big integers, so their real size matters);
* string: 2-byte header + UTF-8 bytes;
* bytes: 2-byte header + raw length;
* None/bool: 1 byte;
* float: 8 bytes + 1 tag;
* list/tuple: 4-byte count + elements;
* dict: 4-byte count + key/value pairs.

Modelled transfer time = RTT/2 per message + bytes / bandwidth, using the
latency model's constants; benchmarks report both raw bytes and modelled
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal
from typing import Dict, Tuple


def measure_bytes(payload: object) -> int:
    """Size of ``payload`` under the documented wire format."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        magnitude = abs(payload)
        return 2 + max(1, (magnitude.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 9
    if isinstance(payload, Decimal):
        return 2 + len(str(payload))
    if isinstance(payload, str):
        return 2 + len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return 2 + len(payload)
    if isinstance(payload, (list, tuple)):
        return 4 + sum(measure_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            measure_bytes(k) + measure_bytes(v) for k, v in payload.items()
        )
    if hasattr(payload, "wire_size"):
        return payload.wire_size()
    raise TypeError(
        f"cannot size object of type {type(payload).__name__} for the wire"
    )


@dataclass
class LatencyModel:
    """Constants converting volumes to modelled time.

    Defaults approximate a 2009-era WAN between a client and commodity
    providers: 40 ms RTT, 10 Mbit/s sustained throughput.
    """

    rtt_seconds: float = 0.040
    bandwidth_bits_per_second: float = 10_000_000.0

    def transfer_seconds(self, message_bytes: int) -> float:
        """One-way modelled time for a message of the given size."""
        return self.rtt_seconds / 2 + (message_bytes * 8) / self.bandwidth_bits_per_second


@dataclass
class EndpointStats:
    """Traffic counters for one endpoint pair and direction."""

    messages: int = 0
    payload_bytes: int = 0


class NetworkStats:
    """Aggregated traffic counters, with per-endpoint breakdown."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.by_link: Dict[Tuple[str, str], EndpointStats] = {}

    def record(self, src: str, dst: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        stats = self.by_link.setdefault((src, dst), EndpointStats())
        stats.messages += 1
        stats.payload_bytes += size

    def bytes_between(self, src: str, dst: str) -> int:
        stats = self.by_link.get((src, dst))
        return stats.payload_bytes if stats else 0

    def bytes_to(self, dst: str) -> int:
        return sum(
            s.payload_bytes for (src, d), s in self.by_link.items() if d == dst
        )

    def bytes_from(self, src: str) -> int:
        return sum(
            s.payload_bytes for (s_, d), s in self.by_link.items() if s_ == src
        )

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict summary used by benchmark reports."""
        return {
            "messages": self.messages_sent,
            "bytes": self.bytes_sent,
        }


class SimulatedNetwork:
    """The channel through which every client↔provider message flows."""

    def __init__(self, latency: LatencyModel = None) -> None:
        self.latency = latency or LatencyModel()
        self.stats = NetworkStats()
        self.modelled_seconds = 0.0

    def send(self, src: str, dst: str, payload: object) -> int:
        """Account for one message; returns its wire size in bytes."""
        size = measure_bytes(payload)
        self.stats.record(src, dst, size)
        self.modelled_seconds += self.latency.transfer_seconds(size)
        return size

    def send_unclocked(self, src: str, dst: str, payload: object) -> Tuple[int, float]:
        """Account a message's bytes without advancing the modelled clock.

        Used by the parallel fan-out: messages to the n providers overlap
        in time, so the caller accumulates per-provider elapsed times and
        advances the clock once via :meth:`advance_clock` (max for writes,
        k-th order statistic for ``first_k`` reads) instead of summing all
        round trips.  Byte/message counters are recorded exactly as
        :meth:`send` would.

        Returns ``(wire_bytes, one_way_seconds)``.
        """
        size = measure_bytes(payload)
        self.stats.record(src, dst, size)
        return size, self.latency.transfer_seconds(size)

    def advance_clock(self, seconds: float) -> None:
        """Advance the modelled clock by one parallel round's elapsed time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds}s")
        self.modelled_seconds += seconds

    def reset(self) -> None:
        """Zero all counters (between benchmark iterations)."""
        self.stats = NetworkStats()
        self.modelled_seconds = 0.0

    # -- convenience accessors ------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.stats.bytes_sent

    @property
    def total_messages(self) -> int:
        return self.stats.messages_sent
