"""Explicit, falsifiable computation cost model.

Absolute timings in the paper's background section come from 2009
testbeds we cannot rerun; what transfers is the *shape*, which is driven
by per-operation costs.  Components therefore count logical operations
(polynomial evaluations, interpolations, cipher block operations, modular
exponentiations, hash invocations) into a :class:`CostRecorder`; a
:class:`CostModel` converts counts into modelled seconds.

Calibration (documented so it can be disputed):

* ``modexp``: 1 000/s — a 1024-bit modular exponentiation took ≈1 ms on
  2009 commodity CPUs.  This single constant is what makes the
  encryption-based private intersection of Agrawal et al. (SIGMOD'03)
  take hours at the million-record scale the paper quotes (Sec. II-A).
* ``cipher_block``: 1 000 000/s — symmetric block en/decryption.
* ``poly_eval``: 2 000 000/s — Horner evaluation of a degree ≤ 3
  polynomial with machine-word coefficients.
* ``interpolate``: 200 000/s — k-point Lagrange reconstruction.
* ``hash``: 1 000 000/s — one keyed-hash invocation.
* ``compare``: 20 000 000/s — one share/index comparison.
* ``xor``: 50 000 000/s — one word-sized XOR (PIR server scans).

Changing a constant changes the modelled seconds but not the measured
operation counts, which the benchmark tables always print alongside.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict


#: Operations per second for each logical operation class.
DEFAULT_RATES: Dict[str, float] = {
    "modexp": 1_000.0,
    "cipher_block": 1_000_000.0,
    "poly_eval": 2_000_000.0,
    "interpolate": 200_000.0,
    "hash": 1_000_000.0,
    "compare": 20_000_000.0,
    "xor": 50_000_000.0,
}


@dataclass
class CostModel:
    """Rates for converting operation counts to modelled seconds."""

    rates: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))

    def seconds_for(self, op: str, count: int) -> float:
        try:
            rate = self.rates[op]
        except KeyError:
            raise KeyError(
                f"no rate for operation {op!r}; known: {sorted(self.rates)}"
            ) from None
        return count / rate


class CostRecorder:
    """Accumulates logical operation counts for one party.

    Every provider, the client, and each baseline owns a recorder, so the
    benchmarks can attribute computation to the right side of the
    client/provider divide — the axis of the paper's trade-off question.
    """

    def __init__(self, name: str, model: CostModel = None) -> None:
        self.name = name
        self.model = model or CostModel()
        self.counts: Dict[str, int] = {}
        # the service layer records client costs from concurrent query
        # threads; a read-modify-write on a plain dict would lose counts
        self._lock = threading.Lock()

    def record(self, op: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"negative operation count {count} for {op}")
        with self._lock:
            self.counts[op] = self.counts.get(op, 0) + count

    def count(self, op: str) -> int:
        return self.counts.get(op, 0)

    def total_operations(self) -> int:
        return sum(self.counts.values())

    def modelled_seconds(self) -> float:
        return sum(
            self.model.seconds_for(op, count)
            for op, count in self.counts.items()
        )

    def reset(self) -> None:
        self.counts = {}

    def merge(self, other: "CostRecorder") -> None:
        """Fold another recorder's counts into this one."""
        for op, count in other.counts.items():
            self.record(op, count)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostRecorder({self.name}, {self.counts})"
