"""Transactional write path (ISSUE-8): client WAL, group commit,
incremental share deltas, crash recovery, and epoch time travel."""

from .groupcommit import GroupCommitEngine
from .manager import (
    KILL_PHASES,
    ShardedTransactionManager,
    TransactionManager,
)
from .wal import WriteAheadLog

__all__ = [
    "GroupCommitEngine",
    "KILL_PHASES",
    "ShardedTransactionManager",
    "TransactionManager",
    "WriteAheadLog",
]
