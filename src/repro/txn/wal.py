"""Client-side write-ahead log (ISSUE-8 tentpole, part a).

The paper's client is the only trusted party, so durability of
in-flight writes has to live *at the client*: a statement that has been
acknowledged to the application must survive a client crash even though
no provider has seen it yet.  This module is that durability primitive —
an append-only, CRC-framed, fsync-modelled log file.

Frame layout (all integers big-endian)::

    +-------+----------+-----------+--------------+
    | MAGIC | len (u32)| crc32(u32)| payload JSON |
    +-------+----------+-----------+--------------+

Records are JSON objects with a ``"kind"`` discriminator:

* ``{"kind": "txn", "id": N, "ops": [...]}`` — a resolved transaction:
  every op carries the full per-provider share material, so replay
  needs no re-resolution (and therefore no reads) — the decisive
  property for crash recovery, because re-resolving against
  partially-applied state would double-apply deltas.
* ``{"kind": "ack", "id": N}`` — transaction N was committed by every
  live provider; replay skips it.

Torn tails are expected, not exceptional: a crash mid-``write`` leaves
a truncated or corrupt final frame.  :meth:`WriteAheadLog.replay`
truncates the file back to the last whole, checksum-valid frame —
exactly the ARIES convention.  Corruption *before* the tail (a bad
frame followed by a good one) means the medium, not a crash, damaged
the log, and that raises :class:`~repro.errors.WALError`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional

from .. import telemetry
from ..errors import WALError

MAGIC = b"RW"
HEADER_SIZE = len(MAGIC) + 4 + 4


def _frame(record: Dict) -> bytes:
    payload = json.dumps(
        record, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return (
        MAGIC
        + len(payload).to_bytes(4, "big")
        + crc.to_bytes(4, "big")
        + payload
    )


class WriteAheadLog:
    """An append-only transaction log backed by one file.

    ``fsync`` is issued for real (the file is genuinely durable) *and*
    counted (``fsyncs``) so benchmarks can model its cost: group commit's
    whole point is amortising this counter over many transactions.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "ab")
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    # -- writing ---------------------------------------------------------------

    def append(self, record: Dict, sync: bool = True) -> int:
        """Append one record; returns the file offset it starts at.

        ``sync=False`` skips the fsync — used by group commit to stack
        several records behind a single durability point (the final
        synced append of the group).
        """
        if self._file.closed:
            raise WALError(f"WAL {self.path} is closed")
        frame = _frame(record)
        offset = self._file.tell()
        self._file.write(frame)
        self.appends += 1
        self.bytes_written += len(frame)
        if sync:
            self.sync()
        return offset

    def sync(self) -> None:
        """Flush and fsync — the durability point group commit amortises."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        telemetry.count("txn.wal_fsyncs")

    def log_txn(self, txn_id: int, ops: List[Dict], sync: bool = True) -> int:
        return self.append({"kind": "txn", "id": txn_id, "ops": ops}, sync=sync)

    def log_ack(self, txn_id: int, sync: bool = True) -> int:
        return self.append({"kind": "ack", "id": txn_id}, sync=sync)

    # -- recovery ----------------------------------------------------------------

    @staticmethod
    def read_records(path: str, repair: bool = True) -> List[Dict]:
        """Decode every whole frame; truncate (or reject) a torn tail.

        With ``repair=True`` a torn/corrupt tail is cut off and the
        remaining prefix returned — the normal crash-recovery path.  With
        ``repair=False`` the file is left untouched and a torn tail
        raises, for callers that only want to *inspect* a log.
        """
        if not os.path.exists(path):
            return []
        with open(path, "rb") as fh:
            data = fh.read()
        records: List[Dict] = []
        offset = 0
        good_end = 0
        error: Optional[str] = None
        while offset < len(data):
            header = data[offset : offset + HEADER_SIZE]
            if len(header) < HEADER_SIZE:
                error = f"torn frame header at offset {offset}"
                break
            if header[: len(MAGIC)] != MAGIC:
                error = f"bad magic at offset {offset}"
                break
            length = int.from_bytes(header[len(MAGIC) : len(MAGIC) + 4], "big")
            crc = int.from_bytes(header[len(MAGIC) + 4 :], "big")
            payload = data[offset + HEADER_SIZE : offset + HEADER_SIZE + length]
            if len(payload) < length:
                error = f"torn frame payload at offset {offset}"
                break
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                error = f"checksum mismatch at offset {offset}"
                break
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except ValueError:
                error = f"undecodable payload at offset {offset}"
                break
            offset += HEADER_SIZE + length
            good_end = offset
        if error is not None:
            if not repair:
                raise WALError(f"WAL {path}: {error}")
            discarded = len(data) - good_end
            telemetry.count("txn.wal_torn_bytes", discarded)
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
        return records

    # -- maintenance ----------------------------------------------------------------

    def checkpoint(self, keep: List[Dict]) -> None:
        """Atomically rewrite the log to contain only ``keep``.

        Called once every logged transaction in a prefix has been acked:
        the acked prefix carries no recovery information, so the log is
        compacted to the still-pending suffix.  Write-temp-then-rename
        keeps the log recoverable even if the checkpoint itself crashes.
        """
        if self._file.closed:
            raise WALError(f"WAL {self.path} is closed")
        temp = self.path + ".ckpt"
        with open(temp, "wb") as fh:
            for record in keep:
                fh.write(_frame(record))
            fh.flush()
            os.fsync(fh.fileno())
        self.fsyncs += 1
        self._file.close()
        os.replace(temp, self.path)
        self._file = open(self.path, "ab")
        telemetry.count("txn.wal_checkpoints")

    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
