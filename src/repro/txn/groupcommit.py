"""Group commit (ISSUE-8 tentpole, part b).

Every committed transaction costs one WAL fsync plus one
prepare+commit round per provider.  When writers are concurrent those
costs are *combinable*: the first committer to arrive becomes the
**leader**, drains everything queued behind it, and pays the round
once for the whole group; the rest — **followers** — block until the
leader posts their outcome.  This is textbook group commit (DeWitt et
al. 1984), applied to provider RPC rounds instead of disk writes: with
w concurrent writers the per-provider message count drops from w
prepare+commit rounds to ~1.

The engine is policy-free: it batches *ids* and delegates the actual
flush to a callback, so the transaction manager owns WAL order and RPC
mechanics while this module owns only the leader election and the
handoff.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional


class GroupCommitEngine:
    """Leader/follower batching of commit requests.

    ``flush`` is called with a batch of transaction ids **in submission
    order** and must apply all of them; it runs on exactly one thread at
    a time (the current leader), so the callback needs no internal
    locking against itself.  If it raises, every transaction in the
    batch observes the exception.
    """

    def __init__(
        self,
        flush: Callable[[List[int]], None],
        max_group: int = 128,
    ) -> None:
        if max_group < 1:
            raise ValueError(f"max_group must be >= 1, got {max_group}")
        self._flush = flush
        self.max_group = max_group
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[int] = []
        #: txn_id -> None (success) or the exception the flush raised
        self._outcomes: Dict[int, Optional[BaseException]] = {}
        self._leader_active = False
        self.groups_flushed = 0
        self.txns_flushed = 0
        self.max_observed_group = 0

    def submit(self, txn_id: int) -> None:
        """Block until ``txn_id`` has been flushed (by us or a leader).

        Raises whatever the flush callback raised for our group.
        """
        with self._lock:
            self._queue.append(txn_id)
            while True:
                if txn_id in self._outcomes:
                    # a leader carried us: surface its outcome
                    outcome = self._outcomes.pop(txn_id)
                    if outcome is not None:
                        raise outcome
                    return
                if not self._leader_active:
                    break
                self._wakeup.wait()
            # leader election: we are the only non-waiting submitter
            self._leader_active = True
            batch = self._queue[: self.max_group]
            del self._queue[: self.max_group]
        failure: Optional[BaseException] = None
        try:
            self._flush(batch)
        except BaseException as exc:  # noqa: BLE001 — relayed to every follower
            failure = exc
        with self._lock:
            self.groups_flushed += 1
            self.txns_flushed += len(batch)
            self.max_observed_group = max(self.max_observed_group, len(batch))
            for member in batch:
                if member != txn_id:
                    self._outcomes[member] = failure
            self._leader_active = False
            self._wakeup.notify_all()
        if failure is not None:
            raise failure

    def stats(self) -> Dict[str, float]:
        with self._lock:
            groups = self.groups_flushed
            return {
                "groups_flushed": groups,
                "txns_flushed": self.txns_flushed,
                "max_group": self.max_observed_group,
                "mean_group": (self.txns_flushed / groups) if groups else 0.0,
            }
