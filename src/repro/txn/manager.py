"""Transactional write path (ISSUE-8 tentpole).

The paper's update protocols (Sec. V-C) are fire-and-forget: the
client re-shares and broadcasts, and a crash between "acknowledged to
the application" and "received by the providers" silently loses the
write.  :class:`TransactionManager` closes that window:

1. every mutating statement is **resolved** — predicate evaluated,
   share material computed — into self-contained per-provider ops;
2. the ops are **logged** to a client-side :class:`~repro.txn.wal.
   WriteAheadLog` (the durability point: a statement is committed iff
   its record reached the log);
3. the ops are **applied** through a two-phase ``txn_prepare`` /
   ``txn_commit`` round per provider, batched across concurrent
   writers by :class:`~repro.txn.groupcommit.GroupCommitEngine`;
4. the WAL entry is **acked** and eventually checkpointed away.

Replay after a crash (:meth:`TransactionManager.recover`) re-sends
every unacked transaction; providers keep an ``applied_txns`` set, so
replay is exactly-once even though share increments are not
idempotent.  A kill at *any* phase leaves the system recoverable to
exactly the oracle state: statements whose log record survived are
applied, all others are not.

Pure-delta updates (``SET c = c + n`` on randomly-shared INTEGER
columns with a fully-pushable predicate) take the **incremental
share-delta path**: by sharing linearity the client ships one fresh
delta share per row instead of re-sharing whole rows — no reconstruct,
half the round trips.  The eager path stays available as the
correctness oracle the property tests compare against.

Every op carries the client mutation epoch it was assigned at resolve
time; providers tag their undo history with it, which is what makes
``as_of_epoch`` time-travel reads (:meth:`DataSource.select_asof`)
line up exactly with transaction boundaries.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import telemetry
from ..errors import SimulatedCrash, TxnError
from ..sqlengine.query import (
    Delete,
    Insert,
    Select,
    Update,
    resolve_assignments,
)
from ..sqlengine.schema import ColumnType
from ..sqlengine.sqlparser import parse_sql
from .groupcommit import GroupCommitEngine
from .wal import WriteAheadLog

Row = Dict[str, object]
Statement = Union[Insert, Update, Delete]

#: WAL phases a fault-injection harness can kill at (see ``kill_at``)
KILL_PHASES = ("pre-log", "post-log", "mid-round", "pre-ack", "post-ack")


@dataclass
class PendingTxn:
    """A logged transaction awaiting (or undergoing) provider apply."""

    txn_id: int
    ops: List[Dict]
    tables: Set[str]
    results: List[object]
    applied: bool = False


@dataclass
class _BatchOverlay:
    """Plaintext view of one table as seen *inside* an atomic batch.

    Statements in a batch must observe earlier statements' effects
    before anything reaches a provider, so the batch carries a
    client-side overlay: the committed rows snapshotted once, plus
    in-batch inserts/updates/deletes applied in order.
    """

    rows: Dict[int, Row] = field(default_factory=dict)


class TransactionManager:
    """WAL-backed, group-committed writes over one :class:`DataSource`.

    ``wal_path=None`` creates a throwaway log file under the system
    temp directory — convenient for benchmarks; crash tests pass an
    explicit path so a second manager can recover from it.

    ``autocommit`` (per-call) controls the outbox: ``False`` queues the
    logged transaction for a later :meth:`flush`, coalescing many
    statements into one provider round — the "incremental-delta
    outbox" of ISSUE-8.  Reads and read-dependent writes on a table
    with queued transactions flush first (the read barrier), so no
    statement ever resolves against state it cannot see.
    """

    def __init__(
        self,
        source,
        wal_path: Optional[str] = None,
        max_group: int = 128,
        checkpoint_after: int = 256,
    ) -> None:
        if getattr(source, "audit", None) is not None:
            raise TxnError(
                "the transactional write path does not maintain an audit "
                "registry; detach it or use the direct DataSource paths"
            )
        self.source = source
        if wal_path is None:
            handle, wal_path = tempfile.mkstemp(
                prefix="repro-wal-", suffix=".log"
            )
            os.close(handle)
        self.wal = WriteAheadLog(wal_path)
        self.group_commit = GroupCommitEngine(self._flush_batch, max_group)
        self.checkpoint_after = checkpoint_after
        #: one-shot kill switch: set to a phase from :data:`KILL_PHASES`
        #: and the next transaction to reach that phase raises
        #: :class:`~repro.errors.SimulatedCrash` (and clears the switch)
        self.kill_at: Optional[str] = None
        self._resolve_lock = threading.RLock()
        self._apply_lock = threading.Lock()
        self._pending: List[PendingTxn] = []
        self._next_txn_id = 1
        self._epoch_high: Dict[Tuple[int, str], int] = {}
        self.txns_logged = 0
        self.txns_committed = 0
        self.txns_replayed = 0

    # -- backend hooks (overridden by the sharded manager) -----------------------

    def _group_source(self, group: int):
        if group != 0:
            raise TxnError(f"unsharded manager has no group {group}")
        return self.source

    def _groups_of(self, ops: Sequence[Dict]) -> List[int]:
        return sorted({op.get("group", 0) for op in ops})

    # -- kill points --------------------------------------------------------------

    def _kill(self, phase: str) -> None:
        if self.kill_at == phase:
            self.kill_at = None
            telemetry.count("txn.simulated_crashes", phase=phase)
            raise SimulatedCrash(f"simulated crash at WAL phase {phase!r}")

    # -- epoch assignment ----------------------------------------------------------

    def _next_epoch(self, group: int, table: str) -> int:
        source = self._group_source(group)
        current = max(
            source.table_epoch(table), self._epoch_high.get((group, table), 0)
        )
        epoch = current + 1
        self._epoch_high[(group, table)] = epoch
        return epoch

    # -- statement resolution ------------------------------------------------------

    def _op(
        self,
        method: str,
        table: str,
        epoch: int,
        requests: List[Dict],
        group: int = 0,
    ) -> Dict:
        return {
            "method": method,
            "table": table,
            "epoch": epoch,
            "group": group,
            "requests": requests,
        }

    def _resolve_insert(self, stmt: Insert) -> Tuple[List[Dict], object]:
        source = self.source
        prepared = source.prepare_insert_shares(stmt.table, [stmt.row])
        epoch = self._next_epoch(0, stmt.table)
        requests = [
            {
                "table": stmt.table,
                "rows": [[rid, shares[i]] for rid, shares in prepared],
                "epoch": epoch,
            }
            for i in range(source.cluster.n_providers)
        ]
        op = self._op("insert_many", stmt.table, epoch, requests)
        return [op], prepared[0][0]

    def _delta_columns(self, stmt: Update) -> Optional[Dict[str, int]]:
        """The per-column delta amounts, or None if ineligible.

        Eligibility mirrors :meth:`DataSource.increment`: every
        assignment a :class:`Delta`, every column randomly shared and
        INTEGER, and the predicate fully provider-pushable.
        """
        if not stmt.is_pure_delta:
            return None
        sharing = self.source.sharing(stmt.table)
        for column in stmt.assignments:
            column_schema = sharing.schema.column(column)
            if column_schema.searchable:
                return None
            if column_schema.ctype is not ColumnType.INTEGER:
                return None
        rewritten = self.source._rewrite(
            stmt.where.bind(sharing.schema), sharing
        )
        if rewritten.has_residual:
            return None
        return {
            column: delta.amount for column, delta in stmt.assignments.items()
        }

    def _resolve_update(self, stmt: Update) -> Tuple[List[Dict], object]:
        source = self.source
        deltas = self._delta_columns(stmt)
        if deltas is not None:
            return self._resolve_delta_update(stmt, deltas)
        matches = source._fetch_matching_rows(stmt)
        if not matches:
            return [], 0
        updates_per_provider = source.prepare_update_shares(stmt, matches)
        epoch = self._next_epoch(0, stmt.table)
        requests = [
            {
                "table": stmt.table,
                "updates": updates_per_provider[i],
                "epoch": epoch,
            }
            for i in range(source.cluster.n_providers)
        ]
        op = self._op("update_rows", stmt.table, epoch, requests)
        return [op], len(matches)

    def _resolve_delta_update(
        self, stmt: Update, deltas: Dict[str, int]
    ) -> Tuple[List[Dict], object]:
        """Incremental share-delta resolution: ids only, no row payload."""
        source = self.source
        sharing = source.sharing(stmt.table)
        rewritten = source._rewrite(stmt.where.bind(sharing.schema), sharing)
        if rewritten.provably_empty:
            return [], 0
        responses = source._select_rpc(stmt.table, rewritten, projection=[])
        from ..client.reconstruct import align_by_row_id, rows_from_responses

        aligned = align_by_row_id(rows_from_responses(responses))
        row_ids = [
            rid
            for rid, per_provider in aligned.items()
            if len(per_provider) >= source.threshold
        ]
        if not row_ids:
            return [], 0
        epoch = self._next_epoch(0, stmt.table)
        modulus = source.secrets.field.modulus
        # one combined increment op carries every delta column: the row-id
        # list is shipped once instead of once per column, and the
        # provider applies the whole statement as one batched
        # (shares + deltas) mod p pass
        per_provider_deltas: List[Dict[str, int]] = [
            {} for _ in range(source.cluster.n_providers)
        ]
        for column, amount in deltas.items():
            delta_shares = source.prepare_increment_shares(
                stmt.table, column, amount
            )
            for i, share in enumerate(delta_shares):
                per_provider_deltas[i][column] = share
        requests = [
            {
                "table": stmt.table,
                "row_ids": row_ids,
                "deltas": per_provider_deltas[i],
                "modulus": modulus,
                "epoch": epoch,
            }
            for i in range(source.cluster.n_providers)
        ]
        ops = [self._op("increment_rows", stmt.table, epoch, requests)]
        telemetry.count("txn.delta_statements", table=stmt.table)
        return ops, len(row_ids)

    def _resolve_delete(self, stmt: Delete) -> Tuple[List[Dict], object]:
        source = self.source
        matches = source._fetch_matching_rows(stmt)
        if not matches:
            return [], 0
        epoch = self._next_epoch(0, stmt.table)
        row_ids = [rid for rid, _ in matches]
        requests = [
            {"table": stmt.table, "row_ids": row_ids, "epoch": epoch}
            for _ in range(source.cluster.n_providers)
        ]
        op = self._op("delete_rows", stmt.table, epoch, requests)
        return [op], len(matches)

    def _resolve_statement(self, stmt: Statement) -> Tuple[List[Dict], object]:
        if isinstance(stmt, Insert):
            return self._resolve_insert(stmt)
        if isinstance(stmt, Update):
            return self._resolve_update(stmt)
        if isinstance(stmt, Delete):
            return self._resolve_delete(stmt)
        raise TxnError(
            f"{type(stmt).__name__} is not a transactional statement"
        )

    # -- atomic batches ----------------------------------------------------------

    def _resolve_batch(
        self, statements: Sequence[Statement]
    ) -> Tuple[List[Dict], List[object]]:
        """Resolve a multi-statement batch against a plaintext overlay.

        Later statements see earlier ones' effects *before* anything is
        sent: the committed rows of each touched table are snapshotted
        once, then mutated client-side in statement order.  Deltas are
        resolved eagerly against the overlay (inside a batch the rows
        are in hand anyway, so the incremental path would only add a
        second code path to get atomicity wrong in).

        All of a table's ops share one epoch, so time travel can never
        observe a half-applied batch.
        """
        source = self.source
        overlays: Dict[str, _BatchOverlay] = {}
        epochs: Dict[str, int] = {}
        inserted: Dict[str, List[Tuple[int, Row]]] = {}

        def overlay(table: str) -> _BatchOverlay:
            if table not in overlays:
                snapshot = source.select_with_ids(Select(table))
                overlays[table] = _BatchOverlay(
                    rows={rid: dict(row) for rid, row in snapshot}
                )
                epochs[table] = self._next_epoch(0, table)
            return overlays[table]

        ops: List[Dict] = []
        results: List[object] = []
        n = source.cluster.n_providers
        for stmt in statements:
            if isinstance(stmt, Insert):
                view = overlay(stmt.table)
                prepared = source.prepare_insert_shares(stmt.table, [stmt.row])
                rid = prepared[0][0]
                sharing = source.sharing(stmt.table)
                view.rows[rid] = sharing.schema.validate_row(stmt.row)
                inserted.setdefault(stmt.table, [])
                requests = [
                    {
                        "table": stmt.table,
                        "rows": [[r, shares[i]] for r, shares in prepared],
                        "epoch": epochs[stmt.table],
                    }
                    for i in range(n)
                ]
                ops.append(
                    self._op(
                        "insert_many", stmt.table, epochs[stmt.table], requests
                    )
                )
                results.append(rid)
            elif isinstance(stmt, Update):
                view = overlay(stmt.table)
                sharing = source.sharing(stmt.table)
                bound = stmt.where.bind(sharing.schema)
                matches = [
                    (rid, row)
                    for rid, row in sorted(view.rows.items())
                    if bound.matches(row)
                ]
                if not matches:
                    results.append(0)
                    continue
                # eager resolution against the overlay, then re-share via
                # the same primitive the direct path uses
                absolute = Update(
                    stmt.table,
                    stmt.assignments,
                    stmt.where,
                )
                updates_per_provider = source.prepare_update_shares(
                    absolute, matches
                )
                for rid, row in matches:
                    view.rows[rid] = dict(row)
                    view.rows[rid].update(
                        resolve_assignments(row, stmt.assignments)
                    )
                requests = [
                    {
                        "table": stmt.table,
                        "updates": updates_per_provider[i],
                        "epoch": epochs[stmt.table],
                    }
                    for i in range(n)
                ]
                ops.append(
                    self._op(
                        "update_rows", stmt.table, epochs[stmt.table], requests
                    )
                )
                results.append(len(matches))
            elif isinstance(stmt, Delete):
                view = overlay(stmt.table)
                sharing = source.sharing(stmt.table)
                bound = stmt.where.bind(sharing.schema)
                row_ids = [
                    rid
                    for rid, row in sorted(view.rows.items())
                    if bound.matches(row)
                ]
                if not row_ids:
                    results.append(0)
                    continue
                for rid in row_ids:
                    del view.rows[rid]
                requests = [
                    {
                        "table": stmt.table,
                        "row_ids": row_ids,
                        "epoch": epochs[stmt.table],
                    }
                    for _ in range(n)
                ]
                ops.append(
                    self._op(
                        "delete_rows", stmt.table, epochs[stmt.table], requests
                    )
                )
                results.append(len(row_ids))
            else:
                raise TxnError(
                    f"{type(stmt).__name__} cannot appear in an atomic batch"
                )
        return ops, results

    # -- the write path ------------------------------------------------------------

    def _pending_tables(self) -> Set[str]:
        with self._resolve_lock:
            tables: Set[str] = set()
            for txn in self._pending:
                if not txn.applied:
                    tables |= txn.tables
            return tables

    def _barrier(self, table: str) -> None:
        """Flush queued transactions touching ``table`` before reading it.

        Inserts never pass through here — they depend on no current
        state — so an insert-heavy outbox keeps coalescing while
        read-dependent statements stay correct.
        """
        if table in self._pending_tables():
            telemetry.count("txn.read_barriers", table=table)
            self.flush()

    def _log(
        self, ops: List[Dict], results: List[object]
    ) -> Optional[PendingTxn]:
        """Assign an id and make the transaction durable (the commit point)."""
        if not ops:
            return None
        self._kill("pre-log")
        with self._resolve_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            self.wal.log_txn(txn_id, ops)
            txn = PendingTxn(
                txn_id,
                ops,
                {op["table"] for op in ops},
                results,
            )
            self._pending.append(txn)
            self.txns_logged += 1
        telemetry.count("txn.logged")
        self._kill("post-log")
        return txn

    def execute(self, statement, autocommit: bool = True):
        """Run one statement through the transactional path.

        Returns the row id for INSERT, the affected-row count for
        UPDATE/DELETE, and rows for SELECT (reads barrier-flush the
        outbox for their table, then delegate to the source).  Accepts
        an AST node or a SQL string.
        """
        if isinstance(statement, str):
            statement = parse_sql(statement)
        if isinstance(statement, Select):
            self._barrier(statement.table)
            return self.source.select(statement)
        with telemetry.span("txn.execute", kind=type(statement).__name__):
            if isinstance(statement, (Update, Delete)):
                self._barrier(statement.table)
            with self._resolve_lock:
                ops, result = self._resolve_statement(statement)
                txn = self._log(ops, [result])
            if txn is not None and autocommit:
                self.group_commit.submit(txn.txn_id)
            return result

    def atomic(self, statements: Sequence[Statement]) -> List[object]:
        """Log and apply a multi-statement batch as one transaction.

        All statements become durable together (one WAL record) and
        visible together (one staged-then-flipped provider txn, one
        epoch per table).
        """
        parsed = [
            parse_sql(s) if isinstance(s, str) else s for s in statements
        ]
        for stmt in parsed:
            if isinstance(stmt, (Update, Delete, Select)):
                self._barrier(stmt.table)
        with self._resolve_lock:
            ops, results = self._resolve_batch(parsed)
            txn = self._log(ops, results)
        if txn is not None:
            self.group_commit.submit(txn.txn_id)
        return results

    def apply_batch(
        self, statements: Sequence[Statement]
    ) -> List[object]:
        """Queue every statement, then flush once — deterministic group
        formation for benchmarks and tests that want group commit's
        batching without racing real threads."""
        results = [self.execute(s, autocommit=False) for s in statements]
        self.flush()
        return results

    def flush(self) -> int:
        """Apply every queued transaction; returns how many were applied."""
        with self._apply_lock:
            return self._apply_pending()

    # -- provider rounds -----------------------------------------------------------

    def _flush_batch(self, txn_ids: List[int]) -> None:
        # the group-commit leader applies *all* queued transactions in
        # log order — a superset of its batch — so provider apply order
        # always equals WAL order regardless of submission races
        with self._apply_lock:
            self._apply_pending()

    def _txn_round(
        self, source, method: str, request_builder, targets: List[int]
    ):
        """One transaction-control round, bypassing any fan-out batcher.

        Group commit is itself a round-combining mechanism; letting its
        flush park inside a :class:`~repro.service.scheduler.
        FanoutBatcher` barrier that may be waiting on a *follower* of
        this very group would deadlock, so the round goes to the inner
        cluster under the batcher's dispatch lock.
        """
        cluster = source.cluster
        inner = getattr(cluster, "_cluster", None)
        mutation = source._mutation
        mutation.active = getattr(mutation, "active", 0) + 1
        try:
            if inner is not None:
                with cluster.batcher.dispatch_lock:
                    return inner.broadcast(
                        method,
                        lambda i: source._qualify(request_builder(i)),
                        provider_indexes=targets,
                    )
            return source._broadcast(
                method, request_builder, provider_indexes=targets
            )
        finally:
            mutation.active -= 1

    def _apply_pending(self) -> int:
        with self._resolve_lock:
            batch = [txn for txn in self._pending if not txn.applied]
        if not batch:
            return 0
        telemetry.observe("txn.group_size", len(batch))
        groups = sorted(
            {op.get("group", 0) for txn in batch for op in txn.ops}
        )
        per_group: Dict[int, List[PendingTxn]] = {
            g: [
                txn
                for txn in batch
                if any(op.get("group", 0) == g for op in txn.ops)
            ]
            for g in groups
        }
        group_targets: Dict[int, List[int]] = {}
        # phase 1: stage everywhere
        for g in groups:
            source = self._group_source(g)
            targets = source.cluster.write_targets()
            group_targets[g] = targets

            def prepare_request(i: int, g=g) -> Dict:
                return {
                    "txns": [
                        [
                            txn.txn_id,
                            [
                                [
                                    op["method"],
                                    self._group_source(g)._qualify(
                                        dict(op["requests"][i])
                                    ),
                                ]
                                for op in txn.ops
                                if op.get("group", 0) == g
                            ],
                        ]
                        for txn in per_group[g]
                    ]
                }

            # _qualify is applied per-op above; the outer request has no
            # table key, so pass it through unqualified
            self._txn_round(source, "txn_prepare", prepare_request, targets)
        # phase 2: flip — this is where a mid-round kill leaves a strict
        # subset of providers committed
        for g in groups:
            source = self._group_source(g)
            targets = group_targets[g]
            ids = [txn.txn_id for txn in per_group[g]]
            if self.kill_at == "mid-round":
                self.kill_at = None
                source.cluster.call_one(
                    targets[0], "txn_commit", {"ids": ids}
                )
                telemetry.count("txn.simulated_crashes", phase="mid-round")
                raise SimulatedCrash(
                    "simulated crash mid-round: txn_commit reached "
                    f"provider {targets[0]} only"
                )
            self._txn_round(
                source,
                "txn_commit",
                lambda i, ids=ids: {"ids": ids},
                targets,
            )
        # client-side epoch bumps (cache invalidation + as-of watermark)
        for txn in batch:
            for op in txn.ops:
                self._group_source(op.get("group", 0)).bump_table_epoch(
                    op["table"], to=op["epoch"]
                )
        self._kill("pre-ack")
        # phase 3: ack — one fsync for the whole group of transactions
        with self._resolve_lock:
            for txn in batch:
                self.wal.log_ack(txn.txn_id, sync=False)
                txn.applied = True
                self.txns_committed += 1
            self.wal.sync()
            telemetry.count("txn.committed", len(batch))
            self._kill("post-ack")
            self._maybe_checkpoint()
        return len(batch)

    def _maybe_checkpoint(self) -> None:
        # the checkpoint must remember the id high-water: provider
        # applied_txns sets survive the log truncation, so a recycled id
        # would be silently skipped — i.e. silently lost
        self._pending = [t for t in self._pending if not t.applied]
        self.wal.checkpoint(
            [{"kind": "ckpt", "next_id": self._next_txn_id}]
            + [
                {"kind": "txn", "id": t.txn_id, "ops": t.ops}
                for t in self._pending
            ]
        )

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Replay the WAL: re-apply every logged-but-unacked transaction.

        Idempotent at both ends — providers skip transactions in their
        ``applied_txns`` set, and replayed ids are acked and
        checkpointed so a second recovery is a no-op.  Returns counts
        for the caller (and the ``txn-replay`` CLI) to report.
        """
        records = WriteAheadLog.read_records(self.wal.path)
        logged: Dict[int, List[Dict]] = {}
        closed: Set[int] = set()
        next_id = self._next_txn_id
        for record in records:
            kind = record.get("kind")
            if kind == "txn":
                logged[record["id"]] = record["ops"]
                next_id = max(next_id, record["id"] + 1)
            elif kind in ("ack", "abort"):
                closed.add(record["id"])
            elif kind == "ckpt":
                next_id = max(next_id, record["next_id"])
        with self._resolve_lock:
            self._next_txn_id = max(self._next_txn_id, next_id)
            replay_ids = [
                tid
                for tid in logged
                if tid not in closed
                and all(t.txn_id != tid for t in self._pending)
            ]
            for tid in sorted(replay_ids):
                ops = logged[tid]
                txn = PendingTxn(
                    tid, ops, {op["table"] for op in ops}, results=[]
                )
                self._pending.append(txn)
                for op in ops:
                    key = (op.get("group", 0), op["table"])
                    self._epoch_high[key] = max(
                        self._epoch_high.get(key, 0), op["epoch"]
                    )
            self._pending.sort(key=lambda t: t.txn_id)
        replayed = 0
        if replay_ids:
            replayed = self.flush()
            self.txns_replayed += replayed
            telemetry.count("txn.replayed", replayed)
        else:
            with self._resolve_lock:
                self._maybe_checkpoint()
        return {
            "records": len(records),
            "logged": len(logged),
            "acked": len(closed),
            "replayed": replayed,
        }

    # -- maintenance ----------------------------------------------------------------

    def discard_pending(self) -> int:
        """Abandon queued (never-prepared) transactions.

        An ``abort`` record per transaction keeps recovery from
        resurrecting them.
        """
        with self._resolve_lock:
            doomed = [t for t in self._pending if not t.applied]
            for txn in doomed:
                self.wal.append(
                    {"kind": "abort", "id": txn.txn_id}, sync=False
                )
            if doomed:
                self.wal.sync()
                telemetry.count("txn.aborted", len(doomed))
            self._pending = [t for t in self._pending if t.applied]
            return len(doomed)

    def stats(self) -> Dict[str, object]:
        with self._resolve_lock:
            pending = sum(1 for t in self._pending if not t.applied)
        return {
            "logged": self.txns_logged,
            "committed": self.txns_committed,
            "replayed": self.txns_replayed,
            "pending": pending,
            "wal_appends": self.wal.appends,
            "wal_fsyncs": self.wal.fsyncs,
            "wal_bytes": self.wal.bytes_written,
            "group_commit": self.group_commit.stats(),
        }

    def close(self) -> None:
        self.wal.close()


class ShardedTransactionManager(TransactionManager):
    """One coordinator WAL over a :class:`~repro.service.sharding.
    ShardRouter`'s groups.

    Resolution routes each statement to its owning group(s) and tags
    every op with the group index; apply runs one prepare+commit round
    per touched group, and replay re-routes from the tags — the
    coordinator log is the single source of recovery truth for the
    whole sharded deployment.

    Pure-delta updates take the eager path here: a delta's predicate
    must be re-evaluated per group anyway, so the id-only saving
    mostly evaporates and the single code path is worth more than the
    half-round.
    """

    def __init__(
        self,
        router,
        wal_path: Optional[str] = None,
        max_group: int = 128,
        checkpoint_after: int = 256,
    ) -> None:
        super().__init__(
            router.groups[0].source,
            wal_path=wal_path,
            max_group=max_group,
            checkpoint_after=checkpoint_after,
        )
        self.router = router

    def _group_source(self, group: int):
        return self.router.groups[group].source

    def _resolve_insert(self, stmt: Insert) -> Tuple[List[Dict], object]:
        router = self.router
        table = stmt.table
        shard_map = router.shard_map(table)
        start = router.reserve_row_ids(table, 1)
        owner = router._owner_for_row(shard_map, table, start, stmt.row)
        source = self._group_source(owner)
        prepared = source.prepare_insert_shares(table, [stmt.row], [start])
        epoch = self._next_epoch(owner, table)
        requests = [
            {
                "table": table,
                "rows": [[rid, shares[i]] for rid, shares in prepared],
                "epoch": epoch,
            }
            for i in range(source.cluster.n_providers)
        ]
        return [
            self._op("insert_many", table, epoch, requests, group=owner)
        ], start

    def _resolve_update(self, stmt: Update) -> Tuple[List[Dict], object]:
        ops: List[Dict] = []
        total = 0
        for owner in self._owners_for(stmt):
            source = self._group_source(owner)
            matches = source._fetch_matching_rows(stmt)
            if not matches:
                continue
            updates_per_provider = source.prepare_update_shares(stmt, matches)
            epoch = self._next_epoch(owner, stmt.table)
            requests = [
                {
                    "table": stmt.table,
                    "updates": updates_per_provider[i],
                    "epoch": epoch,
                }
                for i in range(source.cluster.n_providers)
            ]
            ops.append(
                self._op(
                    "update_rows", stmt.table, epoch, requests, group=owner
                )
            )
            total += len(matches)
        return ops, total

    def _resolve_delete(self, stmt: Delete) -> Tuple[List[Dict], object]:
        ops: List[Dict] = []
        total = 0
        for owner in self._owners_for(stmt):
            source = self._group_source(owner)
            matches = source._fetch_matching_rows(stmt)
            if not matches:
                continue
            epoch = self._next_epoch(owner, stmt.table)
            row_ids = [rid for rid, _ in matches]
            requests = [
                {"table": stmt.table, "row_ids": row_ids, "epoch": epoch}
                for _ in range(source.cluster.n_providers)
            ]
            ops.append(
                self._op(
                    "delete_rows", stmt.table, epoch, requests, group=owner
                )
            )
            total += len(matches)
        return ops, total

    def _owners_for(self, stmt: Union[Update, Delete]) -> List[int]:
        from ..service.sharding import rewrite_predicate

        router = self.router
        shard_map = router.shard_map(stmt.table)
        sharing = router._sharing(stmt.table)
        rewritten = rewrite_predicate(
            stmt.where.bind(sharing.schema), sharing
        )
        return router._read_owners(shard_map, rewritten)

    def _resolve_batch(self, statements):
        raise TxnError(
            "atomic batches are not supported on the sharded manager; "
            "issue per-statement transactions (each still crash-safe via "
            "the coordinator WAL)"
        )
