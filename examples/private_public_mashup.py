"""Private + public data mash-up (paper Sec. V-D).

Two scenarios straight from the paper:

1. a client's private friends list (outsourced as shares) joined against a
   provider's public restaurant directory — "restaurants close to a
   friend's house, without revealing any private information about the
   friend";
2. an agency's private watchlist correlated with a public passenger
   manifest (the FBI/TSA example).

Each runs under three lookup strategies and prints the privacy/bandwidth
ledger: direct lookups leak the probe keys, downloading everything or
using multi-server PIR leaks nothing.

Run: python examples/private_public_mashup.py
"""

from repro import DataSource, ProviderCluster, Select, Table, TableSchema
from repro.mashup.engine import MashupEngine
from repro.mashup.public_catalog import PublicCatalog
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import Comparison, ComparisonOp
from repro.sqlengine.schema import integer_column, string_column

FIRST_NAMES = ["ANNA", "BILL", "CARA", "DEEP", "EMMA", "FUAD", "GINA", "HANS"]
CUISINES = ["PASTA", "SUSHI", "TACOS", "PHO", "CURRY", "BBQ", "FALAFEL"]
ZIPS = [90210, 10001, 60601, 33101, 94105, 73301]


def build_friends(rng):
    schema = TableSchema(
        "Friends",
        (
            integer_column("fid", 1, 10_000),
            string_column("name", 8),
            integer_column("zipcode", 10_000, 99_999),
        ),
        primary_key="fid",
    )
    rows = [
        {"fid": i + 1, "name": FIRST_NAMES[i % len(FIRST_NAMES)],
         "zipcode": rng.choice(ZIPS[:3])}
        for i in range(8)
    ]
    return Table(schema, rows)


def build_restaurants(rng):
    schema = TableSchema(
        "Restaurants",
        (
            integer_column("rid", 1, 10_000),
            string_column("name", 10),
            integer_column("zipcode", 10_000, 99_999),
            integer_column("rating", 1, 5),
        ),
        primary_key="rid",
    )
    rows = [
        {"rid": i + 1, "name": rng.choice(CUISINES),
         "zipcode": rng.choice(ZIPS), "rating": rng.randint(1, 5)}
        for i in range(60)
    ]
    return Table(schema, rows)


def build_watchlist(rng):
    schema = TableSchema(
        "Watchlist",
        (
            integer_column("wid", 1, 10_000),
            integer_column("passport", 10_000_000, 99_999_999),
        ),
        primary_key="wid",
    )
    rows = [
        {"wid": i + 1, "passport": 10_000_000 + rng.randint(0, 400)}
        for i in range(10)
    ]
    return Table(schema, rows)


def build_manifest(rng):
    schema = TableSchema(
        "Passengers",
        (
            integer_column("seat", 1, 500),
            string_column("name", 10),
            integer_column("passport", 10_000_000, 99_999_999),
        ),
        primary_key="seat",
    )
    rows = [
        {"seat": i + 1, "name": rng.choice(FIRST_NAMES),
         "passport": 10_000_000 + i}
        for i in range(400)
    ]
    return Table(schema, rows)


def run_scenario(title, engine, private_table, probe_column, public_table,
                 public_column, row_filter=None):
    print(f"\n=== {title} ===")
    for strategy in ("direct", "download", "pir"):
        report = engine.probe_join(
            private_table,
            Select(private_table),
            probe_column,
            public_table,
            public_column,
            strategy=strategy,
            row_filter=row_filter,
        )
        leak = (
            f"LEAKED {report.keys_leaked} probe keys to the public server"
            if report.leaked
            else "leaked nothing"
        )
        print(
            f"  {strategy:9s}: {len(report.rows):3d} joined rows, "
            f"{report.public_bytes / 1024:7.1f} KB public traffic, {leak}"
        )
    return report


def main() -> None:
    rng = DeterministicRNG(2009, "mashup-example")

    # private side: shares across 3 providers
    cluster = ProviderCluster(n_providers=3, threshold=2)
    source = DataSource(cluster, seed=2009)
    friends = build_friends(rng.substream("friends"))
    watchlist = build_watchlist(rng.substream("watch"))
    source.outsource_table(friends)
    source.outsource_table(watchlist)

    # public side: plaintext catalog + a PIR hosting for private lookups
    catalog = PublicCatalog()
    restaurants = build_restaurants(rng.substream("rest"))
    manifest = build_manifest(rng.substream("manifest"))
    catalog.publish(restaurants)
    catalog.publish(manifest)

    engine = MashupEngine(source, catalog)
    engine.enable_pir(restaurants, "zipcode")
    engine.enable_pir(manifest, "passport")

    run_scenario(
        "restaurants near friends (rating >= 4 only)",
        engine, "Friends", "zipcode", "Restaurants", "zipcode",
        row_filter=lambda private, public: public["rating"] >= 4,
    )

    report = run_scenario(
        "watchlist x passenger manifest (FBI/TSA example)",
        engine, "Watchlist", "passport", "Passengers", "passport",
    )
    hits = {row["public.name"] for row in report.rows}
    print(f"  watchlist hits on board: {sorted(hits) if hits else 'none'}")

    print(
        "\npublic server observed these query shapes "
        f"({len(catalog.queries_observed)} total):"
    )
    for line in catalog.queries_observed[:3]:
        print("   ", line[:100])
    print("    ... (only 'direct' probes reveal keys; PIR probes never appear)")


if __name__ == "__main__":
    main()
