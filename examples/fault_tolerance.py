"""Fault tolerance and trust: surviving crashes, catching cheats.

Demonstrates the operational story of Sec. V-A ("greater fault-tolerance
and data availability in the presence of failures") and Sec. I's third
challenge (the trust mechanism):

* queries keep answering while up to n−k providers are down;
* a tampering provider is caught by the Merkle audit layer and named;
* an omitting provider is caught by the completeness chain.

Run: python examples/fault_tolerance.py
"""

from repro import DataSource, ProviderCluster, Select
from repro.errors import CompletenessError, IntegrityError, QuorumError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import Between
from repro.trust.auditing import AuditRegistry
from repro.trust.chaining import CompletenessGuard
from repro.workloads.employees import employees_table

QUERY = "SELECT COUNT(*) FROM Employees WHERE salary BETWEEN 0 AND 1000000"


def crash_sweep() -> None:
    print("=== availability under crashes: (n=5, k=3) ===")
    source = DataSource(ProviderCluster(5, 3), seed=1)
    source.outsource_table(employees_table(300, seed=1))
    for crashed in range(6):
        source.cluster.clear_faults()
        for index in range(crashed):
            source.cluster.inject_fault(index, Fault(FailureMode.CRASH))
        try:
            count = source.sql(QUERY)
            print(f"  {crashed} provider(s) down -> query OK ({count} rows)")
        except QuorumError as exc:
            print(f"  {crashed} provider(s) down -> UNAVAILABLE ({exc})")


def tamper_detection() -> None:
    print("\n=== tampering provider caught by the Merkle audit layer ===")
    cluster = ProviderCluster(4, 2)
    registry = AuditRegistry(4)
    source = DataSource(cluster, seed=2, audit=registry)
    source.outsource_table(employees_table(200, seed=2))
    cluster.inject_fault(
        1, Fault(FailureMode.TAMPER, rate=0.4, rng=DeterministicRNG(2, "t"))
    )
    try:
        source.select_verified(
            Select("Employees", where=Between("salary", 0, 10**6))
        )
        print("  !! tampering went unnoticed")
    except IntegrityError as exc:
        print(f"  verified read raised: {exc}")
    flags = registry.audit_roots(cluster, "Employees")
    cheaters = [index for index, ok in flags.items() if not ok]
    print(f"  O(1) root audit blames provider(s): {cheaters}")


def omission_detection() -> None:
    print("\n=== omitted tuples caught by the completeness chain ===")
    cluster = ProviderCluster(4, 2)
    source = DataSource(cluster, seed=3)
    guard = CompletenessGuard(source, b"chain-key-chain-key-chain-key-32")
    guard.outsource_protected(employees_table(200, seed=3), "salary")
    honest = guard.verified_range("Employees", "salary", 20_000, 80_000)
    print(f"  honest range verified complete: {len(honest)} rows")
    for index in (0, 1):
        cluster.inject_fault(
            index,
            Fault(FailureMode.OMIT, rate=0.25, rng=DeterministicRNG(3, f"o{index}")),
        )
    try:
        guard.verified_range("Employees", "salary", 20_000, 80_000)
        print("  !! omission went unnoticed")
    except CompletenessError as exc:
        print(f"  chain verification raised: {str(exc)[:90]}...")


def main() -> None:
    crash_sweep()
    tamper_detection()
    omission_detection()


if __name__ == "__main__":
    main()
