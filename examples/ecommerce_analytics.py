"""Outsourced e-commerce analytics (the paper's Introduction workload).

The intro motivates database-as-a-service with companies drowning in
per-interaction log data.  This example outsources a 5000-event click log
and runs the analytics a growth team would: revenue per action type
(GROUP BY with provider-side partial sums), top spenders (ORDER BY/LIMIT
on shares), seasonal ranges on dates, and a bulk price adjustment using
the incremental-update protocol of Sec. V-C — all without any provider
ever seeing a plaintext amount, user, or product.

Run: python examples/ecommerce_analytics.py
"""

from repro import DataSource, ProviderCluster
from repro.sqlengine.expression import Comparison, ComparisonOp
from repro.workloads.ecommerce import clicklog_table


def main() -> None:
    cluster = ProviderCluster(n_providers=5, threshold=3)
    source = DataSource(cluster, seed=2008)
    events = clicklog_table(5_000, seed=2008)
    source.outsource_table(events)
    print(f"outsourced {len(events)} interaction events to 5 providers\n")

    print("revenue by action type (provider-side grouped partial sums):")
    for row in source.sql(
        "SELECT action, SUM(amount_cents) FROM Events GROUP BY action"
    ):
        total = (row["sum"] or 0) / 100
        print(f"  {row['action']:<7} ${total:>12,.2f}")

    print("\nevents per action in Black-Friday week:")
    for row in source.sql(
        "SELECT action, COUNT(*) FROM Events "
        "WHERE day BETWEEN '2008-11-24' AND '2008-11-30' GROUP BY action"
    ):
        print(f"  {row['action']:<7} {row['count']:>6}")

    print("\n5 most recent purchases (share-order top-k, no full download):")
    cluster.network.reset()
    top = source.sql(
        "SELECT user, product, amount_cents, day FROM Events "
        "WHERE action = 'BUY' ORDER BY day DESC LIMIT 5"
    )
    for row in top:
        print(
            f"  {row['day']} user {row['user']:<8} product {row['product']:>5} "
            f"${row['amount_cents'] / 100:>9,.2f}"
        )
    print(f"  ({cluster.network.total_bytes / 1024:.1f} KB moved for the top-k)")

    print("\nmedian purchased product id per user (first 5 users):")
    rows = source.sql(
        "SELECT user, MEDIAN(product) FROM Events WHERE action = 'BUY' GROUP BY user"
    )
    for row in rows[:5]:
        print(f"  {row['user']:<8} median product {row['median']}")

    print("\nquery plan for the grouped revenue query:")
    plan = source.explain(
        "SELECT action, SUM(amount_cents) FROM Events GROUP BY action"
    )
    print(f"  strategy: {plan['strategy']}; quorum: {plan['read_quorum']}")

    print("\nbulk adjustment: +$1.00 service fee on every RETURN event")
    print("  (incremental share addition, Sec. V-C — no retrieval round):")
    cluster.network.reset()
    changed = source.increment(
        "Events",
        "amount_cents",
        100,
        Comparison("action", ComparisonOp.EQ, "RETURN"),
    )
    print(
        f"  adjusted {changed} events with "
        f"{cluster.network.total_bytes / 1024:.1f} KB of delta shares"
    )
    after = source.sql(
        "SELECT action, SUM(amount_cents) FROM Events "
        "WHERE action = 'RETURN' GROUP BY action"
    )
    print(f"  RETURN total now ${(after[0]['sum'] or 0) / 100:,.2f}")


if __name__ == "__main__":
    main()
