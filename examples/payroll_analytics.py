"""Payroll analytics: the paper's full Employees/Managers scenario.

Covers every query class of Sec. III/V-A — exact match, ranges, string
prefixes, all five aggregates, the referential join ("salaries of all
managers"), eager updates and the lazy write-behind buffer (Sec. V-C) —
and cross-checks each answer against a local plaintext oracle.

Run: python examples/payroll_analytics.py
"""

from repro import DataSource, JoinSelect, ProviderCluster, parse_sql
from repro.client.updates import LazyUpdateBuffer
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, rows_equal_unordered
from repro.sqlengine.expression import Between
from repro.sqlengine.query import Select, Update
from repro.sqlengine.table import Table
from repro.workloads.employees import employees_table, managers_table


def main() -> None:
    employees = employees_table(n_rows=2_000, seed=42)
    managers = managers_table(employees, fraction=0.1, seed=42)

    # plaintext oracle (what an in-house DB would answer)
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    oracle = PlaintextExecutor(catalog)

    # outsourced deployment
    cluster = ProviderCluster(n_providers=5, threshold=3)
    source = DataSource(cluster, seed=42)
    source.outsource_table(employees)
    source.outsource_table(managers)
    print(f"outsourced Employees({len(employees)}) and Managers({len(managers)})\n")

    def run(sql: str):
        mine = source.sql(sql)
        truth = oracle.execute(parse_sql(sql))
        matches = (
            rows_equal_unordered(mine, truth)
            if isinstance(mine, list)
            else mine == truth
        )
        shown = f"{len(mine)} rows" if isinstance(mine, list) else mine
        print(f"  {'OK ' if matches else 'BAD'} {sql}\n      -> {shown}")
        assert matches, sql

    print("— query classes of Sec. III —")
    run("SELECT * FROM Employees WHERE name = 'JOHN'")
    run("SELECT name, salary FROM Employees WHERE salary BETWEEN 10000 AND 40000")
    run("SELECT * FROM Employees WHERE name LIKE 'AB%'")
    run("SELECT SUM(salary) FROM Employees WHERE salary BETWEEN 10000 AND 40000")
    run("SELECT AVG(salary) FROM Employees WHERE name = 'JOHN'")
    run("SELECT MIN(salary) FROM Employees")
    run("SELECT MAX(salary) FROM Employees WHERE department = 'ENG'")
    run("SELECT MEDIAN(salary) FROM Employees WHERE salary BETWEEN 10000 AND 90000")
    run("SELECT COUNT(*) FROM Employees WHERE department = 'SALES'")

    print("\n— the paper's join: salaries of all managers (Sec. V-A) —")
    join = JoinSelect(
        "Employees", "Managers", "eid", "eid",
        columns=("Employees.name", "Employees.salary"),
    )
    mine = source.join(join)
    truth = oracle.execute(join)
    assert rows_equal_unordered(mine, truth)
    print(f"  OK provider-side join returned {len(mine)} manager salaries")

    print("\n— eager updates (Sec. V-C) —")
    run("UPDATE Employees SET salary = 99000 WHERE salary > 95000")
    run("SELECT COUNT(*) FROM Employees WHERE salary = 99000")
    run("DELETE FROM Employees WHERE department = 'LEGAL'")
    run("SELECT COUNT(*) FROM Employees")

    print("\n— lazy write-behind buffer —")
    buffer = LazyUpdateBuffer(source)
    raises = [
        Update("Employees", {"salary": 45_000}, Between("salary", 40_000, 44_999)),
        Update("Employees", {"salary": 55_000}, Between("salary", 50_000, 54_999)),
    ]
    cluster.network.reset()
    for statement in raises:
        buffer.enqueue(statement)
    pending_view = buffer.read_through(
        Select("Employees", where=Between("salary", 45_000, 45_000))
    )
    changed = buffer.flush()
    for statement in raises:
        oracle.execute(statement)
    print(
        f"  buffered 2 statements, saw {len(pending_view)} rows through the "
        f"buffer, flushed {changed} row updates in one round "
        f"({cluster.network.total_messages} messages total)"
    )
    run("SELECT COUNT(*) FROM Employees WHERE salary = 45000")

    print("\nall answers matched the plaintext oracle")


if __name__ == "__main__":
    main()
