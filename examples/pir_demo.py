"""Private information retrieval demo (paper Sec. II-B).

Retrieves one record from a replicated database three ways — trivial
download, 2-server XOR PIR, and the 8-server cube scheme — and prints the
communication each used, plus the Sion–Carbunar modelled comparison of
single-server computational PIR against the trivial protocol.

Run: python examples/pir_demo.py
"""

from repro.pir.analysis import (
    PIRTimeModel,
    kserver_communication_bytes,
    trivial_communication_bytes,
)
from repro.pir.multiserver import build_cube_cluster
from repro.pir.trivial import TrivialPIRClient, TrivialPIRServer
from repro.pir.xor2 import XorPIRServer, Xor2ServerPIRClient
from repro.sim.rng import DeterministicRNG

N_RECORDS = 4_096
RECORD_BYTES = 64
TARGET = 1_234


def main() -> None:
    rng = DeterministicRNG(2009, "pir-demo")
    records = [rng.bytes(RECORD_BYTES) for _ in range(N_RECORDS)]
    print(
        f"database: {N_RECORDS} records x {RECORD_BYTES} B = "
        f"{N_RECORDS * RECORD_BYTES / 1024:.0f} KB; retrieving record {TARGET} "
        "without any single server learning which\n"
    )

    trivial = TrivialPIRClient(TrivialPIRServer(records))
    assert trivial.retrieve(TARGET) == records[TARGET]
    print(
        f"  trivial download : {trivial.network.total_bytes / 1024:8.1f} KB "
        "(1 server; provably optimal for a single IT-private server)"
    )

    xor2 = Xor2ServerPIRClient(
        XorPIRServer(records, "A"),
        XorPIRServer(records, "B"),
        rng=rng.substream("xor"),
    )
    assert xor2.retrieve(TARGET) == records[TARGET]
    print(
        f"  2-server XOR     : {xor2.network.total_bytes / 1024:8.1f} KB "
        "(N-bit masks, 1 record back per server)"
    )

    cube = build_cube_cluster(records, dimensions=3, rng=rng.substream("cube"))
    assert cube.retrieve(TARGET) == records[TARGET]
    print(
        f"  8-server cube    : {cube.network.total_bytes / 1024:8.1f} KB "
        "(O(d * N^(1/3)) masks per server)"
    )

    print("\nanalytic models (Sec. II-B claims):")
    for n in (2**14, 2**20, 2**26):
        trivial_kb = trivial_communication_bytes(n, RECORD_BYTES) / 1024
        k2 = kserver_communication_bytes(n, RECORD_BYTES, 2) / 1024
        k4 = kserver_communication_bytes(n, RECORD_BYTES, 4) / 1024
        print(
            f"  N={n:>9}: trivial {trivial_kb:12.0f} KB | "
            f"k=2 model {k2:8.1f} KB | k=4 model {k4:8.1f} KB"
        )

    from repro.pir.spir import SPIRClient, SPIRServer

    spir_client = SPIRClient(
        SPIRServer(records[:256], seed=9), rng=rng.substream("spir")
    )
    assert spir_client.retrieve(TARGET % 256) == records[TARGET % 256]
    ok, _ = spir_client.attempt_decrypt_other(TARGET % 256, 3)
    print(
        "\nsymmetric PIR (refs [27-29], 256 records): client retrieved its "
        "record; decrypting another with the same key "
        + ("SUCCEEDED (!)" if ok else "failed, as it must — data privacy holds")
    )
    print(
        f"  SPIR cost: {spir_client.network.total_bytes / 1024:.1f} KB "
        "(O(N) ciphertexts — single-server data privacy is paid in transfer)"
    )

    model = PIRTimeModel()
    print("\nSion–Carbunar (ref [16]): single-server computational PIR vs trivial")
    for n in (2**10, 2**14, 2**18):
        print(
            f"  N={n:>7}: trivial {model.trivial_seconds(n, RECORD_BYTES):8.2f} s"
            f" | cPIR {model.cpir_seconds(n, RECORD_BYTES):12.0f} s"
            f" | slowdown {model.slowdown(n, RECORD_BYTES):10.0f}x"
        )
    print(
        "\nconclusion (the paper's): with one server, just download; with "
        "several, replication buys sublinear communication — which is the "
        "same trust structure the secret-sharing DBMS already requires."
    )


if __name__ == "__main__":
    main()
