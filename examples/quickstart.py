"""Quickstart: outsource a table as Shamir shares and query it with SQL.

Run: python examples/quickstart.py
"""

from repro import DataSource, ProviderCluster
from repro.workloads.employees import employees_table


def main() -> None:
    # 1. Five independent database service providers; any 3 shares
    #    reconstruct a value, any 2 reveal nothing (Sec. III).
    cluster = ProviderCluster(n_providers=5, threshold=3)
    source = DataSource(cluster, seed=7)

    # 2. Outsource a 1000-row payroll table.  Every value is split into 5
    #    shares; searchable columns use the order-preserving construction
    #    so providers can filter without seeing plaintext (Sec. IV).
    employees = employees_table(n_rows=1_000, seed=7)
    source.outsource_table(employees)
    print(f"outsourced {len(employees)} rows to {cluster.n_providers} providers")

    # 3. Query with SQL.  The client rewrites each literal into its share
    #    per provider; providers filter on shares; the client interpolates.
    rows = source.sql(
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 40000 AND 60000"
    )
    print(f"range query matched {len(rows)} rows; first 3:")
    for row in rows[:3]:
        print("   ", row)

    # 4. Aggregates are computed *at the providers* on shares — the SUM
    #    comes back as k partial sums, interpolated client-side (Sec. V-A).
    total = source.sql("SELECT SUM(salary) FROM Employees")
    average = source.sql("SELECT AVG(salary) FROM Employees WHERE department = 'ENG'")
    print(f"total payroll: {total}; ENG average: {average:.0f}")

    # 5. What did all this cost?  The simulated network counts every byte.
    print(
        f"network: {cluster.network.total_messages} messages, "
        f"{cluster.network.total_bytes / 1024:.1f} KB"
    )

    # 6. And what do the providers actually see?  Only huge share integers.
    share_table = cluster.providers[0].store.table("Employees")
    sample_row_id = share_table.all_row_ids()[0]
    sample = share_table.get(sample_row_id)
    print(f"provider 1's view of row {sample_row_id}: salary share = {sample['salary']}")


if __name__ == "__main__":
    main()
