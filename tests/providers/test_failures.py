"""Unit tests for fault injection."""

import pytest

from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Fault(FailureMode.OMIT, rate=1.5)
        with pytest.raises(ValueError):
            Fault(FailureMode.OMIT, rate=-0.1)

    def test_is_crash(self):
        assert Fault(FailureMode.CRASH).is_crash
        assert not Fault(FailureMode.TAMPER).is_crash


class TestTamper:
    def test_full_rate_corrupts_everything(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) != 100

    def test_zero_rate_corrupts_nothing(self):
        fault = Fault(FailureMode.TAMPER, rate=0.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) == 100

    def test_null_untouched(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(None) is None

    def test_corrupt_row(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        row = fault.corrupt_row({"a": 1, "b": None})
        assert row["a"] != 1 and row["b"] is None

    def test_other_modes_passthrough(self):
        fault = Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) == 100
        assert fault.corrupt_row({"a": 1}) == {"a": 1}

    def test_deterministic_per_seed(self):
        a = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(7, "s"))
        b = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(7, "s"))
        assert a.maybe_corrupt_share(5) == b.maybe_corrupt_share(5)


class TestOmit:
    def test_full_rate_drops_all(self):
        fault = Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2, 3]) == []

    def test_zero_rate_keeps_all(self):
        fault = Fault(FailureMode.OMIT, rate=0.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2, 3]) == [1, 2, 3]

    def test_partial_rate_statistics(self):
        fault = Fault(FailureMode.OMIT, rate=0.5, rng=DeterministicRNG(3, "z"))
        kept = len(fault.filter_rows(list(range(1000))))
        assert 350 < kept < 650

    def test_tamper_does_not_filter(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2]) == [1, 2]


class TestStreamDerivation:
    """Default-configured faults must not share one RNG stream (lockstep bug).

    Before the fix, every ``Fault`` built without an explicit ``rng``
    drew from the same ``DeterministicRNG(0, "fault")`` stream, so two
    TAMPER providers corrupted in lockstep (correlated errors robust
    decoding is not meant to survive) and two OMIT providers dropped
    identical row positions.  The stream label is now derived from the
    injection site via :meth:`Fault.bind`.
    """

    def test_default_tamperers_corrupt_independently(self):
        a = Fault(FailureMode.TAMPER).bind("DAS1")
        b = Fault(FailureMode.TAMPER).bind("DAS2")
        offsets_a = [a.maybe_corrupt_share(0) for _ in range(8)]
        offsets_b = [b.maybe_corrupt_share(0) for _ in range(8)]
        assert offsets_a != offsets_b

    def test_default_omitters_drop_different_rows(self):
        a = Fault(FailureMode.OMIT, rate=0.5).bind("DAS1")
        b = Fault(FailureMode.OMIT, rate=0.5).bind("DAS2")
        rows = list(range(200))
        assert a.filter_rows(rows) != b.filter_rows(rows)

    def test_same_site_same_seed_reproducible(self):
        a = Fault(FailureMode.TAMPER).bind("DAS1")
        b = Fault(FailureMode.TAMPER).bind("DAS1")
        assert [a.maybe_corrupt_share(0) for _ in range(4)] == [
            b.maybe_corrupt_share(0) for _ in range(4)
        ]

    def test_explicit_rng_wins_over_bind(self):
        fault = Fault(FailureMode.TAMPER, rng=DeterministicRNG(9, "mine"))
        fault.bind("DAS3")
        reference = Fault(FailureMode.TAMPER, rng=DeterministicRNG(9, "mine"))
        assert fault.maybe_corrupt_share(5) == reference.maybe_corrupt_share(5)

    def test_injection_binds_stream_to_provider_name(self):
        from repro.providers.cluster import ProviderCluster

        cluster = ProviderCluster(3, 2)
        cluster.inject_fault(0, Fault(FailureMode.TAMPER))
        cluster.inject_fault(1, Fault(FailureMode.TAMPER))
        one = cluster.providers[0].fault.maybe_corrupt_share(0)
        other = cluster.providers[1].fault.maybe_corrupt_share(0)
        assert one != other
