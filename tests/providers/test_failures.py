"""Unit tests for fault injection."""

import pytest

from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Fault(FailureMode.OMIT, rate=1.5)
        with pytest.raises(ValueError):
            Fault(FailureMode.OMIT, rate=-0.1)

    def test_is_crash(self):
        assert Fault(FailureMode.CRASH).is_crash
        assert not Fault(FailureMode.TAMPER).is_crash


class TestTamper:
    def test_full_rate_corrupts_everything(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) != 100

    def test_zero_rate_corrupts_nothing(self):
        fault = Fault(FailureMode.TAMPER, rate=0.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) == 100

    def test_null_untouched(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(None) is None

    def test_corrupt_row(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "x"))
        row = fault.corrupt_row({"a": 1, "b": None})
        assert row["a"] != 1 and row["b"] is None

    def test_other_modes_passthrough(self):
        fault = Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(1, "x"))
        assert fault.maybe_corrupt_share(100) == 100
        assert fault.corrupt_row({"a": 1}) == {"a": 1}

    def test_deterministic_per_seed(self):
        a = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(7, "s"))
        b = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(7, "s"))
        assert a.maybe_corrupt_share(5) == b.maybe_corrupt_share(5)


class TestOmit:
    def test_full_rate_drops_all(self):
        fault = Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2, 3]) == []

    def test_zero_rate_keeps_all(self):
        fault = Fault(FailureMode.OMIT, rate=0.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2, 3]) == [1, 2, 3]

    def test_partial_rate_statistics(self):
        fault = Fault(FailureMode.OMIT, rate=0.5, rng=DeterministicRNG(3, "z"))
        kept = len(fault.filter_rows(list(range(1000))))
        assert 350 < kept < 650

    def test_tamper_does_not_filter(self):
        fault = Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(2, "y"))
        assert fault.filter_rows([1, 2]) == [1, 2]
