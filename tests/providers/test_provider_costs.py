"""Cost-accounting contracts of the provider read path.

PR 4's satellite fixes: aggregate COUNT(column)/SUM must record the
**actual** number of share reads (zero when the prefilter already emptied
the candidate set, zero for a column the table does not store), grouped
aggregation must account for its per-group aggregate-column reads, and
the Merkle proof path must not scale quadratically.  These tests pin the
exact counter arithmetic so a regression shows up as an off-by-n, not as
a silent drift.
"""

import pytest

from repro.providers.provider import ShareProvider


@pytest.fixture
def provider():
    p = ShareProvider("DAS1")
    p.handle(
        "create_table",
        {"table": "T", "columns": ["k", "g", "v"], "searchable": ["k", "g"]},
    )
    p.handle(
        "insert_many",
        {
            "table": "T",
            "rows": [
                [0, {"k": 100, "g": 1, "v": 11}],
                [1, {"k": 200, "g": 2, "v": None}],
                [2, {"k": 300, "g": None, "v": 33}],
                [3, {"k": 200, "g": 2, "v": 44}],
            ],
        },
    )
    return p


def compare_delta(provider, request):
    before = provider.cost.count("compare")
    response = provider.handle("aggregate", request)
    return provider.cost.count("compare") - before, response


def probe_cost(provider, column="k"):
    return provider.store.table("T").index_for(column).comparisons_for_range()


class TestAggregateReadAccounting:
    def test_sum_records_actual_share_reads(self, provider):
        delta, response = compare_delta(
            provider,
            {
                "table": "T",
                "func": "sum",
                "column": "v",
                "conditions": [{"column": "k", "op": "eq", "low": 200}],
            },
        )
        # one index probe + one read per matching row (rows 1 and 3)
        assert delta == probe_cost(provider) + 2
        assert response == {"partial_sum": 44, "count": 1}

    def test_empty_prefilter_records_no_reads(self, provider):
        """The pre-fix path charged len(row_ids) even when the filter had
        already emptied the set; now an empty match reads nothing."""
        for func in ("count", "sum"):
            delta, response = compare_delta(
                provider,
                {
                    "table": "T",
                    "func": func,
                    "column": "v",
                    "conditions": [{"column": "k", "op": "eq", "low": 555}],
                },
            )
            assert delta == probe_cost(provider), func
            assert response["count"] == 0

    def test_unknown_column_reads_nothing(self, provider):
        delta, response = compare_delta(
            provider,
            {"table": "T", "func": "sum", "column": "zz", "conditions": []},
        )
        assert delta == 0
        assert response == {"partial_sum": 0, "count": 0}

    def test_count_column_reads_every_candidate(self, provider):
        delta, response = compare_delta(
            provider,
            {"table": "T", "func": "count", "column": "v", "conditions": []},
        )
        assert delta == 4  # no conditions: no probe, four shares read
        assert response["count"] == 3  # row 1 holds NULL

    def test_wide_and_narrow_access_paths_account_identically(self, provider):
        """Access-path selection (vector scan vs index probe) is a purely
        physical choice: same result, same recorded costs."""
        wide = {
            "table": "T",
            "func": "sum",
            "column": "v",
            "conditions": [
                {"column": "k", "op": "range", "low": 0, "high": 10_000}
            ],
        }
        narrow = {
            "table": "T",
            "func": "sum",
            "column": "v",
            "conditions": [
                {"column": "k", "op": "range", "low": 100, "high": 100}
            ],
        }
        wide_delta, wide_response = compare_delta(provider, wide)
        narrow_delta, narrow_response = compare_delta(provider, narrow)
        assert wide_response == {"partial_sum": 88, "count": 3}
        assert narrow_response == {"partial_sum": 11, "count": 1}
        assert wide_delta == probe_cost(provider) + 4
        assert narrow_delta == probe_cost(provider) + 1


class TestGroupAggregateAccounting:
    def test_sum_records_group_and_aggregate_reads(self, provider):
        before = provider.cost.count("compare")
        response = provider.handle(
            "aggregate_group",
            {
                "table": "T",
                "group_column": "g",
                "func": "sum",
                "column": "v",
                "conditions": [],
            },
        )
        delta = provider.cost.count("compare") - before
        # four group-column reads + three aggregate reads (row 2 has a
        # NULL group share, so its v is never read)
        assert delta == 4 + 3
        assert response["groups"] == [
            [1, {"partial_sum": 11, "count": 1}],
            [2, {"partial_sum": 44, "count": 1}],
        ]

    def test_count_star_reads_no_aggregate_column(self, provider):
        before = provider.cost.count("compare")
        provider.handle(
            "aggregate_group",
            {
                "table": "T",
                "group_column": "g",
                "func": "count",
                "column": None,
                "conditions": [],
            },
        )
        assert provider.cost.count("compare") - before == 4


class TestMerkleProofScaling:
    def test_proofs_for_all_rows_are_not_quadratic(self):
        """Proofs for every row of a 1 000-row table must cost one tree
        build (2n hashes, version-cached) and one derived-state rebuild —
        the pre-fix path re-sorted row ids and ran an O(n) ``list.index``
        scan per proof."""
        n = 1_000
        p = ShareProvider("DAS1")
        p.handle(
            "create_table",
            {"table": "T", "columns": ["k", "v"], "searchable": ["k"]},
        )
        p.handle(
            "insert_many",
            {
                "table": "T",
                "rows": [[rid, {"k": rid * 7, "v": rid}] for rid in range(n)],
            },
        )
        table = p.store.table("T")
        hashes_before = p.cost.count("hash")
        proofs = [
            p.handle("merkle_proof", {"table": "T", "row_id": rid})
            for rid in range(n)
        ]
        assert len(proofs) == n
        # one cached tree build, no per-proof hashing or re-sorting
        assert p.cost.count("hash") - hashes_before == 2 * n
        assert table.derived_rebuilds == 1
        root = p.handle("merkle_root", {"table": "T"})["root"]
        assert all(proof["row"][0] == rid for rid, proof in enumerate(proofs))
        assert root  # tree is live and cached
