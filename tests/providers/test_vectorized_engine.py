"""Unit tests for the vectorized provider engine's machinery (ISSUE-9).

Targeted coverage the property suite doesn't pin down explicitly: mirror
fallback sentinels, the module-level materializer cache, dispatch
telemetry counters, searchsorted probe clamping, and the increment fast
path's decline edges.  numpy-only tests skip without ``repro[fast]``.
"""

import pytest

from repro import telemetry
from repro.core import kernels
from repro.core.field import MERSENNE_61
from repro.errors import ProviderError, QueryError
from repro.providers import storage
from repro.providers.provider import ShareProvider
from repro.providers.storage import ShareTable, SortedShareIndex

needs_numpy = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="numpy backend not installed (repro[fast])",
)


@pytest.fixture(autouse=True)
def force_numpy_backend():
    """Pin the numpy backend when installed, whatever the env default.

    These tests exercise the vectorized machinery itself, so a forced
    ``REPRO_KERNEL_BACKEND=scalar`` run must not hollow them out — the
    no-numpy CI leg skips them via :data:`needs_numpy` instead.
    """
    if "numpy" in kernels.available_backends():
        previous = kernels.set_kernel_backend("numpy")
        try:
            yield
        finally:
            kernels.set_kernel_backend(previous)
    else:
        yield


def small_table(values_by_row):
    table = ShareTable("T", ["a", "b"], ["a"])
    table.insert_many(
        [(rid, dict(values)) for rid, values in values_by_row.items()]
    )
    return table


def build_provider(rows, searchable=("k",)):
    provider = ShareProvider("U")
    provider.handle(
        "create_table",
        {"table": "T", "columns": ["k", "v"], "searchable": list(searchable)},
    )
    provider.handle("insert_many", {"table": "T", "rows": rows})
    return provider


class TestMaterializerCache:
    def test_shared_across_tables_and_instances(self):
        before = storage.materializer_cache_size()
        t1 = ShareTable("A", ["x", "y"], [])
        t2 = ShareTable("B", ["x", "y"], [])
        t1.insert(1, {"x": 5, "y": 6})
        t2.insert(2, {"x": 7, "y": 8})
        assert t1.materialize_rows([0], ["x", "y"]) == [{"x": 5, "y": 6}]
        assert t2.materialize_rows([0], ["x", "y"]) == [{"x": 7, "y": 8}]
        # both tables compile the same (x, y) key exactly once
        assert storage.materializer_cache_size() >= before
        assert storage.materializer_for(("x", "y")) is storage.materializer_for(
            ("x", "y")
        )

    def test_distinct_keys_get_distinct_materializers(self):
        assert storage.materializer_for(("x",)) is not storage.materializer_for(
            ("y",)
        )


@needs_numpy
class TestColumnMirrors:
    def test_wide_share_column_declines(self):
        table = small_table({1: {"a": 1 << 70, "b": 2}})
        assert table.column_vector("a") is None
        assert table.column_vector("b") is not None

    def test_negative_share_column_declines(self):
        table = small_table({1: {"a": -3, "b": 2}})
        assert table.column_vector("a") is None

    def test_null_cells_masked(self):
        table = small_table({1: {"a": 4, "b": None}, 2: {"a": 5, "b": 9}})
        shares, mask = table.column_vector("b")
        assert mask.tolist() == [True, False]
        assert shares[1] == 9

    def test_mirror_invalidated_by_version(self):
        table = small_table({1: {"a": 4, "b": 7}})
        first, _ = table.column_vector("b")
        table.update(1, {"b": 8})
        second, _ = table.column_vector("b")
        assert first.tolist() == [7] and second.tolist() == [8]


@needs_numpy
class TestIndexMirrorProbes:
    def probes(self):
        index = SortedShareIndex("a")
        index.bulk_load([(10, 1), (20, 2), (20, 3), (30, 4)])
        return index

    def test_vector_range_matches_bisect(self):
        index = self.probes()
        for low, high, kw in [
            (10, 30, {}),
            (None, 20, {"high_inclusive": False}),
            (20, None, {"low_inclusive": False}),
            (11, 19, {}),
        ]:
            assert index.vector_range(low, high, **kw).tolist() == (
                index.range_row_ids(
                    low,
                    high,
                    low_inclusive=kw.get("low_inclusive", True),
                    high_inclusive=kw.get("high_inclusive", True),
                )
            )

    def test_bounds_past_uint64_clamp(self):
        index = self.probes()
        assert index.vector_range(-(1 << 80), 1 << 80).tolist() == [1, 2, 3, 4]
        assert index.vector_count(1 << 70, None) == 0
        assert index.vector_count(None, -5) == 0

    def test_wide_entry_poisons_mirror(self):
        index = self.probes()
        index.insert(1 << 77, 9)
        assert index.vector_entries() is None
        index.remove(1 << 77, 9)
        assert index.vector_entries() is not None


@needs_numpy
class TestDispatchTelemetry:
    def test_vector_and_scalar_dispatch_counted(self):
        rows = [(i, {"k": i * 3, "v": i}) for i in range(8)]
        with telemetry.session():
            provider = build_provider(rows)
            provider.handle(
                "select",
                {"table": "T",
                 "conditions": [
                     {"column": "k", "op": "range", "low": 0, "high": 12}
                 ]},
            )
            export = telemetry.hub().export()
        counters = export["metrics"]["counters"]
        assert counters["provider.kernel.backend{backend=numpy,provider=U}"] >= 1
        assert (
            counters["provider.kernel.dispatch"
                     "{backend=numpy,method=select,provider=U}"] == 1
        )

    def test_fallback_counts_as_scalar_dispatch(self):
        rows = [(i, {"k": (i * 3) + (1 << 70), "v": i}) for i in range(4)]
        with telemetry.session():
            provider = build_provider(rows)
            provider.handle(
                "select",
                {"table": "T",
                 "conditions": [
                     {"column": "k", "op": "ge", "low": 1 << 70}
                 ]},
            )
            export = telemetry.hub().export()
        counters = export["metrics"]["counters"]
        assert (
            counters["provider.kernel.dispatch"
                     "{backend=scalar,method=select,provider=U}"] == 1
        )


@needs_numpy
class TestIncrementFastPath:
    def rows(self):
        return [
            (0, {"k": 3, "v": 10}),
            (1, {"k": 6, "v": None}),
            (2, {"k": 9, "v": MERSENNE_61 - 1}),
        ]

    def test_batch_apply_wraps_and_skips_nulls(self):
        provider = build_provider(self.rows())
        out = provider.handle(
            "increment_rows",
            {"table": "T", "row_ids": [0, 1, 2], "deltas": {"v": 5},
             "modulus": MERSENNE_61},
        )
        # the NULL cell takes no assignment, so only two rows count —
        # the same convention the scalar loop reports
        assert out == {"incremented": 2}
        table = provider.store.table("T")
        assert table.value(0, "v") == 15
        assert table.value(1, "v") is None  # NULL stays NULL
        assert table.value(2, "v") == 4  # wrapped mod p

    def test_missing_row_declines_to_scalar_semantics(self):
        # the scalar loop applies row 0 and then raises on the missing
        # id; the vector path must decline (not batch-apply) so both
        # backends leave the identical partial state
        provider = build_provider(self.rows())
        with pytest.raises(ProviderError):
            provider.handle(
                "increment_rows",
                {"table": "T", "row_ids": [0, 99], "deltas": {"v": 5},
                 "modulus": MERSENNE_61},
            )
        assert provider.store.table("T").value(0, "v") == 15

    def test_searchable_column_refused(self):
        provider = build_provider(self.rows())
        with pytest.raises(QueryError):
            provider.handle(
                "increment_rows",
                {"table": "T", "row_ids": [0], "deltas": {"k": 5},
                 "modulus": MERSENNE_61},
            )

    def test_huge_modulus_falls_back_to_scalar(self):
        provider = build_provider(self.rows())
        out = provider.handle(
            "increment_rows",
            {"table": "T", "row_ids": [0], "deltas": {"v": 5},
             "modulus": 1 << 89},
        )
        assert out == {"incremented": 1}
        assert provider.store.table("T").value(0, "v") == 15


@needs_numpy
class TestOrderedSelect:
    def test_descending_ties_break_by_ascending_row_id(self):
        rows = [
            (0, {"k": 5, "v": 1}),
            (1, {"k": 9, "v": 2}),
            (2, {"k": 5, "v": 3}),
            (3, {"k": None, "v": 4}),
        ]
        provider = build_provider(rows)
        out = provider.handle(
            "select",
            {"table": "T", "conditions": [], "order_by": "k",
             "descending": True},
        )
        assert [rid for rid, _ in out["rows"]] == [1, 0, 2, 3]
        out = provider.handle(
            "select",
            {"table": "T", "conditions": [], "order_by": "k"},
        )
        assert [rid for rid, _ in out["rows"]] == [3, 0, 2, 1]
