"""Retry/backoff, timeout accounting, and quorum-failover tests."""

import pytest

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    ProviderUnavailableError,
    QuorumError,
)
from repro.providers.cluster import ProviderCluster, RetryPolicy
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG


def make_cluster(retry=None, dispatch="parallel", n=5, k=3):
    cluster = ProviderCluster(n, k, dispatch=dispatch, retry=retry)
    cluster.broadcast(
        "create_table",
        lambda i: {"table": "T", "columns": ["k"], "searchable": ["k"]},
    )
    cluster.broadcast(
        "insert_many",
        lambda i: {"table": "T", "rows": [[1, {"k": 10 + i}]]},
    )
    cluster.network.reset()
    return cluster


def flaky_fail_then_succeed(rate=0.5):
    """A FLAKY fault whose RNG stream starts failure, then success."""
    for seed in range(100):
        rng = DeterministicRNG(seed, "probe")
        if rng.random() < rate and rng.random() >= rate:
            return Fault(
                FailureMode.FLAKY, rate=rate, rng=DeterministicRNG(seed, "probe")
            )
    raise AssertionError("no seed with a fail-then-succeed pattern in range")


class TestRetryPolicy:
    def test_defaults_are_fail_fast(self):
        assert RetryPolicy().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_backoff_progression(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_seconds=0.1, backoff_multiplier=2.0
        )
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)


class TestPerRpcRetry:
    def test_transient_failure_retried_to_success(self):
        cluster = make_cluster(retry=RetryPolicy(max_attempts=2))
        cluster.inject_fault(0, flaky_fail_then_succeed())
        with telemetry.session() as hub:
            response = cluster.call_one(0, "row_count", {"table": "T"})
            assert response["count"] == 1
            assert (
                hub.registry.counter_value("fanout.retries", provider="DAS1")
                == 1
            )

    def test_exhausted_retries_raise(self):
        cluster = make_cluster(retry=RetryPolicy(max_attempts=3))
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        with telemetry.session() as hub:
            with pytest.raises(ProviderUnavailableError):
                cluster.call_one(0, "row_count", {"table": "T"})
            # 3 attempts = 2 retries, each attempt charged as unavailable
            assert (
                hub.registry.counter_value("fanout.retries", provider="DAS1")
                == 2
            )
            assert (
                hub.registry.counter_value("fanout.unavailable", provider="DAS1")
                == 3
            )

    def test_timeout_and_backoff_charged_on_clock(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_seconds=0.1, timeout_seconds=0.25
        )
        cluster = make_cluster(retry=policy)
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        before = cluster.network.modelled_seconds
        with pytest.raises(ProviderUnavailableError):
            cluster.call_one(0, "row_count", {"table": "T"})
        elapsed = cluster.network.modelled_seconds - before
        # two timeouts + one backoff, plus the modelled request transfers
        assert elapsed >= 2 * 0.25 + 0.1

    def test_default_policy_counts_one_unavailable_per_round(self):
        cluster = make_cluster()
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        with telemetry.session() as hub:
            cluster.call_all(
                "row_count",
                {i: {"table": "T"} for i in range(5)},
                minimum=3,
                quorum="first_k",
            )
            assert (
                hub.registry.counter_value("fanout.unavailable", provider="DAS1")
                == 1
            )


class TestQuorumFailover:
    def test_short_round_fails_over_to_spares(self):
        cluster = make_cluster()
        cluster.inject_fault(1, Fault(FailureMode.CRASH))
        with telemetry.session() as hub:
            responses = cluster.broadcast(
                "row_count",
                lambda i: {"table": "T"},
                minimum=3,
                provider_indexes=[0, 1, 2],
                quorum="first_k",
                failover=True,
            )
            assert sorted(responses) == [0, 2, 3]
            assert (
                hub.registry.counter_value("fanout.failovers", provider="DAS4")
                == 1
            )

    def test_dead_spare_skipped_to_next(self):
        cluster = make_cluster()
        cluster.inject_fault(1, Fault(FailureMode.CRASH))
        cluster.inject_fault(3, Fault(FailureMode.CRASH))
        responses = cluster.broadcast(
            "row_count",
            lambda i: {"table": "T"},
            minimum=3,
            provider_indexes=[0, 1, 2],
            quorum="first_k",
            failover=True,
        )
        assert sorted(responses) == [0, 2, 4]

    def test_no_failover_without_flag(self):
        cluster = make_cluster()
        cluster.inject_fault(1, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError):
            cluster.broadcast(
                "row_count",
                lambda i: {"table": "T"},
                minimum=3,
                provider_indexes=[0, 1, 2],
                quorum="first_k",
            )

    def test_exhausted_spares_surface_quorum_error(self):
        cluster = make_cluster()
        for index in (0, 1, 2):
            cluster.inject_fault(index, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError) as excinfo:
            cluster.broadcast(
                "row_count",
                lambda i: {"table": "T"},
                minimum=3,
                provider_indexes=[0, 1, 2],
                quorum="first_k",
                failover=True,
            )
        # partial progress rides on the error for resumable callers
        assert sorted(excinfo.value.partial_responses) == [3, 4]
        assert set(excinfo.value.failures) == {0, 1, 2}

    def test_failover_accounting_equal_across_dispatch_modes(self):
        snapshots = {}
        for dispatch in ("parallel", "sequential"):
            cluster = make_cluster(dispatch=dispatch)
            cluster.inject_fault(0, Fault(FailureMode.CRASH))
            cluster.broadcast(
                "row_count",
                lambda i: {"table": "T"},
                minimum=3,
                provider_indexes=[0, 1, 2],
                quorum="first_k",
                failover=True,
            )
            snapshots[dispatch] = cluster.network.stats.snapshot()
        assert snapshots["parallel"] == snapshots["sequential"]

    def test_repeated_failures_quarantine_and_rotate_out(self):
        cluster = make_cluster()
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        for _ in range(2):
            cluster.broadcast(
                "row_count",
                lambda i: {"table": "T"},
                minimum=3,
                provider_indexes=cluster.read_quorum(),
                quorum="first_k",
                failover=True,
            )
        assert cluster.health.is_quarantined(0)
        # knowledge-based selection now avoids the quarantined provider
        assert 0 not in cluster.read_quorum()
