"""Provider-side materialized SUM/COUNT partials (version-keyed).

Shamir linearity makes a cached partial sum of shares *the* share of the
sum while the underlying rows stand still; the table's mutation-version
counter — the same machinery that keys the derived-state caches — is
what defines "stand still".  These tests pin the cache's three duties:
serve identical payloads on repeat, die on any mutation, and never let
fault injection leak into the stored clean copy.
"""

from repro import telemetry
from repro.client.datasource import DataSource
from repro.providers.cluster import ProviderCluster
from repro.providers.failures import FailureMode, Fault
from repro.providers.provider import ShareProvider
from repro.workloads.employees import employees_table


def _source(n=5, k=3, rows=40, seed=7):
    cluster = ProviderCluster(n_providers=n, threshold=k)
    source = DataSource(cluster, seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    return cluster, source


def _table(cluster, source, index=0):
    return cluster.providers[index].store.table(
        source.physical_name("Employees")
    )


class TestScalarAggregateCache:
    def test_repeat_sum_hits_and_payloads_identical(self):
        cluster, source = _source()
        first = source.sql("SELECT SUM(salary) FROM Employees")
        table = _table(cluster, source)
        misses = table.agg_cache_misses
        assert misses >= 1 and table.agg_cache_hits == 0
        second = source.sql("SELECT SUM(salary) FROM Employees")
        assert second == first
        assert table.agg_cache_hits >= 1
        assert table.agg_cache_misses == misses

    def test_count_cached_too(self):
        cluster, source = _source()
        assert source.sql("SELECT COUNT(*) FROM Employees") == 40
        table = _table(cluster, source)
        assert source.sql("SELECT COUNT(*) FROM Employees") == 40
        assert table.agg_cache_hits >= 1

    def test_mutation_invalidates(self):
        cluster, source = _source()
        total = source.sql("SELECT SUM(salary) FROM Employees")
        eid = source.sql("SELECT eid FROM Employees")[0]["eid"]
        old = source.sql(f"SELECT salary FROM Employees WHERE eid = {eid}")
        assert source.sql(
            f"UPDATE Employees SET salary = 50000 WHERE eid = {eid}"
        ) == 1
        fresh = source.sql("SELECT SUM(salary) FROM Employees")
        assert fresh == total - old[0]["salary"] + 50000

    def test_predicate_is_part_of_the_key(self):
        cluster, source = _source()
        all_rows = source.sql("SELECT SUM(salary) FROM Employees")
        subset = source.sql(
            "SELECT SUM(salary) FROM Employees WHERE salary >= 3000"
        )
        assert subset <= all_rows
        table = _table(cluster, source)
        # two distinct predicates → two distinct entries, both servable
        before_hits = table.agg_cache_hits
        assert source.sql("SELECT SUM(salary) FROM Employees") == all_rows
        assert source.sql(
            "SELECT SUM(salary) FROM Employees WHERE salary >= 3000"
        ) == subset
        assert table.agg_cache_hits >= before_hits + 2

    def test_telemetry_counters_exposed(self):
        _, source = _source()
        with telemetry.session() as hub:
            source.sql("SELECT SUM(salary) FROM Employees")
            source.sql("SELECT SUM(salary) FROM Employees")
            assert hub.registry.counter_total("provider.aggcache.misses") > 0
            assert hub.registry.counter_total("provider.aggcache.hits") > 0


class TestGroupedAggregateCache:
    QUERY = "SELECT department, SUM(salary) FROM Employees GROUP BY department"

    def test_repeat_grouped_sum_hits(self):
        cluster, source = _source()
        first = source.sql(self.QUERY)
        table = _table(cluster, source)
        second = source.sql(self.QUERY)
        assert second == first
        assert table.agg_cache_hits >= 1

    def test_grouped_invalidation_on_write(self):
        cluster, source = _source()
        first = source.sql(self.QUERY)
        row = source.sql("SELECT eid, department, salary FROM Employees")[0]
        assert source.sql(
            f"UPDATE Employees SET salary = 1 WHERE eid = {row['eid']}"
        ) == 1
        second = source.sql(self.QUERY)
        changed = {g["department"]: g["sum"] for g in second}
        original = {g["department"]: g["sum"] for g in first}
        assert changed[row["department"]] == (
            original[row["department"]] - row["salary"] + 1
        )


class TestFaultsStayOutOfTheCache:
    def test_tamper_applies_per_request_on_a_copy(self):
        """A TAMPER fault must corrupt each response independently; the
        cached payload stays clean, so a later fault-free request serves
        the true partial."""
        provider = ShareProvider("p0")
        provider.handle(
            "create_table",
            {"table": "T", "columns": ["v"], "searchable": []},
        )
        provider.handle(
            "insert_many",
            {"table": "T", "rows": [[i, {"v": 100 + i}] for i in range(8)]},
        )
        clean = provider.handle("aggregate", {
            "table": "T", "func": "sum", "column": "v",
        })
        # arm an always-tamper fault: the cached entry must NOT be mutated
        provider.inject_fault(Fault(FailureMode.TAMPER, rate=1.0, seed=13))
        tampered = provider.handle("aggregate", {
            "table": "T", "func": "sum", "column": "v",
        })
        assert tampered["partial_sum"] != clean["partial_sum"]
        assert tampered["count"] == clean["count"]
        # disarm: the clean payload is served again, bit-identical
        provider.clear_fault()
        again = provider.handle("aggregate", {
            "table": "T", "func": "sum", "column": "v",
        })
        assert again == clean

    def test_results_identical_with_and_without_cache_hits(self):
        """End-to-end: an aggregate answered from cache is byte-identical
        to the first (computed) answer across the whole quorum."""
        cluster, source = _source()
        q = "SELECT AVG(salary) FROM Employees WHERE salary >= 2000"
        assert source.sql(q) == source.sql(q)
