"""Unit tests for provider-side share storage."""

import random

import pytest

from repro.errors import ProviderError
from repro.providers.storage import ShareStore, ShareTable, SortedShareIndex


def reference_entries(table, column):
    """Index entries recomputed from the materialized rows — the ground
    truth any index state must match."""
    return sorted(
        (row[column], rid)
        for rid, row in table.rows.items()
        if row[column] is not None
    )


class TestSortedShareIndex:
    def test_insert_and_range(self):
        index = SortedShareIndex("c")
        for share, rid in [(50, 1), (10, 2), (30, 3), (30, 4)]:
            index.insert(share, rid)
        assert index.range_row_ids(10, 30) == [2, 3, 4]
        assert index.range_row_ids(31, 100) == [1]

    def test_equal_row_ids_duplicates(self):
        index = SortedShareIndex("c")
        index.insert(5, 1)
        index.insert(5, 2)
        assert index.equal_row_ids(5) == [1, 2]
        assert index.equal_row_ids(6) == []

    def test_open_ended_ranges(self):
        index = SortedShareIndex("c")
        for share, rid in [(10, 1), (20, 2), (30, 3)]:
            index.insert(share, rid)
        assert index.range_row_ids(None, 20) == [1, 2]
        assert index.range_row_ids(20, None) == [2, 3]
        assert index.range_row_ids(None, None) == [1, 2, 3]

    def test_exclusive_bounds(self):
        index = SortedShareIndex("c")
        for share, rid in [(10, 1), (20, 2), (30, 3)]:
            index.insert(share, rid)
        assert index.range_row_ids(None, 20, high_inclusive=False) == [1]
        assert index.range_row_ids(20, None, low_inclusive=False) == [3]

    def test_remove(self):
        index = SortedShareIndex("c")
        index.insert(5, 1)
        index.remove(5, 1)
        assert len(index) == 0
        with pytest.raises(ProviderError):
            index.remove(5, 1)

    def test_min_max_entries(self):
        index = SortedShareIndex("c")
        assert index.min_entry() is None
        index.insert(10, 1)
        index.insert(5, 2)
        assert index.min_entry() == (5, 2)
        assert index.max_entry() == (10, 1)

    def test_comparisons_positive(self):
        index = SortedShareIndex("c")
        assert index.comparisons_for_range() >= 1


class TestShareTable:
    def make(self):
        return ShareTable("T", ["a", "b"], searchable=["a"])

    def test_insert_and_get(self):
        table = self.make()
        table.insert(1, {"a": 100, "b": 200})
        assert table.get(1) == {"a": 100, "b": 200}
        assert len(table) == 1
        assert table.has_row(1)

    def test_missing_column_stored_as_null(self):
        table = self.make()
        table.insert(1, {"a": 100})
        assert table.get(1)["b"] is None

    def test_duplicate_rid_rejected(self):
        table = self.make()
        table.insert(1, {"a": 1})
        with pytest.raises(ProviderError):
            table.insert(1, {"a": 2})

    def test_unknown_column_rejected(self):
        table = self.make()
        with pytest.raises(ProviderError):
            table.insert(1, {"zzz": 5})

    def test_index_updated_on_mutation(self):
        table = self.make()
        table.insert(1, {"a": 10, "b": 1})
        table.update(1, {"a": 99})
        assert table.index_for("a").equal_row_ids(10) == []
        assert table.index_for("a").equal_row_ids(99) == [1]

    def test_update_to_null_removes_from_index(self):
        table = self.make()
        table.insert(1, {"a": 10})
        table.update(1, {"a": None})
        assert table.index_for("a").equal_row_ids(10) == []
        assert table.get(1)["a"] is None

    def test_delete_cleans_index(self):
        table = self.make()
        table.insert(1, {"a": 10})
        table.delete(1)
        assert not table.has_row(1)
        assert table.index_for("a").equal_row_ids(10) == []

    def test_non_searchable_index_access_rejected(self):
        table = self.make()
        with pytest.raises(ProviderError):
            table.index_for("b")

    def test_searchable_must_be_subset(self):
        with pytest.raises(ProviderError):
            ShareTable("T", ["a"], searchable=["zzz"])

    def test_version_bumps(self):
        table = self.make()
        v0 = table.version
        table.insert(1, {"a": 1})
        table.update(1, {"a": 2})
        table.delete(1)
        assert table.version == v0 + 3

    def test_all_row_ids_sorted(self):
        table = self.make()
        for rid in (5, 1, 3):
            table.insert(rid, {"a": rid})
        assert table.all_row_ids() == [1, 3, 5]


class TestMixedDML:
    """Index maintenance under interleaved insert/update/delete.

    The indexes must never leak a stale ``(share, row_id)`` entry, and
    value↔NULL transitions must index/deindex exactly."""

    def make(self):
        table = ShareTable("T", ["a", "b", "v"], searchable=["a", "b"])
        table.insert_many(
            [
                (1, {"a": 10, "b": 5, "v": 100}),
                (2, {"a": 20, "b": None, "v": 200}),
                (3, {"a": None, "b": 7, "v": 300}),
                (4, {"a": 20, "b": 9, "v": 400}),
            ]
        )
        return table

    def assert_indexes_consistent(self, table):
        for column in sorted(table.searchable):
            assert (
                table.index_for(column).entries_in_order()
                == reference_entries(table, column)
            ), f"index {column} diverged from stored rows"

    def test_update_searchable_reindexes(self):
        table = self.make()
        table.update(1, {"a": 99})
        assert table.index_for("a").equal_row_ids(10) == []
        assert table.index_for("a").equal_row_ids(99) == [1]
        self.assert_indexes_consistent(table)

    def test_null_transitions(self):
        table = self.make()
        table.update(1, {"a": None})  # value -> NULL: deindexed
        assert table.index_for("a").equal_row_ids(10) == []
        table.update(3, {"a": 55})  # NULL -> value: indexed
        assert table.index_for("a").equal_row_ids(55) == [3]
        table.update(2, {"b": 5})  # NULL -> value on second index
        assert sorted(table.index_for("b").equal_row_ids(5)) == [1, 2]
        self.assert_indexes_consistent(table)

    def test_insert_update_delete_sequence(self):
        table = self.make()
        table.insert(5, {"a": 20, "b": None, "v": 500})
        table.update(5, {"a": 21, "b": 3})
        table.update(4, {"a": None})
        table.delete(2)
        table.delete(5)
        self.assert_indexes_consistent(table)
        # no stale entries: every indexed row id still exists
        for column in sorted(table.searchable):
            for _, rid in table.index_for(column).entries_in_order():
                assert table.has_row(rid)

    def test_delete_after_bulk_load_swaps_slots_correctly(self):
        table = self.make()
        table.delete(1)  # swap-remove moves the last slot into the hole
        assert table.get(4) == {"a": 20, "b": 9, "v": 400}
        assert table.value(2, "v") == 200
        self.assert_indexes_consistent(table)

    def test_randomized_dml_never_leaks_entries(self):
        rng = random.Random(42)
        table = ShareTable("T", ["a", "b", "v"], searchable=["a", "b"])
        alive = []
        next_rid = 0
        for step in range(300):
            action = rng.random()
            if action < 0.45 or not alive:
                values = {
                    "a": rng.randrange(50) if rng.random() > 0.2 else None,
                    "b": rng.randrange(50) if rng.random() > 0.2 else None,
                    "v": rng.randrange(1000),
                }
                table.insert(next_rid, values)
                alive.append(next_rid)
                next_rid += 1
            elif action < 0.8:
                rid = rng.choice(alive)
                column = rng.choice(["a", "b"])
                new = rng.randrange(50) if rng.random() > 0.3 else None
                table.update(rid, {column: new})
            else:
                rid = rng.choice(alive)
                alive.remove(rid)
                table.delete(rid)
        for column in ("a", "b"):
            assert (
                table.index_for(column).entries_in_order()
                == reference_entries(table, column)
            )


class TestBulkLoad:
    """``insert_many`` fast path vs n single-row inserts."""

    COLUMNS = ["a", "b", "v"]

    def rows(self, n=200, seed=9):
        rng = random.Random(seed)
        return [
            (
                rid,
                {
                    "a": rng.randrange(40) if rng.random() > 0.1 else None,
                    "b": rng.randrange(40) if rng.random() > 0.1 else None,
                    "v": rng.randrange(10_000),
                },
            )
            for rid in range(n)
        ]

    def test_bulk_equals_incremental(self):
        rows = self.rows()
        bulk = ShareTable("T", self.COLUMNS, searchable=["a", "b"])
        assert bulk.insert_many(rows) == len(rows)
        incremental = ShareTable("T", self.COLUMNS, searchable=["a", "b"])
        for rid, values in rows:
            incremental.insert(rid, values)
        assert bulk.rows == incremental.rows
        assert bulk.all_row_ids() == incremental.all_row_ids()
        for column in ("a", "b"):
            assert (
                bulk.index_for(column).entries_in_order()
                == incremental.index_for(column).entries_in_order()
            )

    def test_bulk_load_into_nonempty_table_merges(self):
        rows = self.rows()
        table = ShareTable("T", self.COLUMNS, searchable=["a", "b"])
        table.insert_many(rows[:50])
        table.insert_many(rows[50:])
        assert table.rows == dict(
            (rid, {c: values.get(c) for c in self.COLUMNS})
            for rid, values in rows
        )
        for column in ("a", "b"):
            assert (
                table.index_for(column).entries_in_order()
                == reference_entries(table, column)
            )

    def test_invalid_batch_fails_like_single_inserts(self):
        """An invalid row must surface the same error, at the same row,
        leaving the same partially-inserted state as n single inserts."""
        batch = [
            (1, {"a": 1, "v": 10}),
            (2, {"zzz": 5}),
            (3, {"a": 3, "v": 30}),
        ]
        bulk = ShareTable("T", self.COLUMNS, searchable=["a"])
        with pytest.raises(ProviderError) as bulk_error:
            bulk.insert_many(batch)
        incremental = ShareTable("T", self.COLUMNS, searchable=["a"])
        with pytest.raises(ProviderError) as incremental_error:
            for rid, values in batch:
                incremental.insert(rid, values)
        assert str(bulk_error.value) == str(incremental_error.value)
        assert bulk.rows == incremental.rows

    def test_duplicate_rid_within_batch_rejected(self):
        table = ShareTable("T", self.COLUMNS, searchable=["a"])
        with pytest.raises(ProviderError):
            table.insert_many([(1, {"a": 1}), (1, {"a": 2})])
        assert table.rows == {1: {"a": 1, "b": None, "v": None}}

    def test_empty_batch(self):
        table = ShareTable("T", self.COLUMNS, searchable=["a"])
        assert table.insert_many([]) == 0
        assert len(table) == 0


class TestDerivedStateCache:
    def make(self):
        table = ShareTable("T", ["a"], searchable=["a"])
        table.insert_many([(5, {"a": 1}), (1, {"a": 2}), (3, {"a": 3})])
        return table

    def test_row_order_cached_across_reads(self):
        table = self.make()
        assert table.all_row_ids() == [1, 3, 5]
        for rid, position in [(1, 0), (3, 1), (5, 2)]:
            assert table.row_position(rid) == position
        assert table.derived_rebuilds == 1  # one rebuild for all reads

    def test_mutation_invalidates_cache(self):
        table = self.make()
        table.all_row_ids()
        table.delete(3)
        assert table.all_row_ids() == [1, 5]
        assert table.row_position(5) == 1
        assert table.derived_rebuilds == 2

    def test_missing_row_position(self):
        table = self.make()
        with pytest.raises(ProviderError):
            table.row_position(99)


class TestColumnarKernels:
    def make(self):
        table = ShareTable("T", ["a", "v"], searchable=["a"])
        table.insert_many(
            [(1, {"a": 10, "v": 100}), (2, {"a": 20}), (3, {"v": 300})]
        )
        return table

    def test_values_for_rows(self):
        table = self.make()
        assert table.values_for_rows("v", [3, 1, 2]) == [300, 100, None]
        with pytest.raises(ProviderError):
            table.values_for_rows("v", [1, 99])

    def test_column_array_and_slots(self):
        table = self.make()
        array = table.column_array("a")
        assert [array[table.slot_of(rid)] for rid in (1, 2, 3)] == [
            10,
            20,
            None,
        ]
        with pytest.raises(ProviderError):
            table.column_array("zzz")

    def test_materialize_rows_full_and_projected(self):
        table = self.make()
        slots = table.slots_for([2, 3])
        assert table.materialize_rows(slots) == [
            {"a": 20, "v": None},
            {"a": None, "v": 300},
        ]
        assert table.materialize_rows(slots, ["v"]) == [{"v": None}, {"v": 300}]

    def test_materializer_safe_for_hostile_column_names(self):
        # column names are embedded into generated code via repr; quotes
        # and backslashes must round-trip as data, not as syntax
        name = "x\"]; import os # '\\"
        table = ShareTable("T", [name], searchable=[])
        table.insert(1, {name: 7})
        assert table.materialize_rows(table.slots_for([1])) == [{name: 7}]


class TestShareStore:
    def test_create_and_lookup(self):
        store = ShareStore()
        store.create_table("T", ["a"], ["a"])
        assert store.has_table("T")
        assert store.table_names() == ["T"]
        with pytest.raises(ProviderError):
            store.create_table("T", ["a"], [])

    def test_drop(self):
        store = ShareStore()
        store.create_table("T", ["a"], [])
        store.drop_table("T")
        with pytest.raises(ProviderError):
            store.drop_table("T")

    def test_missing_table(self):
        with pytest.raises(ProviderError):
            ShareStore().table("nope")
