"""Unit tests for provider-side share storage."""

import pytest

from repro.errors import ProviderError
from repro.providers.storage import ShareStore, ShareTable, SortedShareIndex


class TestSortedShareIndex:
    def test_insert_and_range(self):
        index = SortedShareIndex("c")
        for share, rid in [(50, 1), (10, 2), (30, 3), (30, 4)]:
            index.insert(share, rid)
        assert index.range_row_ids(10, 30) == [2, 3, 4]
        assert index.range_row_ids(31, 100) == [1]

    def test_equal_row_ids_duplicates(self):
        index = SortedShareIndex("c")
        index.insert(5, 1)
        index.insert(5, 2)
        assert index.equal_row_ids(5) == [1, 2]
        assert index.equal_row_ids(6) == []

    def test_open_ended_ranges(self):
        index = SortedShareIndex("c")
        for share, rid in [(10, 1), (20, 2), (30, 3)]:
            index.insert(share, rid)
        assert index.range_row_ids(None, 20) == [1, 2]
        assert index.range_row_ids(20, None) == [2, 3]
        assert index.range_row_ids(None, None) == [1, 2, 3]

    def test_exclusive_bounds(self):
        index = SortedShareIndex("c")
        for share, rid in [(10, 1), (20, 2), (30, 3)]:
            index.insert(share, rid)
        assert index.range_row_ids(None, 20, high_inclusive=False) == [1]
        assert index.range_row_ids(20, None, low_inclusive=False) == [3]

    def test_remove(self):
        index = SortedShareIndex("c")
        index.insert(5, 1)
        index.remove(5, 1)
        assert len(index) == 0
        with pytest.raises(ProviderError):
            index.remove(5, 1)

    def test_min_max_entries(self):
        index = SortedShareIndex("c")
        assert index.min_entry() is None
        index.insert(10, 1)
        index.insert(5, 2)
        assert index.min_entry() == (5, 2)
        assert index.max_entry() == (10, 1)

    def test_comparisons_positive(self):
        index = SortedShareIndex("c")
        assert index.comparisons_for_range() >= 1


class TestShareTable:
    def make(self):
        return ShareTable("T", ["a", "b"], searchable=["a"])

    def test_insert_and_get(self):
        table = self.make()
        table.insert(1, {"a": 100, "b": 200})
        assert table.get(1) == {"a": 100, "b": 200}
        assert len(table) == 1
        assert table.has_row(1)

    def test_missing_column_stored_as_null(self):
        table = self.make()
        table.insert(1, {"a": 100})
        assert table.get(1)["b"] is None

    def test_duplicate_rid_rejected(self):
        table = self.make()
        table.insert(1, {"a": 1})
        with pytest.raises(ProviderError):
            table.insert(1, {"a": 2})

    def test_unknown_column_rejected(self):
        table = self.make()
        with pytest.raises(ProviderError):
            table.insert(1, {"zzz": 5})

    def test_index_updated_on_mutation(self):
        table = self.make()
        table.insert(1, {"a": 10, "b": 1})
        table.update(1, {"a": 99})
        assert table.index_for("a").equal_row_ids(10) == []
        assert table.index_for("a").equal_row_ids(99) == [1]

    def test_update_to_null_removes_from_index(self):
        table = self.make()
        table.insert(1, {"a": 10})
        table.update(1, {"a": None})
        assert table.index_for("a").equal_row_ids(10) == []
        assert table.get(1)["a"] is None

    def test_delete_cleans_index(self):
        table = self.make()
        table.insert(1, {"a": 10})
        table.delete(1)
        assert not table.has_row(1)
        assert table.index_for("a").equal_row_ids(10) == []

    def test_non_searchable_index_access_rejected(self):
        table = self.make()
        with pytest.raises(ProviderError):
            table.index_for("b")

    def test_searchable_must_be_subset(self):
        with pytest.raises(ProviderError):
            ShareTable("T", ["a"], searchable=["zzz"])

    def test_version_bumps(self):
        table = self.make()
        v0 = table.version
        table.insert(1, {"a": 1})
        table.update(1, {"a": 2})
        table.delete(1)
        assert table.version == v0 + 3

    def test_all_row_ids_sorted(self):
        table = self.make()
        for rid in (5, 1, 3):
            table.insert(rid, {"a": rid})
        assert table.all_row_ids() == [1, 3, 5]


class TestShareStore:
    def test_create_and_lookup(self):
        store = ShareStore()
        store.create_table("T", ["a"], ["a"])
        assert store.has_table("T")
        assert store.table_names() == ["T"]
        with pytest.raises(ProviderError):
            store.create_table("T", ["a"], [])

    def test_drop(self):
        store = ShareStore()
        store.create_table("T", ["a"], [])
        store.drop_table("T")
        with pytest.raises(ProviderError):
            store.drop_table("T")

    def test_missing_table(self):
        with pytest.raises(ProviderError):
            ShareStore().table("nope")
