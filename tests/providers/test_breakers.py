"""Circuit breakers and bulkheads: state machine, boundaries, wiring."""

import pytest

from repro import telemetry
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ProviderUnavailableError,
)
from repro.providers.breakers import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    Bulkhead,
    CircuitBreaker,
)
from repro.providers.cluster import ProviderCluster
from repro.providers.failures import Fault, FailureMode


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        window=4,
        failure_threshold=0.5,
        min_calls=4,
        open_seconds=10.0,
        half_open_probes=2,
        clock=clock,
        name="DAS1",
    )


class TestConstruction:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(window=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=1.5)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(min_calls=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(open_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)


class TestStateMachine:
    def test_stays_closed_below_min_calls(self, breaker):
        # 100% failure rate, but too few samples to be meaningful
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_when_rate_crosses_at_window_boundary(self, breaker):
        """Old successes must slide out of the window: four successes
        followed by failures opens the breaker exactly when the rate
        over the *last four* outcomes reaches the threshold."""
        for _ in range(4):
            breaker.record_success()
        breaker.record_failure()  # window S,S,S,F -> rate 0.25
        assert breaker.state == CLOSED
        breaker.record_failure()  # window S,S,F,F -> rate 0.50, boundary
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_open_fast_fails_without_consuming(self, breaker, clock):
        with telemetry.session() as hub:
            for _ in range(4):
                breaker.record_failure()
            assert breaker.state == OPEN
            assert not breaker.allow()
            assert not breaker.allow()
            assert breaker.fast_fails == 2
            assert hub.registry.counter_value(
                "breaker.opened", provider="DAS1"
            ) == 1

    def test_cooldown_boundary_exact(self, breaker, clock):
        """The OPEN -> HALF_OPEN transition fires at *exactly*
        opened_at + open_seconds, not one tick later."""
        clock.now = 3.0
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 3.0 + 10.0 - 1e-9
        assert breaker.state == OPEN
        clock.now = 3.0 + 10.0  # boundary inclusive
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_only_probe_budget(self, breaker, clock):
        for _ in range(4):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # probe 1
        assert breaker.allow()  # probe 2
        assert not breaker.allow()  # budget spent
        assert breaker.fast_fails == 1

    def test_admits_is_non_consuming(self, breaker, clock):
        for _ in range(4):
            breaker.record_failure()
        clock.now = 10.0
        for _ in range(5):
            assert breaker.admits()  # never burns probe budget
        assert breaker.allow()  # both probes still available
        assert breaker.allow()

    def test_all_probes_succeeding_closes(self, breaker, clock):
        for _ in range(4):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow() and breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == CLOSED
        # clean slate: the old failure window is gone
        assert breaker.snapshot()["window_calls"] == 0
        assert breaker.snapshot()["failure_rate"] == 0.0

    def test_failed_probe_reopens_with_fresh_cooldown(self, breaker, clock):
        for _ in range(4):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.allow()
        breaker.record_failure()  # provider still sick
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        clock.now = 19.0  # 9s after the re-trip: still cooling down
        assert breaker.state == OPEN
        clock.now = 20.0
        assert breaker.state == HALF_OPEN

    def test_snapshot_shape(self, breaker):
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failure_rate"] == 1.0
        assert snap["window_calls"] == 1
        assert snap["times_opened"] == 0
        assert snap["fast_fails"] == 0


class TestBulkhead:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Bulkhead(0)

    def test_caps_concurrency_and_counts_rejections(self):
        bulkhead = Bulkhead(2)
        assert bulkhead.try_enter()
        assert bulkhead.try_enter()
        assert not bulkhead.try_enter()
        assert bulkhead.rejections == 1
        assert bulkhead.active == 2
        bulkhead.exit()
        assert bulkhead.try_enter()  # slot freed

    def test_exit_requires_enter(self):
        with pytest.raises(ConfigurationError):
            Bulkhead(1).exit()


class TestBreakerBoard:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerBoard(0)

    def test_snapshot_keyed_by_name(self, clock):
        board = BreakerBoard(
            2, clock=clock, names=["DAS1", "DAS2"], bulkhead_limit=3
        )
        snap = board.snapshot()
        assert set(snap) == {"DAS1", "DAS2"}
        assert snap["DAS1"]["state"] == CLOSED
        assert snap["DAS1"]["bulkhead_active"] == 0
        assert snap["DAS1"]["bulkhead_rejections"] == 0

    def test_try_enter_without_bulkheads_always_admits(self, clock):
        board = BreakerBoard(1, clock=clock)
        for _ in range(100):
            assert board.try_enter(0)
        board.exit(0)  # no-op without bulkheads

    def test_bulkhead_reject_counter(self, clock):
        board = BreakerBoard(
            1, clock=clock, names=["DAS1"], bulkhead_limit=1
        )
        with telemetry.session() as hub:
            assert board.try_enter(0)
            assert not board.try_enter(0)
            assert hub.registry.counter_value(
                "breaker.bulkhead_reject", provider="DAS1"
            ) == 1


class TestClusterIntegration:
    def test_opt_in_default_off(self):
        assert ProviderCluster(3, 2).breakers is None

    def test_breaker_opens_on_crashed_provider_then_fast_fails(self):
        """Real failures trip the breaker; once open, calls fail fast
        client-side — zero bytes, zero modelled time, no retries."""
        cluster = ProviderCluster(3, 2)
        cluster.broadcast(
            "create_table",
            lambda i: {"table": "T", "columns": ["k"], "searchable": ["k"]},
        )
        cluster.install_breakers(min_calls=2, window=4)
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        for _ in range(2):
            with pytest.raises(ProviderUnavailableError):
                cluster.call_one(0, "row_count", {"table": "T"})
        assert cluster.breakers.breakers[0].state == OPEN
        bytes_before = cluster.network.total_bytes
        time_before = cluster.network.modelled_seconds
        with pytest.raises(CircuitOpenError):
            cluster.call_one(0, "row_count", {"table": "T"})
        assert cluster.network.total_bytes == bytes_before
        assert cluster.network.modelled_seconds == time_before
        assert cluster.breakers.breakers[0].fast_fails >= 1

    def test_probe_after_cooldown_recovers(self):
        cluster = ProviderCluster(3, 2)
        cluster.broadcast(
            "create_table",
            lambda i: {"table": "T", "columns": ["k"], "searchable": ["k"]},
        )
        cluster.install_breakers(
            min_calls=2, window=4, open_seconds=5.0, half_open_probes=1
        )
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        for _ in range(2):
            with pytest.raises(ProviderUnavailableError):
                cluster.call_one(0, "row_count", {"table": "T"})
        assert cluster.breakers.breakers[0].state == OPEN
        cluster.clear_faults()
        cluster.network.advance_clock(5.0)  # modelled cooldown elapses
        response = cluster.call_one(0, "row_count", {"table": "T"})
        assert "rows" in response or response  # probe went through
        assert cluster.breakers.breakers[0].state == CLOSED

    def test_read_quorum_avoids_open_breakers(self):
        cluster = ProviderCluster(5, 3)
        cluster.install_breakers(min_calls=2, window=4)
        for _ in range(2):
            cluster.breakers.record_failure(1)
        assert cluster.breakers.breakers[1].state == OPEN
        quorum = cluster.read_quorum()
        assert 1 not in quorum
        assert len(quorum) == 3
