"""Unit tests for the share provider RPC surface."""

import pytest

from repro.errors import ProviderError, ProviderUnavailableError, QueryError
from repro.providers.failures import Fault, FailureMode
from repro.providers.provider import ShareProvider
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def provider():
    p = ShareProvider("DAS1")
    p.handle(
        "create_table",
        {"table": "T", "columns": ["k", "v"], "searchable": ["k"]},
    )
    p.handle(
        "insert_many",
        {
            "table": "T",
            "rows": [
                [0, {"k": 100, "v": 11}],
                [1, {"k": 200, "v": 22}],
                [2, {"k": 300, "v": 33}],
                [3, {"k": 200, "v": 44}],
            ],
        },
    )
    return p


class TestDispatch:
    def test_unknown_method(self, provider):
        with pytest.raises(ProviderError):
            provider.handle("nope", {})

    def test_requests_counted(self, provider):
        before = provider.requests_served
        provider.handle("row_count", {"table": "T"})
        assert provider.requests_served == before + 1


class TestSelect:
    def test_eq_condition(self, provider):
        response = provider.handle(
            "select",
            {
                "table": "T",
                "conditions": [{"column": "k", "op": "eq", "low": 200}],
            },
        )
        assert [rid for rid, _ in response["rows"]] == [1, 3]

    def test_range_condition(self, provider):
        response = provider.handle(
            "select",
            {
                "table": "T",
                "conditions": [
                    {"column": "k", "op": "range", "low": 150, "high": 250}
                ],
            },
        )
        assert [rid for rid, _ in response["rows"]] == [1, 3]

    def test_inequality_conditions(self, provider):
        for op, expected in [
            ("lt", [0]),
            ("le", [0, 1, 3]),
            ("gt", [2]),
            ("ge", [1, 2, 3]),
        ]:
            response = provider.handle(
                "select",
                {
                    "table": "T",
                    "conditions": [{"column": "k", "op": op, "low": 200}],
                },
            )
            assert [rid for rid, _ in response["rows"]] == expected, op

    def test_condition_intersection(self, provider):
        response = provider.handle(
            "select",
            {
                "table": "T",
                "conditions": [
                    {"column": "k", "op": "ge", "low": 150},
                    {"column": "k", "op": "le", "low": 250},
                ],
            },
        )
        assert [rid for rid, _ in response["rows"]] == [1, 3]

    def test_no_conditions_scans_all(self, provider):
        response = provider.handle("select", {"table": "T", "conditions": []})
        assert len(response["rows"]) == 4

    def test_projection(self, provider):
        response = provider.handle(
            "select", {"table": "T", "conditions": [], "projection": ["v"]}
        )
        assert response["rows"][0][1] == {"v": 11}

    def test_bad_projection(self, provider):
        with pytest.raises(QueryError):
            provider.handle(
                "select", {"table": "T", "conditions": [], "projection": ["zz"]}
            )

    def test_unknown_op(self, provider):
        with pytest.raises(QueryError):
            provider.handle(
                "select",
                {"table": "T", "conditions": [{"column": "k", "op": "xx"}]},
            )

    def test_condition_on_unsearchable_rejected(self, provider):
        with pytest.raises(ProviderError):
            provider.handle(
                "select",
                {
                    "table": "T",
                    "conditions": [{"column": "v", "op": "eq", "low": 11}],
                },
            )


class TestAggregate:
    def test_sum(self, provider):
        response = provider.handle(
            "aggregate",
            {"table": "T", "conditions": [], "func": "sum", "column": "v"},
        )
        assert response == {"partial_sum": 110, "count": 4}

    def test_count(self, provider):
        response = provider.handle(
            "aggregate",
            {"table": "T", "conditions": [], "func": "count", "column": None},
        )
        assert response["count"] == 4

    def test_min_max_median_by_share_order(self, provider):
        for func, expected_rid in [("min", 0), ("max", 2), ("median", 1)]:
            response = provider.handle(
                "aggregate",
                {"table": "T", "conditions": [], "func": func, "column": "k"},
            )
            assert response["row"][0] == expected_rid, func
            assert response["count"] == 4

    def test_order_aggregate_needs_searchable(self, provider):
        with pytest.raises(ProviderError):
            provider.handle(
                "aggregate",
                {"table": "T", "conditions": [], "func": "min", "column": "v"},
            )

    def test_empty_aggregate(self, provider):
        response = provider.handle(
            "aggregate",
            {
                "table": "T",
                "conditions": [{"column": "k", "op": "eq", "low": 1}],
                "func": "min",
                "column": "k",
            },
        )
        assert response == {"row": None, "count": 0}

    def test_unknown_func(self, provider):
        with pytest.raises(QueryError):
            provider.handle(
                "aggregate",
                {"table": "T", "conditions": [], "func": "stdev", "column": "v"},
            )


class TestJoin:
    def make_pair(self):
        p = ShareProvider("DAS1")
        p.handle("create_table", {"table": "L", "columns": ["k", "x"], "searchable": ["k"]})
        p.handle("create_table", {"table": "R", "columns": ["k", "y"], "searchable": ["k"]})
        p.handle("insert_many", {"table": "L", "rows": [
            [0, {"k": 1, "x": 10}], [1, {"k": 2, "x": 20}], [2, {"k": 3, "x": 30}]]})
        p.handle("insert_many", {"table": "R", "rows": [
            [0, {"k": 2, "y": 200}], [1, {"k": 3, "y": 300}], [2, {"k": 2, "y": 201}]]})
        return p

    def test_hash_join_on_shares(self):
        p = self.make_pair()
        response = p.handle(
            "join",
            {
                "left": "L", "right": "R",
                "left_column": "k", "right_column": "k",
            },
        )
        pairs = {(lid, rid) for lid, rid, _, _ in response["rows"]}
        assert pairs == {(1, 0), (1, 2), (2, 1)}

    def test_join_with_conditions(self):
        p = self.make_pair()
        response = p.handle(
            "join",
            {
                "left": "L", "right": "R",
                "left_column": "k", "right_column": "k",
                "left_conditions": [{"column": "k", "op": "eq", "low": 3}],
            },
        )
        assert {(lid, rid) for lid, rid, _, _ in response["rows"]} == {(2, 1)}

    def test_join_requires_searchable_keys(self):
        p = self.make_pair()
        with pytest.raises(QueryError):
            p.handle(
                "join",
                {
                    "left": "L", "right": "R",
                    "left_column": "x", "right_column": "y",
                },
            )


class TestWritesAndFaults:
    def test_update_rows(self, provider):
        provider.handle(
            "update_rows", {"table": "T", "updates": [[0, {"k": 999}]]}
        )
        response = provider.handle(
            "select",
            {"table": "T", "conditions": [{"column": "k", "op": "eq", "low": 999}]},
        )
        assert [rid for rid, _ in response["rows"]] == [0]

    def test_delete_rows(self, provider):
        provider.handle("delete_rows", {"table": "T", "row_ids": [0, 2]})
        assert provider.handle("row_count", {"table": "T"})["count"] == 2

    def test_get_rows_skips_missing(self, provider):
        response = provider.handle("get_rows", {"table": "T", "row_ids": [0, 99]})
        assert [rid for rid, _ in response["rows"]] == [0]

    def test_crash_fault(self, provider):
        provider.inject_fault(Fault(FailureMode.CRASH))
        with pytest.raises(ProviderUnavailableError):
            provider.handle("row_count", {"table": "T"})
        provider.clear_fault()
        assert provider.handle("row_count", {"table": "T"})["count"] == 4

    def test_tamper_fault_changes_shares(self, provider):
        clean = provider.handle("select", {"table": "T", "conditions": []})
        provider.inject_fault(
            Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "t"))
        )
        dirty = provider.handle("select", {"table": "T", "conditions": []})
        clean_vals = [v for _, row in clean["rows"] for v in row.values()]
        dirty_vals = [v for _, row in dirty["rows"] for v in row.values()]
        assert clean_vals != dirty_vals

    def test_omit_fault_drops_rows(self, provider):
        provider.inject_fault(
            Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(1, "o"))
        )
        response = provider.handle("select", {"table": "T", "conditions": []})
        assert response["rows"] == []
