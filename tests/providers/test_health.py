"""Unit tests for the provider health tracker (quarantine state machine)."""

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.providers.health import HealthTracker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracker(clock):
    return HealthTracker(
        5,
        quarantine_after=2,
        cooldown_seconds=30.0,
        clock=clock,
        names=[f"DAS{i + 1}" for i in range(5)],
    )


class TestConstruction:
    def test_bad_parameters(self, clock):
        with pytest.raises(ConfigurationError):
            HealthTracker(0)
        with pytest.raises(ConfigurationError):
            HealthTracker(3, quarantine_after=0)
        with pytest.raises(ConfigurationError):
            HealthTracker(3, cooldown_seconds=-1.0)


class TestQuarantineLifecycle:
    def test_single_failure_not_quarantined(self, tracker):
        tracker.record_failure(0)
        assert not tracker.is_quarantined(0)

    def test_consecutive_failures_quarantine(self, tracker):
        tracker.record_failure(0)
        tracker.record_failure(0)
        assert tracker.is_quarantined(0)

    def test_success_resets_failure_streak(self, tracker):
        tracker.record_failure(0)
        tracker.record_success(0)
        tracker.record_failure(0)
        assert not tracker.is_quarantined(0)

    def test_success_does_not_lift_quarantine(self, tracker):
        # a tampering provider answers promptly; transport success must
        # not readmit it — only cooldown expiry or an explicit release
        tracker.quarantine(1, reason="blamed")
        tracker.record_success(1)
        assert tracker.is_quarantined(1)

    def test_cooldown_expiry_readmits(self, tracker, clock):
        tracker.quarantine(2)
        clock.now = 29.9
        assert tracker.is_quarantined(2)
        clock.now = 30.0
        assert not tracker.is_quarantined(2)
        # readmission is a clean slate
        assert tracker.snapshot()["DAS3"]["consecutive_failures"] == 0

    def test_release_lifts_explicitly(self, tracker):
        tracker.quarantine(3, reason="blamed")
        tracker.release(3)
        assert not tracker.is_quarantined(3)


class TestPreferredOrder:
    def test_healthy_in_index_order(self, tracker):
        assert tracker.preferred_order([0, 1, 2, 3, 4]) == [0, 1, 2, 3, 4]

    def test_quarantined_sort_last(self, tracker):
        tracker.quarantine(0)
        tracker.quarantine(2)
        assert tracker.preferred_order([0, 1, 2, 3, 4]) == [1, 3, 4, 0, 2]

    def test_subset_preserved(self, tracker):
        tracker.quarantine(1)
        assert tracker.preferred_order([1, 3]) == [3, 1]

    def test_order_at_exact_cooldown_expiry(self, tracker, clock):
        """At exactly ``quarantined_until`` the provider is readmitted:
        it sorts with the healthy group, in index order, clean slate."""
        tracker.quarantine(1)
        clock.now = 30.0  # the boundary tick, not one past it
        assert tracker.preferred_order([0, 1, 2]) == [0, 1, 2]
        assert tracker.snapshot()["DAS2"]["quarantined"] is False
        assert tracker.snapshot()["DAS2"]["consecutive_failures"] == 0

    def test_expiry_mid_scan_keeps_partition_exact(self, clock):
        """Regression for the double-evaluation bug: ``is_quarantined``
        mutates state on lazy expiry, so the old two-scan partition
        could drop (or duplicate) a provider whose cooldown expired
        between the scans.  A clock that advances on every read makes
        the expiry land mid-scan; the result must still be a
        permutation of the candidates, every time."""

        class TickingClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                self.now += 1.0  # each read crosses another second
                return self.now

        ticking = TickingClock()
        tracker = HealthTracker(
            5, quarantine_after=2, cooldown_seconds=4.0, clock=ticking
        )
        for index in range(5):
            tracker.quarantine(index)
        # expiries now sit a few ticks apart; repeated calls sweep the
        # boundary through every position of the scan
        for _ in range(10):
            order = tracker.preferred_order([0, 1, 2, 3, 4])
            assert sorted(order) == [0, 1, 2, 3, 4], (
                f"partition lost or duplicated providers: {order}"
            )


class TestIntrospection:
    def test_snapshot_fields(self, tracker, clock):
        tracker.record_failure(0)
        tracker.record_failure(0, reason="unavailable")
        clock.now = 10.0
        entry = tracker.snapshot()["DAS1"]
        assert entry["quarantined"] is True
        assert entry["quarantine_reason"] == "unavailable"
        assert entry["times_quarantined"] == 1
        assert entry["cooldown_remaining"] == pytest.approx(20.0)

    def test_quarantine_counter_emitted(self, tracker):
        with telemetry.session() as hub:
            tracker.quarantine(4, reason="blamed")
            assert (
                hub.registry.counter_value(
                    "health.quarantined", provider="DAS5", reason="blamed"
                )
                == 1
            )
