"""The fan-out thread pool: shared, injectable, and leak-free."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro import DataSource, ProviderCluster
from repro.providers.cluster import (
    EXECUTOR_MAX_WORKERS,
    EXECUTOR_THREAD_PREFIX,
    shared_executor,
    shutdown_shared_executor,
)
from repro.workloads.employees import employees_table


def _pool_threads():
    return [
        t
        for t in threading.enumerate()
        if t.name.startswith(EXECUTOR_THREAD_PREFIX)
    ]


def _build_source(executor=None):
    source = DataSource(
        ProviderCluster(4, 2, executor=executor), seed=29
    )
    source.outsource_table(employees_table(25, seed=29))
    return source


class TestSharedPool:
    def test_repeated_queries_do_not_leak_threads(self):
        """The regression the satellite names: query load must not grow
        the thread population — one bounded pool serves everything."""
        source = _build_source()
        eids = sorted(r["eid"] for r in source.sql("SELECT eid FROM Employees"))
        for eid in eids:
            source.sql(f"SELECT salary FROM Employees WHERE eid = {eid}")
        after_warmup = len(_pool_threads())
        assert after_warmup <= EXECUTOR_MAX_WORKERS
        for _ in range(3):
            for eid in eids:
                source.sql(f"SELECT name FROM Employees WHERE eid = {eid}")
        assert len(_pool_threads()) <= after_warmup

    def test_clusters_share_one_pool(self):
        a = ProviderCluster(3, 2)
        b = ProviderCluster(5, 3)
        assert a.executor is b.executor is shared_executor()

    def test_shutdown_then_fresh_pool(self):
        before = shared_executor()
        shutdown_shared_executor()
        source = _build_source()
        assert source.sql("SELECT COUNT(*) FROM Employees") == 25
        assert shared_executor() is not before


class TestInjection:
    def test_injected_executor_is_used(self):
        """A caller-supplied pool carries the fan-out work and the shared
        singleton never spins up on its behalf."""
        with ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="custom-fanout"
        ) as pool:
            cluster = ProviderCluster(4, 2, executor=pool)
            assert cluster.executor is pool
            source = DataSource(cluster, seed=29)
            source.outsource_table(employees_table(25, seed=29))
            assert source.sql("SELECT COUNT(*) FROM Employees") == 25
            assert any(
                t.name.startswith("custom-fanout")
                for t in threading.enumerate()
            )
