"""Unit tests for the provider cluster (fan-out, quorum, accounting)."""

import pytest

from repro.errors import ConfigurationError, QuorumError
from repro.providers.cluster import ProviderCluster
from repro.providers.failures import Fault, FailureMode


@pytest.fixture
def cluster():
    c = ProviderCluster(5, 3)
    c.broadcast(
        "create_table",
        lambda i: {"table": "T", "columns": ["k"], "searchable": ["k"]},
    )
    return c


class TestConstruction:
    def test_bad_sizes(self):
        # constructor misuse is a configuration bug, not a quorum loss
        with pytest.raises(ConfigurationError):
            ProviderCluster(0, 1)
        with pytest.raises(ConfigurationError):
            ProviderCluster(3, 4)
        with pytest.raises(ConfigurationError):
            ProviderCluster(3, 0)

    def test_provider_names(self, cluster):
        assert [p.name for p in cluster.providers] == [
            "DAS1", "DAS2", "DAS3", "DAS4", "DAS5",
        ]


class TestCalls:
    def test_call_one_accounts_bytes(self, cluster):
        before = cluster.network.total_bytes
        cluster.call_one(0, "row_count", {"table": "T"})
        assert cluster.network.total_bytes > before
        assert cluster.network.total_messages >= 2  # request + response

    def test_call_all_collects(self, cluster):
        responses = cluster.call_all(
            "row_count", {i: {"table": "T"} for i in range(5)}
        )
        assert set(responses) == {0, 1, 2, 3, 4}

    def test_broadcast_subset(self, cluster):
        responses = cluster.broadcast(
            "row_count", lambda i: {"table": "T"}, provider_indexes=[1, 3]
        )
        assert set(responses) == {1, 3}


class TestFailureRouting:
    def test_crashed_provider_skipped_with_minimum(self, cluster):
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        responses = cluster.call_all(
            "row_count", {i: {"table": "T"} for i in range(5)}, minimum=3
        )
        assert 0 not in responses and len(responses) == 4

    def test_quorum_error_below_minimum(self, cluster):
        for i in range(3):
            cluster.inject_fault(i, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError):
            cluster.call_all(
                "row_count", {i: {"table": "T"} for i in range(5)}, minimum=3
            )

    def test_write_requires_all_addressed(self, cluster):
        cluster.inject_fault(2, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError):
            cluster.call_all("row_count", {i: {"table": "T"} for i in range(5)})

    def test_live_indexes(self, cluster):
        cluster.inject_fault(1, Fault(FailureMode.CRASH))
        assert cluster.live_provider_indexes() == [0, 2, 3, 4]
        cluster.clear_faults()
        assert cluster.live_provider_indexes() == [0, 1, 2, 3, 4]

    def test_read_quorum(self, cluster):
        assert cluster.read_quorum() == [0, 1, 2]

    def test_read_quorum_is_knowledge_based(self, cluster):
        # selection cannot see an undiscovered crash — the client only
        # learns about it when an RPC fails, via the health tracker
        cluster.inject_fault(0, Fault(FailureMode.CRASH))
        assert cluster.read_quorum() == [0, 1, 2]
        # once quarantined (failures recorded), the provider rotates out
        cluster.health.quarantine(0, reason="test")
        assert cluster.read_quorum() == [1, 2, 3]

    def test_read_quorum_insufficient(self, cluster):
        with pytest.raises(QuorumError):
            cluster.read_quorum(exclude=(0, 1, 2))

    def test_write_targets(self, cluster):
        cluster.inject_fault(4, Fault(FailureMode.CRASH))
        assert cluster.write_targets() == [0, 1, 2, 3]


class TestAccounting:
    def test_cost_merge(self, cluster):
        cluster.providers[0].cost.record("compare", 5)
        cluster.providers[1].cost.record("compare", 7)
        merged = cluster.total_provider_cost()
        assert merged.count("compare") == 12

    def test_reset(self, cluster):
        cluster.call_one(0, "row_count", {"table": "T"})
        cluster.providers[0].cost.record("compare", 5)
        cluster.reset_accounting()
        assert cluster.network.total_bytes == 0
        assert cluster.total_provider_cost().total_operations() == 0
