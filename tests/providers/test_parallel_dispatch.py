"""Regression tests for the parallel quorum fan-out.

The parallel dispatcher changes *when* the modelled clock advances, but it
must never change *what* crossed the wire: on the same seed, the per-link
byte/message counters and the reconstructed result set have to be
bit-identical to sequential dispatch.  These tests pin that, plus the
latency win (``first_k`` reads wait for the k-th fastest provider, not the
sum of all round trips) and the Lagrange weight cache behaviour across the
rows of one ``select()``.
"""

import pytest

from repro.client.datasource import DataSource
from repro.core import kernels
from repro.errors import ConfigurationError
from repro.providers.cluster import CLIENT_NAME, ProviderCluster
from repro.sqlengine.expression import Comparison, ComparisonOp
from repro.sqlengine.query import Select
from repro.workloads.employees import employees_table

N, K, ROWS, SEED = 5, 3, 60, 11

QUERY = Select(
    table="Employees",
    where=Comparison("salary", ComparisonOp.GE, 40_000),
)


def _source(dispatch: str):
    cluster = ProviderCluster(N, K, dispatch=dispatch)
    source = DataSource(cluster, seed=SEED)
    source.outsource_table(employees_table(ROWS, seed=SEED))
    return cluster, source


class TestDispatchParity:
    def test_select_results_identical(self):
        _, seq = _source("sequential")
        _, par = _source("parallel")
        rows_seq = seq.select(QUERY)
        rows_par = par.select(QUERY)
        assert rows_seq and rows_seq == rows_par

    def test_per_provider_byte_counts_identical(self):
        seq_cluster, seq = _source("sequential")
        par_cluster, par = _source("parallel")
        seq_cluster.network.reset()
        par_cluster.network.reset()
        seq.select(QUERY)
        par.select(QUERY)
        for provider in seq_cluster.providers:
            for src, dst in (
                (CLIENT_NAME, provider.name),
                (provider.name, CLIENT_NAME),
            ):
                assert seq_cluster.network.stats.bytes_between(
                    src, dst
                ) == par_cluster.network.stats.bytes_between(src, dst), (
                    f"byte accounting diverged on link {src}->{dst}"
                )
        assert (
            seq_cluster.network.total_messages
            == par_cluster.network.total_messages
        )

    def test_first_k_latency_beats_sequential(self):
        """Sequential reads pay the sum of n round trips; a parallel
        first_k read pays the k-th fastest — strictly less for n > 1."""
        seq_cluster, seq = _source("sequential")
        par_cluster, par = _source("parallel")
        seq_cluster.network.reset()
        par_cluster.network.reset()
        seq.select(QUERY)
        par.select(QUERY)
        assert (
            par_cluster.network.modelled_seconds
            < seq_cluster.network.modelled_seconds
        )

    def test_unknown_modes_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown dispatch mode"):
            ProviderCluster(3, 2, dispatch="osmosis")
        cluster = ProviderCluster(3, 2)
        with pytest.raises(ConfigurationError, match="unknown quorum mode"):
            cluster.call_all("ping", {0: {}, 1: {}}, quorum="psychic")


class TestWeightCache:
    def test_weights_cached_across_rows_of_one_select(self):
        """The Lagrange weight tables are built once per quorum shape and
        *hit* — not rebuilt — for every further cell of the result set."""
        _, source = _source("parallel")
        kernels.clear_kernel_caches()
        kernels.reset_kernel_stats()
        rows = source.select(QUERY)
        assert len(rows) > 1
        stats = kernels.kernel_stats()
        builds = stats.weight_misses + stats.rational_misses
        hits = stats.weight_hits + stats.rational_hits
        # one quorum shape answered the whole select: at most one build per
        # weight flavour (modular / rational), everything else is a hit
        assert builds <= 2
        assert hits >= len(rows)

    def test_second_select_rebuilds_nothing(self):
        """A repeated select interpolates *nothing*: the row cache replays
        the result set, so not even cached weights are consulted."""
        _, source = _source("parallel")
        source.select(QUERY)
        kernels.reset_kernel_stats()
        rows = source.select(QUERY)
        stats = kernels.kernel_stats()
        assert len(rows) > 1
        assert stats.weight_misses == 0 and stats.rational_misses == 0
        assert source.row_cache.stats.query_hits >= 1

    def test_second_select_without_row_cache_hits_weight_cache(self):
        """With query replay out of the picture (fresh epoch entries gone),
        the weight tables still serve every cell from cache."""
        _, source = _source("parallel")
        source.select(QUERY)
        source.row_cache.clear()
        kernels.reset_kernel_stats()
        rows = source.select(QUERY)
        stats = kernels.kernel_stats()
        assert len(rows) > 1
        assert stats.weight_misses == 0 and stats.rational_misses == 0
        assert stats.weight_hits + stats.rational_hits >= len(rows)
