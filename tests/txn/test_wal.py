"""Write-ahead log framing, torn-tail repair, and checkpointing."""

import os

import pytest

from repro.errors import WALError
from repro.txn.wal import HEADER_SIZE, MAGIC, WriteAheadLog


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "client.wal")


class TestFraming:
    def test_roundtrip(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.log_txn(1, [{"method": "insert_many", "table": "T"}])
            wal.log_ack(1)
        records = WriteAheadLog.read_records(wal_path)
        assert records == [
            {"kind": "txn", "id": 1, "ops": [
                {"method": "insert_many", "table": "T"}]},
            {"kind": "ack", "id": 1},
        ]

    def test_append_returns_monotonic_offsets(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            offsets = [wal.append({"kind": "ack", "id": i}) for i in range(5)]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == 5

    def test_missing_file_reads_empty(self, wal_path):
        assert WriteAheadLog.read_records(wal_path) == []

    def test_counters(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.log_txn(1, [])
            wal.log_ack(1)
            assert wal.appends == 2
            assert wal.fsyncs >= 2
            assert wal.bytes_written == wal.size_bytes()


class TestTornTail:
    def _write_then_truncate(self, wal_path, keep_extra: int):
        with WriteAheadLog(wal_path) as wal:
            wal.log_txn(1, [{"method": "delete_rows", "table": "T"}])
            good_end = wal.size_bytes()
            wal.log_txn(2, [{"method": "delete_rows", "table": "T"}])
        # tear the tail record: keep the good prefix plus a partial frame
        with open(wal_path, "r+b") as handle:
            handle.truncate(good_end + keep_extra)
        return good_end

    def test_torn_tail_is_discarded(self, wal_path):
        good_end = self._write_then_truncate(wal_path, keep_extra=HEADER_SIZE)
        records = WriteAheadLog.read_records(wal_path)
        assert [r["id"] for r in records] == [1]
        # repair truncates the file back to the last whole frame
        assert os.path.getsize(wal_path) == good_end

    def test_torn_tail_without_repair_raises(self, wal_path):
        self._write_then_truncate(wal_path, keep_extra=4)
        with pytest.raises(WALError):
            WriteAheadLog.read_records(wal_path, repair=False)

    def test_corrupt_crc_stops_the_scan(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.log_txn(1, [])
            middle = wal.size_bytes()
            wal.log_txn(2, [])
        with open(wal_path, "r+b") as handle:
            # flip a payload byte of the second frame: CRC must catch it
            handle.seek(middle + HEADER_SIZE + 2)
            byte = handle.read(1)
            handle.seek(middle + HEADER_SIZE + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records = WriteAheadLog.read_records(wal_path)
        assert [r["id"] for r in records] == [1]

    def test_foreign_magic_rejected(self, wal_path):
        with open(wal_path, "wb") as handle:
            handle.write(b"XX" + b"\x00" * (HEADER_SIZE - 2) + b"junk")
        assert MAGIC != b"XX"
        with pytest.raises(WALError):
            WriteAheadLog.read_records(wal_path, repair=False)
        # repair mode treats it as an (empty) torn tail and truncates
        assert WriteAheadLog.read_records(wal_path) == []
        assert os.path.getsize(wal_path) == 0


class TestCheckpoint:
    def test_checkpoint_keeps_only_given_records(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            for i in range(1, 6):
                wal.log_txn(i, [])
                wal.log_ack(i)
            wal.checkpoint([{"kind": "ckpt", "next_id": 6}])
            # the log stays appendable after the swap
            wal.log_txn(6, [])
        records = WriteAheadLog.read_records(wal_path)
        assert records[0] == {"kind": "ckpt", "next_id": 6}
        assert [r.get("id") for r in records[1:]] == [6]

    def test_checkpoint_shrinks_the_file(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            for i in range(1, 50):
                wal.log_txn(i, [{"method": "insert_many", "table": "T"}])
                wal.log_ack(i)
            before = wal.size_bytes()
            wal.checkpoint([{"kind": "ckpt", "next_id": 50}])
            assert wal.size_bytes() < before
