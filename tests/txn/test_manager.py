"""Transaction manager: outbox, deltas, atomic batches, group commit."""

import threading

import pytest

from repro.client.datasource import DataSource
from repro.errors import ServiceError, TxnError
from repro.providers.cluster import ProviderCluster
from repro.service import QueryService
from repro.sqlengine.schema import TableSchema, integer_column, string_column
from repro.sqlengine.sqlparser import parse_sql
from repro.txn import GroupCommitEngine, TransactionManager


def accounts_schema():
    return TableSchema(
        "Accounts",
        (
            integer_column("aid", 0, 1_000_000),
            string_column("owner", 8),
            integer_column("score", 0, 1000),
            integer_column("balance", 0, 1_000_000_000, searchable=False),
        ),
        primary_key="aid",
    )


@pytest.fixture
def source():
    src = DataSource(ProviderCluster(4, 2), seed=7)
    src.create_table(accounts_schema())
    src.insert_many(
        "Accounts",
        [
            {"aid": i, "owner": "A", "score": i, "balance": 1000 + i}
            for i in range(20)
        ],
    )
    return src


@pytest.fixture
def manager(source, tmp_path):
    mgr = TransactionManager(source, str(tmp_path / "client.wal"))
    yield mgr
    mgr.close()


def rows_of(source):
    return sorted(
        (r["aid"], r["owner"], r["balance"])
        for r in source.select(parse_sql("SELECT * FROM Accounts"))
    )


class TestStatements:
    def test_insert_update_delete(self, source, manager):
        manager.execute(
            "INSERT INTO Accounts (aid, owner, score, balance) VALUES (100, 'Z', 1, 5)"
        )
        assert manager.execute(
            "UPDATE Accounts SET balance = 50 WHERE aid = 100"
        ) == 1
        assert manager.execute("DELETE FROM Accounts WHERE aid = 0") == 1
        rows = dict(
            (aid, (owner, balance)) for aid, owner, balance in rows_of(source)
        )
        assert rows[100] == ("Z", 50)
        assert 0 not in rows
        assert manager.stats()["committed"] == 3

    def test_delta_update_takes_increment_path(self, source, manager):
        count = manager.execute(
            "UPDATE Accounts SET balance = balance + 111 WHERE aid >= 0 AND aid <= 9"
        )
        assert count == 10
        rows = dict((a, b) for a, _o, b in rows_of(source))
        assert all(rows[a] == 1000 + a + 111 for a in range(10))
        assert all(rows[a] == 1000 + a for a in range(10, 20))

    def test_delta_on_searchable_column_falls_back_to_eager(
        self, source, manager
    ):
        # score is order-preserving: the delta fast path must refuse it
        # and the eager fallback must still produce the right plaintext
        count = manager.execute(
            "UPDATE Accounts SET score = score + 500 WHERE aid = 3"
        )
        assert count == 1
        rows = source.select(parse_sql("SELECT * FROM Accounts WHERE aid = 3"))
        assert rows[0]["score"] == 503

    def test_select_through_manager_barriers_pending(self, source, manager):
        manager.execute(
            "UPDATE Accounts SET balance = 9 WHERE aid = 1", autocommit=False
        )
        # the write is logged but unapplied; a read must flush it first
        rows = manager.execute("SELECT * FROM Accounts WHERE aid = 1")
        assert rows[0]["balance"] == 9
        assert manager.stats()["pending"] == 0

    def test_update_barrier_sees_pending_insert(self, source, manager):
        manager.execute(
            "INSERT INTO Accounts (aid, owner, score, balance) VALUES (77, 'Q', 1, 1)",
            autocommit=False,
        )
        assert manager.execute(
            "UPDATE Accounts SET balance = 2 WHERE aid = 77"
        ) == 1

    def test_empty_update_logs_nothing(self, source, manager):
        assert manager.execute(
            "UPDATE Accounts SET balance = 1 WHERE aid = 12345"
        ) == 0
        assert manager.stats()["logged"] == 0


class TestEpochs:
    def test_each_statement_bumps_once(self, source, manager):
        before = source.table_epoch("Accounts")
        manager.execute("UPDATE Accounts SET balance = 1 WHERE aid = 1")
        manager.execute("DELETE FROM Accounts WHERE aid = 2")
        assert source.table_epoch("Accounts") == before + 2

    def test_atomic_batch_shares_one_epoch(self, source, manager):
        before = source.table_epoch("Accounts")
        manager.atomic(
            [
                "UPDATE Accounts SET balance = 1 WHERE aid = 1",
                "UPDATE Accounts SET balance = 2 WHERE aid = 2",
                "DELETE FROM Accounts WHERE aid = 3",
            ]
        )
        assert source.table_epoch("Accounts") == before + 1


class TestAtomicBatches:
    def test_results_in_statement_order(self, source, manager):
        results = manager.atomic(
            [
                "INSERT INTO Accounts (aid, owner, score, balance) VALUES (50, 'N', 1, 7)",
                "UPDATE Accounts SET balance = 8 WHERE aid = 50",
                "DELETE FROM Accounts WHERE aid = 50",
            ]
        )
        assert results[1] == 1 and results[2] == 1
        assert 50 not in {a for a, _o, _b in rows_of(source)}

    def test_later_statements_see_earlier_writes(self, source, manager):
        manager.atomic(
            [
                "UPDATE Accounts SET balance = 40000 WHERE aid = 5",
                # matches only if the first statement's write is visible
                # inside the batch overlay
                "UPDATE Accounts SET owner = 'R' WHERE balance = 40000",
            ]
        )
        rows = dict((a, (o, b)) for a, o, b in rows_of(source))
        assert rows[5] == ("R", 40000)

    def test_time_travel_never_sees_half_a_batch(self, source, manager):
        before = source.table_epoch("Accounts")
        manager.atomic(
            [
                "UPDATE Accounts SET balance = 1 WHERE aid = 1",
                "UPDATE Accounts SET balance = 2 WHERE aid = 2",
            ]
        )
        select_all = parse_sql("SELECT * FROM Accounts")
        old = {r["aid"]: r["balance"] for r in source.select_asof(select_all, before)}
        new = {r["aid"]: r["balance"] for r in source.select_asof(select_all, before + 1)}
        assert (old[1], old[2]) == (1001, 1002)
        assert (new[1], new[2]) == (1, 2)


class TestGroupCommit:
    def test_concurrent_writers_share_groups(self, source, manager):
        workers, per_worker = 6, 5
        errors = []

        def writer(w):
            try:
                for i in range(per_worker):
                    aid = 1000 + w * per_worker + i
                    manager.execute(
                        f"INSERT INTO Accounts (aid, owner, score, balance) "
                        f"VALUES ({aid}, 'W', 1, {aid})"
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = manager.stats()
        assert stats["committed"] == workers * per_worker
        assert stats["group_commit"]["txns_flushed"] == workers * per_worker
        assert len(rows_of(source)) == 20 + workers * per_worker

    def test_engine_relays_flush_failure_to_followers(self):
        calls = []

        def flush(batch):
            calls.append(list(batch))
            raise RuntimeError("boom")

        engine = GroupCommitEngine(flush)
        with pytest.raises(RuntimeError):
            engine.submit(1)
        assert calls == [[1]]

    def test_engine_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            GroupCommitEngine(lambda batch: None, max_group=0)

    def test_apply_batch_coalesces_rounds(self, source, manager):
        network = source.cluster.network
        statements = [
            parse_sql(
                f"INSERT INTO Accounts (aid, owner, score, balance) "
                f"VALUES ({500 + i}, 'B', 1, {i})"
            )
            for i in range(8)
        ]
        network.reset()
        manager.apply_batch(statements)
        batched = network.total_messages
        # one prepare + one commit round for the whole wave, per provider,
        # far below 8 separate prepare/commit pairs
        assert batched <= 4 * source.cluster.n_providers


class TestGuards:
    def test_audited_source_is_rejected(self, tmp_path):
        from repro.trust.auditing import AuditRegistry

        src = DataSource(
            ProviderCluster(3, 2), seed=1, audit=AuditRegistry(3)
        )
        src.create_table(accounts_schema())
        with pytest.raises(TxnError):
            TransactionManager(src, str(tmp_path / "w.wal"))

    def test_join_select_is_not_transactional(self, source, manager):
        from repro.sqlengine.query import JoinSelect

        source.create_table(
            TableSchema(
                "Branches",
                (integer_column("bid", 0, 1_000_000),),
                primary_key="bid",
            )
        )
        with pytest.raises(TxnError):
            manager.execute(
                JoinSelect(
                    left_table="Accounts",
                    right_table="Branches",
                    left_column="aid",
                    right_column="bid",
                )
            )

    def test_discard_pending_aborts(self, source, manager):
        manager.execute(
            "UPDATE Accounts SET balance = 1 WHERE aid = 1", autocommit=False
        )
        assert manager.discard_pending() == 1
        assert manager.stats()["pending"] == 0
        # the write never reached the providers
        rows = dict((a, b) for a, _o, b in rows_of(source))
        assert rows[1] == 1001


class TestService:
    def test_run_write_wave_is_write_only(self, source):
        with QueryService(source, max_in_flight=4) as service:
            with pytest.raises(ServiceError):
                service.run_write_wave(["SELECT * FROM Accounts"])

    def test_run_write_wave_applies_and_reports(self, source):
        with QueryService(source, max_in_flight=4) as service:
            results = service.run_write_wave(
                [
                    "INSERT INTO Accounts (aid, owner, score, balance) "
                    "VALUES (900, 'S', 1, 3)",
                    "UPDATE Accounts SET balance = 4 WHERE aid = 900",
                ]
            )
            assert results[1] == 1
            # the wave is two transactions committed as one group
            assert service.report()["txn"]["committed"] == 2
        rows = dict((a, b) for a, _o, b in rows_of(source))
        assert rows[900] == 4

    def test_transactional_service_routes_session_writes(self, source):
        with QueryService(source, max_in_flight=4, transactional=True) as service:
            session = service.open_session("t")
            session.execute(
                "INSERT INTO Accounts (aid, owner, score, balance) VALUES (901, 'T', 1, 5)"
            )
            assert session.execute(
                "UPDATE Accounts SET balance = balance + 5 WHERE aid = 901"
            ) == 1
            rows = session.execute("SELECT * FROM Accounts WHERE aid = 901")
            assert rows[0]["balance"] == 10
            report = service.report()
            assert report["txn"]["logged"] == 2
            service.close_session(session)
