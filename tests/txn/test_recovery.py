"""Crash recovery: kill-at-every-phase exactness, idempotence, snapshots."""

import pytest

from repro.client.datasource import DataSource
from repro.errors import SimulatedCrash
from repro.providers.cluster import ProviderCluster
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.sqlengine.schema import TableSchema, integer_column
from repro.sqlengine.sqlparser import parse_sql
from repro.sqlengine.table import Table
from repro.txn import KILL_PHASES, ShardedTransactionManager, TransactionManager

ROWS = 14


def accounts_schema():
    return TableSchema(
        "Accounts",
        (
            integer_column("aid", 0, 1_000_000),
            integer_column("balance", 0, 1_000_000_000, searchable=False),
        ),
        primary_key="aid",
    )


def build_oracle():
    catalog = Catalog()
    table = Table(accounts_schema())
    for i in range(ROWS):
        table.insert({"aid": i, "balance": 1000 + i})
    catalog.add_table(table)
    return catalog, PlaintextExecutor(catalog)


def oracle_rows(catalog):
    return sorted(
        (row["aid"], row["balance"])
        for row in catalog.table("Accounts").rows()
    )


def live_rows(reader):
    return sorted(
        (row["aid"], row["balance"])
        for row in reader.select(parse_sql("SELECT * FROM Accounts"))
    )


def make_unsharded(wal_path):
    reader = DataSource(ProviderCluster(3, 2), seed=11)
    reader.create_table(accounts_schema())
    return reader, TransactionManager(reader, wal_path)


def make_sharded(wal_path):
    from repro.service.sharding import ShardRouter

    router = ShardRouter.build(
        n_groups=2, providers_per_group=3, threshold=2, seed=11
    )
    router.create_table(accounts_schema())
    return router, ShardedTransactionManager(router, wal_path)


SCRIPT = [
    f"UPDATE Accounts SET balance = balance + 250 WHERE aid < {ROWS // 2}",
    "UPDATE Accounts SET balance = 777 WHERE aid = 1",
    f"DELETE FROM Accounts WHERE aid = {ROWS - 1}",
]
VICTIM = f"UPDATE Accounts SET balance = balance + 9999 WHERE aid < {ROWS}"


def drill(make, wal_path, phase):
    """Run the script, crash at ``phase`` on the victim, recover, compare."""
    reader, manager = make(wal_path)
    catalog, oracle = build_oracle()
    for i in range(ROWS):
        manager.execute(
            f"INSERT INTO Accounts (aid, balance) VALUES ({i}, {1000 + i})"
        )
    for text in SCRIPT:
        manager.execute(text)
        oracle.execute(parse_sql(text))
    manager.kill_at = phase
    with pytest.raises(SimulatedCrash):
        manager.execute(VICTIM)
    # the durability contract: committed iff the WAL record was written
    if phase != "pre-log":
        oracle.execute(parse_sql(VICTIM))
    manager.close()
    recovering = (
        ShardedTransactionManager(reader, wal_path)
        if isinstance(manager, ShardedTransactionManager)
        else TransactionManager(reader, wal_path)
    )
    report = recovering.recover()
    return reader, recovering, catalog, report


@pytest.mark.parametrize("phase", KILL_PHASES)
def test_unsharded_recovery_is_exact(tmp_path, phase):
    wal = str(tmp_path / "u.wal")
    reader, recovering, catalog, report = drill(make_unsharded, wal, phase)
    assert live_rows(reader) == oracle_rows(catalog)
    expected_replay = 0 if phase in ("pre-log", "post-ack") else 1
    assert report["replayed"] == expected_replay
    recovering.close()


@pytest.mark.parametrize("phase", KILL_PHASES)
def test_sharded_recovery_is_exact(tmp_path, phase):
    wal = str(tmp_path / "s.wal")
    reader, recovering, catalog, report = drill(make_sharded, wal, phase)
    assert live_rows(reader) == oracle_rows(catalog)
    recovering.close()


def test_recovery_is_idempotent(tmp_path):
    """Recovering twice (crash during recovery) must not double-apply.

    The victim is a delta increment — the op where double-apply would
    actually corrupt values instead of being absorbed.
    """
    wal = str(tmp_path / "i.wal")
    reader, recovering, catalog, _ = drill(make_unsharded, wal, "mid-round")
    state_after_first = live_rows(reader)
    recovering.close()
    second = TransactionManager(reader, wal)
    report = second.recover()
    assert report["replayed"] == 0
    assert live_rows(reader) == state_after_first == oracle_rows(catalog)
    second.close()


def test_recovery_checkpoints_the_log(tmp_path):
    wal = str(tmp_path / "c.wal")
    reader, recovering, catalog, _ = drill(make_unsharded, wal, "pre-ack")
    # after recovery every txn is acked; the log must have been compacted
    # to just the checkpoint high-water record
    from repro.txn.wal import WriteAheadLog

    recovering.close()
    records = WriteAheadLog.read_records(wal)
    assert all(r["kind"] != "txn" for r in records)
    ckpts = [r for r in records if r["kind"] == "ckpt"]
    assert ckpts and ckpts[-1]["next_id"] >= ROWS + len(SCRIPT) + 1


def test_txn_ids_never_recycle_after_recovery(tmp_path):
    """A recycled txn id would be skipped by providers' applied sets."""
    wal = str(tmp_path / "r.wal")
    reader, recovering, catalog, _ = drill(make_unsharded, wal, "post-log")
    first_round_high = recovering._next_txn_id
    assert first_round_high >= ROWS + len(SCRIPT) + 2
    recovering.execute("UPDATE Accounts SET balance = 1 WHERE aid = 2")
    assert recovering._next_txn_id > first_round_high
    recovering.close()


def test_persistence_roundtrip_preserves_txn_state(tmp_path):
    """Snapshot + restore keeps epochs, history, and applied-txn sets."""
    from repro.persistence import load_deployment, save_deployment

    wal = str(tmp_path / "p.wal")
    reader, manager = make_unsharded(wal)
    for i in range(ROWS):
        manager.execute(
            f"INSERT INTO Accounts (aid, balance) VALUES ({i}, {1000 + i})"
        )
    for text in SCRIPT:
        manager.execute(text)
    epoch = reader.table_epoch("Accounts")
    state = live_rows(reader)
    manager.close()
    directory = str(tmp_path / "snap")
    save_deployment(reader, directory)
    restored = load_deployment(directory)
    assert restored.table_epoch("Accounts") == epoch
    assert live_rows(restored) == state
    # time travel works across the snapshot boundary
    past = restored.select_asof(parse_sql("SELECT * FROM Accounts"), epoch - 1)
    live = restored.select_asof(parse_sql("SELECT * FROM Accounts"), epoch)
    assert sorted((r["aid"], r["balance"]) for r in live) == state
    assert past != live
    # and the provider-side exactly-once sets survived
    provider = restored.cluster.providers[0]
    assert len(provider.store.applied_txns) == ROWS + len(SCRIPT)
