"""Property-based tests for Shamir sharing invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.field import DEFAULT_FIELD
from repro.core.secrets import generate_client_secrets
from repro.core.shamir import ShamirScheme
from repro.sim.rng import DeterministicRNG

SECRETS_5 = generate_client_secrets(5, seed=100)

secret_values = st.integers(min_value=0, max_value=DEFAULT_FIELD.modulus - 1)
thresholds = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(secret=secret_values, threshold=thresholds, seed=seeds)
@settings(max_examples=150, deadline=None)
def test_split_reconstruct_roundtrip(secret, threshold, seed):
    """Any (n=5, k) split reconstructs exactly from any k shares."""
    scheme = ShamirScheme(SECRETS_5, threshold)
    shares = scheme.split(secret, DeterministicRNG(seed, "prop"))
    subset = dict(list(enumerate(shares))[:threshold])
    assert scheme.reconstruct(subset) == secret


@given(secret=secret_values, seed=seeds, drop=st.integers(0, 4))
@settings(max_examples=100, deadline=None)
def test_reconstruct_from_any_quorum(secret, seed, drop):
    """Dropping any single provider never changes the reconstruction."""
    scheme = ShamirScheme(SECRETS_5, 3)
    shares = dict(enumerate(scheme.split(secret, DeterministicRNG(seed, "p"))))
    del shares[drop]
    assert scheme.reconstruct(shares) == secret


@given(
    a=st.integers(min_value=0, max_value=10**12),
    b=st.integers(min_value=0, max_value=10**12),
    seed=seeds,
)
@settings(max_examples=100, deadline=None)
def test_linearity(a, b, seed):
    """share(a) + share(b) reconstructs to a + b (mod p)."""
    scheme = ShamirScheme(SECRETS_5, 3)
    rng = DeterministicRNG(seed, "lin")
    shares_a = scheme.split(a, rng)
    shares_b = scheme.split(b, rng)
    summed = scheme.add_share_vectors(shares_a, shares_b)
    assert scheme.reconstruct(dict(enumerate(summed))) == (a + b) % DEFAULT_FIELD.modulus


@given(
    values=st.lists(
        st.integers(min_value=-(10**9), max_value=10**9), min_size=1, max_size=20
    ),
    seed=seeds,
)
@settings(max_examples=75, deadline=None)
def test_signed_partial_sums(values, seed):
    """Provider-side partial sums reconstruct signed totals exactly."""
    scheme = ShamirScheme(SECRETS_5, 3)
    rng = DeterministicRNG(seed, "sum")
    partials = {i: 0 for i in range(5)}
    for value in values:
        shares = scheme.split(scheme.field.encode_signed(value), rng)
        for i in range(5):
            partials[i] += shares[i]
    reduced = {i: s % DEFAULT_FIELD.modulus for i, s in partials.items()}
    assert scheme.combine_partial_sums_signed(reduced) == sum(values)


@given(secret=secret_values, seed=seeds)
@settings(max_examples=75, deadline=None)
def test_scaling(secret, seed):
    """Public-constant scaling commutes with reconstruction."""
    scheme = ShamirScheme(SECRETS_5, 2)
    shares = scheme.split(secret, DeterministicRNG(seed, "s"))
    scaled = scheme.scale_share_vector(shares, 7)
    assert scheme.reconstruct(dict(enumerate(scaled))) == (7 * secret) % DEFAULT_FIELD.modulus
