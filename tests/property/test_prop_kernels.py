"""Property tests: batched kernels are bit-identical to the naive paths.

The kernel layer (:mod:`repro.core.kernels`) replaces per-value polynomial
construction and per-cell Lagrange interpolation with cached power tables
and cached basis weights.  These tests pin the contract that made the swap
safe: for random ``(n, k)`` shapes and random data, the batched paths
produce *exactly* the bytes the naive reference paths produce — including
over-determined reconstruction where more than ``k`` shares are supplied.
"""

from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.field import DEFAULT_FIELD
from repro.core.polynomial import lagrange_constant_term, random_field_polynomial
from repro.core.secrets import generate_client_secrets
from repro.core.shamir import ShamirScheme
from repro.sim.rng import DeterministicRNG

seeds = st.integers(min_value=0, max_value=2**32 - 1)
shapes = st.tuples(
    st.integers(min_value=1, max_value=7),  # n
    st.integers(min_value=1, max_value=7),  # k (clamped to n below)
)
value_lists = st.lists(
    st.integers(min_value=0, max_value=DEFAULT_FIELD.modulus - 1),
    min_size=1,
    max_size=25,
)


def _scheme(n: int, k: int, seed: int) -> ShamirScheme:
    return ShamirScheme(generate_client_secrets(n, seed=seed), min(k, n))


def _naive_split(scheme, values, rng):
    """Pre-kernel reference: fresh polynomial + Horner per value."""
    return [
        random_field_polynomial(
            scheme.field, v, scheme.threshold - 1, rng
        ).evaluate_many(scheme.secrets.evaluation_points)
        for v in values
    ]


def _naive_reconstruct(scheme, shares):
    """Pre-kernel reference: Lagrange basis rebuilt for this one cell."""
    chosen = sorted(shares.items())[: scheme.threshold]
    points = [(scheme.secrets.point_for(i), y) for i, y in chosen]
    return lagrange_constant_term(scheme.field, points)


@given(shape=shapes, values=value_lists, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_split_batch_matches_naive(shape, values, seed):
    """Kernel split_batch emits the byte-identical shares, same RNG stream."""
    n, k = shape
    scheme = _scheme(n, k, seed % 1000)
    naive = _naive_split(scheme, values, DeterministicRNG(seed, "ker"))
    batched = scheme.split_batch(values, DeterministicRNG(seed, "ker"))
    assert batched == naive


@given(shape=shapes, values=value_lists, seed=seeds)
@settings(max_examples=100, deadline=None)
def test_batch_reconstruct_matches_naive(shape, values, seed):
    """Batched reconstruction equals per-cell naive interpolation exactly."""
    n, k = shape
    scheme = _scheme(n, k, seed % 1000)
    share_rows = scheme.split_batch(values, DeterministicRNG(seed, "r"))
    cells = [
        {i: row[i] for i in range(scheme.threshold)} for row in share_rows
    ]
    naive = [_naive_reconstruct(scheme, c) for c in cells]
    assert scheme.reconstruct_batch(cells) == naive == values


@given(shape=shapes, values=value_lists, seed=seeds, extra=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_overdetermined_reconstruction(shape, values, seed, extra):
    """Supplying more than k shares changes nothing: both paths pick the
    same lowest-index quorum and agree with the secrets."""
    n, k = shape
    scheme = _scheme(n, k, seed % 1000)
    width = min(scheme.threshold + extra, n)
    share_rows = scheme.split_batch(values, DeterministicRNG(seed, "o"))
    cells = [{i: row[i] for i in range(width)} for row in share_rows]
    naive = [_naive_reconstruct(scheme, c) for c in cells]
    assert scheme.reconstruct_batch(cells) == naive == values
    for cell, value in zip(cells, values):
        assert scheme.reconstruct(cell) == value


@given(values=value_lists, seed=seeds)
@settings(max_examples=50, deadline=None)
def test_mixed_quorum_shapes_in_one_batch(values, seed):
    """A single batch may mix quorum subsets (different providers answered
    different rows); grouping by evaluation-point tuple must not reorder
    or cross-contaminate results."""
    scheme = _scheme(5, 3, seed % 1000)
    share_rows = scheme.split_batch(values, DeterministicRNG(seed, "m"))
    quorums = ((0, 1, 2), (1, 3, 4), (0, 2, 4))
    cells = [
        {i: row[i] for i in quorums[idx % len(quorums)]}
        for idx, row in enumerate(share_rows)
    ]
    assert scheme.reconstruct_batch(cells) == values


def test_weight_cache_hit_across_batch():
    """One weight-table build serves every subsequent cell of a batch."""
    scheme = _scheme(5, 3, 7)
    values = list(range(50))
    share_rows = scheme.split_batch(values, DeterministicRNG(7, "c"))
    cells = [{i: row[i] for i in range(3)} for row in share_rows]
    kernels.clear_kernel_caches()
    assert scheme.reconstruct_batch(cells) == values
    stats = kernels.kernel_stats()
    assert stats.weight_misses == 1
    # per-cell path reuses the same cached weights
    for cell, value in zip(cells, values):
        assert scheme.reconstruct(cell) == value
    assert kernels.kernel_stats().weight_misses == 1
    assert kernels.kernel_stats().weight_hits >= len(cells)
