"""Property-based tests for the order-preserving construction."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.order_preserving import IntegerDomain, OrderPreservingScheme
from repro.core.secrets import generate_client_secrets

SECRETS = generate_client_secrets(5, seed=200)
DOMAIN = IntegerDomain(-100_000, 100_000)
SCHEME = OrderPreservingScheme(SECRETS, DOMAIN, threshold=4, label="prop")

domain_values = st.integers(min_value=DOMAIN.lo, max_value=DOMAIN.hi)
providers = st.integers(min_value=0, max_value=4)


@given(a=domain_values, b=domain_values, provider=providers)
@settings(max_examples=200, deadline=None)
def test_order_preserved(a, b, provider):
    """The defining invariant: value order equals share order, strictly."""
    share_a = SCHEME.share(a, provider)
    share_b = SCHEME.share(b, provider)
    if a < b:
        assert share_a < share_b
    elif a > b:
        assert share_a > share_b
    else:
        assert share_a == share_b


@given(value=domain_values)
@settings(max_examples=150, deadline=None)
def test_roundtrip_any_quorum(value):
    """Reconstruction from any k=4 of 5 providers returns the value."""
    import itertools

    shares = SCHEME.split(value)
    for combo in itertools.combinations(range(5), 4):
        assert SCHEME.reconstruct({i: shares[i] for i in combo}) == value


@given(value=domain_values, provider=providers, offset=st.integers(1, 10**9))
@settings(max_examples=100, deadline=None)
def test_tampering_never_silently_accepted(value, provider, offset):
    """Perturbing one share must not reconstruct to a wrong in-domain value
    without detection — interpolation either raises or is correct."""
    from repro.errors import ReconstructionError

    shares = dict(enumerate(SCHEME.split(value)))
    shares[provider] += offset
    try:
        result = SCHEME.reconstruct(shares)
    except ReconstructionError:
        return  # detected — good
    # undetected only if the perturbed polynomial still hits an integer in
    # domain; it must at least differ from a silent wrong answer elsewhere
    assert isinstance(result, int)
    assert DOMAIN.contains(result)


@given(
    low=domain_values, high=domain_values, probe=domain_values, provider=providers
)
@settings(max_examples=150, deadline=None)
def test_range_rewriting_exact(low, high, probe, provider):
    """share_range brackets exactly the values inside the range."""
    assume(low <= high)
    lo_share, hi_share = SCHEME.share_range(low, high, provider)
    probe_share = SCHEME.share(probe, provider)
    inside = low <= probe <= high
    assert (lo_share <= probe_share <= hi_share) == inside


@given(values=st.lists(domain_values, min_size=1, max_size=15))
@settings(max_examples=75, deadline=None)
def test_partial_sum_linearity(values):
    """Summed OP shares interpolate to the exact plaintext sum."""
    from repro.core.polynomial import interpolate_integer_constant

    partials = {i: 0 for i in range(5)}
    for value in values:
        shares = SCHEME.split(value)
        for i in range(5):
            partials[i] += shares[i]
    chosen = sorted(partials.items())[:4]
    points = [(SECRETS.point_for(i), s) for i, s in chosen]
    assert interpolate_integer_constant(points) == sum(values)
