"""Property-based tests for the sharding layer.

Three families of invariants:

* **Partition assignment is total and disjoint** — every row id / key
  maps to exactly one group, range tiles cover the domain gap-free, and
  a rebalance plan lands every bucket on an active group, balanced
  within one, without shuffling buckets between under-target groups.
* **Merged partials equal whole-set aggregates** — for any partition of
  a value list into shards, the merge helpers reproduce the unsharded
  COUNT/SUM/MIN/MAX/AVG exactly (AVG bit-identically: same numerator,
  same denominator, one division).
* **Mid-migration reads are exact** — at every unlocked checkpoint of
  an online split, COUNT and SUM equal the oracle: no half-moved row is
  ever observable.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.service.sharding import (
    HashShardMap,
    RangeShardMap,
    merge_avg,
    merge_counts,
    merge_extremum,
    merge_sums,
    rebalance_plan,
)
from repro.sqlengine.query import AggregateFunc

from tests.sharding.shardutil import build_router, sorted_eids

# ------------------------------------------------------------- strategies --

bucket_lists = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=64
)
row_ids = st.integers(min_value=0, max_value=10**9)


@st.composite
def range_maps(draw):
    """A valid contiguous tiling of [0, hi) with random boundaries."""
    n_groups = draw(st.integers(min_value=1, max_value=5))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=9999),
            min_size=0,
            max_size=6,
            unique=True,
        )
    )
    edges = [0] + sorted(cuts) + [10000]
    ranges = [
        (edges[i], edges[i + 1], draw(st.integers(0, n_groups - 1)))
        for i in range(len(edges) - 1)
    ]
    return RangeShardMap("k", ranges)


@st.composite
def value_partitions(draw):
    """A value list (with NULLs) split into disjoint covering shards."""
    values = draw(
        st.lists(
            st.one_of(
                st.none(), st.integers(min_value=-(10**9), max_value=10**9)
            ),
            max_size=40,
        )
    )
    n_shards = draw(st.integers(min_value=1, max_value=5))
    assignment = [
        draw(st.integers(0, n_shards - 1)) for _ in range(len(values))
    ]
    shards = [
        [v for v, a in zip(values, assignment) if a == s]
        for s in range(n_shards)
    ]
    return values, shards


# -------------------------------------------------- assignment invariants --


@given(buckets=bucket_lists, rid=row_ids)
@settings(max_examples=200, deadline=None)
def test_hash_assignment_total_and_disjoint(buckets, rid):
    shard_map = HashShardMap(buckets)
    owner = shard_map.group_for_row_id(rid)
    owning = [g for g in set(buckets) if rid % len(buckets) in
              set(shard_map.buckets_of(g))]
    assert owning == [owner]
    # buckets_of partitions the ring
    seen = []
    for g in set(buckets):
        seen.extend(shard_map.buckets_of(g))
    assert sorted(seen) == list(range(len(buckets)))


@given(shard_map=range_maps(), key=st.integers(min_value=0, max_value=9999))
@settings(max_examples=200, deadline=None)
def test_range_assignment_total_and_disjoint(shard_map, key):
    owner = shard_map.group_for_key(key)
    holders = [
        g for lo, hi, g in shard_map.ranges if lo <= key < hi
    ]
    assert holders == [owner]
    # tiles cover the domain gap-free and edge-to-edge
    edges = sorted((lo, hi) for lo, hi, _ in shard_map.ranges)
    assert edges[0][0] == shard_map.lo
    for (_, hi_prev), (lo_next, _) in zip(edges, edges[1:]):
        assert hi_prev == lo_next


@given(
    shard_map=range_maps(),
    low=st.integers(min_value=0, max_value=9999),
    span=st.integers(min_value=0, max_value=3000),
)
@settings(max_examples=150, deadline=None)
def test_range_interval_pruning_never_drops_an_owner(shard_map, low, span):
    """groups_for_interval is exactly the owners of the interval's keys."""
    high = min(low + span, 9999)
    pruned = set(shard_map.groups_for_interval(low, high))
    brute = {
        shard_map.group_for_key(k)
        for k in {low, high, (low + high) // 2}
        | {lo for lo, _, _ in shard_map.ranges if low <= lo <= high}
    }
    assert brute <= pruned
    # and never includes a group owning no overlapping tile
    for g in pruned:
        assert any(
            lo <= high and low < hi
            for lo, hi, owner in shard_map.ranges
            if owner == g
        )


@given(
    buckets=bucket_lists,
    active=st.sets(st.integers(min_value=0, max_value=5), min_size=1, max_size=6),
)
@settings(max_examples=200, deadline=None)
def test_rebalance_plan_balances_onto_active_groups(buckets, active):
    plan = rebalance_plan(buckets, sorted(active))
    final = list(buckets)
    moved = set()
    for (src, dst), bs in plan.items():
        assert dst in active
        for b in bs:
            assert final[b] == src, "plan moves a bucket its src doesn't own"
            assert b not in moved, "plan moves one bucket twice"
            moved.add(b)
            final[b] = dst
    assert all(owner in active for owner in final)
    counts = [final.count(g) for g in sorted(active)]
    assert max(counts) - min(counts) <= 1
    # minimality: an already-active owner keeps everything below target
    base = len(buckets) // len(active)
    for (src, _), bs in plan.items():
        if src in active:
            assert list(buckets).count(src) - len(bs) >= base - 1


@given(buckets=bucket_lists)
@settings(max_examples=50, deadline=None)
def test_rebalance_plan_requires_active_groups(buckets):
    try:
        rebalance_plan(buckets, [])
    except ConfigurationError:
        pass
    else:
        raise AssertionError("empty active set must be rejected")


# ------------------------------------------------------- merge invariants --


@given(partition=value_partitions())
@settings(max_examples=200, deadline=None)
def test_merged_partials_equal_whole_set_aggregates(partition):
    values, shards = partition
    present = [v for v in values if v is not None]

    counts = [len(s) - s.count(None) for s in shards]
    assert merge_counts(counts) == len(present)

    sums = [
        sum(v for v in s if v is not None)
        if any(v is not None for v in s)
        else None
        for s in shards
    ]
    assert merge_sums(sums) == (sum(present) if present else None)

    mins = [
        min((v for v in s if v is not None), default=None) for s in shards
    ]
    maxs = [
        max((v for v in s if v is not None), default=None) for s in shards
    ]
    assert merge_extremum(mins, AggregateFunc.MIN) == (
        min(present) if present else None
    )
    assert merge_extremum(maxs, AggregateFunc.MAX) == (
        max(present) if present else None
    )

    merged_avg = merge_avg(list(zip(sums, counts)))
    if present:
        # bit-identical, not approximately equal
        assert merged_avg == sum(present) / len(present)
    else:
        assert merged_avg is None


@given(
    pairs=st.lists(
        st.tuples(st.none(), st.just(0)), min_size=1, max_size=5
    )
)
@settings(max_examples=20, deadline=None)
def test_merge_avg_of_all_null_shards_is_null(pairs):
    assert merge_avg(pairs) is None


# -------------------------------------------- mid-migration readability --

EIDS = sorted_eids(rows=20)


@given(position=st.integers(min_value=1, max_value=len(EIDS) - 1))
@settings(max_examples=6, deadline=None)
def test_mid_migration_reads_never_observe_half_moved_rows(position):
    """Split at an arbitrary existing key: COUNT and SUM stay exact at
    every unlocked checkpoint, so no reader can see a row both (or
    neither) side of the move."""
    at_value = EIDS[position]
    with build_router("range", rows=20) as router:
        count = router.sql("SELECT COUNT(*) FROM Employees")
        total = router.sql("SELECT SUM(salary) FROM Employees")

        def probe(phase):
            if phase == "cutover":  # write lock held
                return
            assert router.sql("SELECT COUNT(*) FROM Employees") == count
            assert router.sql("SELECT SUM(salary) FROM Employees") == total

        try:
            router.split_shard("Employees", at_value, checkpoint=probe)
        except ConfigurationError:
            # at_value was the lower bound of its range tile — a no-op
            # split is rejected, nothing to observe
            return
        assert router.sql("SELECT COUNT(*) FROM Employees") == count
        assert router.sql("SELECT SUM(salary) FROM Employees") == total
