"""Property test: the outsourced engine equals the plaintext oracle on
hypothesis-generated tables and predicates.

Slower than the other property suites (each example builds a cluster), so
example counts are modest; the fixed-seed randomized sweep in
tests/integration covers volume.
"""

from hypothesis import given, settings, strategies as st

from repro import DataSource, ProviderCluster, Select, Table, TableSchema
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, rows_equal_unordered
from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    Or,
)
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.sqlengine.schema import integer_column, string_column

SCHEMA = TableSchema(
    "T",
    (
        integer_column("k", 0, 100),
        string_column("s", 4),
        integer_column("v", -1000, 1000, nullable=True),
    ),
)

row_strategy = st.fixed_dictionaries(
    {
        "k": st.integers(min_value=0, max_value=100),
        "s": st.text(alphabet="ABC", min_size=0, max_size=4),
        "v": st.one_of(
            st.none(), st.integers(min_value=-1000, max_value=1000)
        ),
    }
)

tables = st.lists(row_strategy, min_size=0, max_size=15)

leaf = st.one_of(
    st.builds(
        Comparison,
        column=st.just("k"),
        op=st.sampled_from(list(ComparisonOp)),
        value=st.integers(min_value=-10, max_value=110),
    ),
    st.builds(
        Between,
        column=st.just("k"),
        low=st.integers(min_value=-10, max_value=110),
        high=st.integers(min_value=-10, max_value=110),
    ),
    st.builds(
        Comparison,
        column=st.just("s"),
        op=st.sampled_from([ComparisonOp.EQ, ComparisonOp.NE]),
        value=st.text(alphabet="ABC", min_size=0, max_size=4),
    ),
    st.builds(
        Comparison,
        column=st.just("v"),
        op=st.sampled_from(list(ComparisonOp)),
        value=st.integers(min_value=-1000, max_value=1000),
    ),
)

predicates = st.one_of(
    leaf,
    st.builds(And, parts=st.tuples(leaf, leaf)),
    st.builds(Or, parts=st.tuples(leaf, leaf)),
)


def _engines(rows):
    catalog = Catalog()
    catalog.add_table(Table(SCHEMA, rows))
    oracle = PlaintextExecutor(catalog)
    source = DataSource(ProviderCluster(3, 2), seed=101)
    source.outsource_table(Table(SCHEMA, rows))
    return oracle, source


@given(rows=tables, predicate=predicates)
@settings(max_examples=40, deadline=None)
def test_select_equivalence(rows, predicate):
    oracle, source = _engines(rows)
    query = Select("T", where=predicate)
    assert rows_equal_unordered(source.select(query), oracle.execute(query))


@given(
    rows=tables,
    predicate=predicates,
    func=st.sampled_from(list(AggregateFunc)),
)
@settings(max_examples=40, deadline=None)
def test_aggregate_equivalence(rows, predicate, func):
    oracle, source = _engines(rows)
    column = None if func is AggregateFunc.COUNT else "v"
    query = Select("T", where=predicate, aggregate=Aggregate(func, column))
    mine = source.select(query)
    truth = oracle.execute(query)
    if isinstance(truth, float):
        assert abs(mine - truth) < 1e-9
    else:
        assert mine == truth


@given(rows=tables, predicate=predicates)
@settings(max_examples=25, deadline=None)
def test_grouped_equivalence(rows, predicate):
    oracle, source = _engines(rows)
    query = Select(
        "T",
        where=predicate,
        aggregate=Aggregate(AggregateFunc.COUNT, None),
        group_by="s",
    )
    assert source.select(query) == oracle.execute(query)
