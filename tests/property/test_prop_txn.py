"""Property tests for the transactional write path (ISSUE-8).

Three properties, each against the plaintext oracle:

* a random mix of incremental (delta) and absolute UPDATEs, with reads
  interleaved, leaves the outsourced table bit-identical to the oracle —
  on unsharded and 2-group sharded deployments (the delta path and the
  eager path must be indistinguishable in outcome);
* WAL replay is idempotent: recovering a crashed deployment twice
  produces the same state as recovering once (and the oracle's);
* an ``as_of_epoch`` read at every historical epoch E equals the oracle
  replayed to exactly E statements.

Each example builds a provider cluster, so example counts are modest;
the fixed-seed recovery matrix in tests/txn covers volume.
"""

from hypothesis import given, settings, strategies as st

from repro.client.datasource import DataSource
from repro.errors import SimulatedCrash
from repro.providers.cluster import ProviderCluster
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.sqlengine.schema import TableSchema, integer_column
from repro.sqlengine.sqlparser import parse_sql
from repro.sqlengine.table import Table
from repro.txn import KILL_PHASES, ShardedTransactionManager, TransactionManager

ROWS = 8
START = 100_000


def accounts_schema():
    return TableSchema(
        "Accounts",
        (
            integer_column("aid", 0, 1_000_000),
            integer_column("balance", 0, 1_000_000_000, searchable=False),
        ),
        primary_key="aid",
    )


def build_oracle():
    catalog = Catalog()
    table = Table(accounts_schema())
    for i in range(ROWS):
        table.insert({"aid": i, "balance": START + i})
    catalog.add_table(table)
    return catalog, PlaintextExecutor(catalog)


def oracle_rows(catalog):
    return sorted(
        (row["aid"], row["balance"])
        for row in catalog.table("Accounts").rows()
    )


def live_rows(reader):
    return sorted(
        (row["aid"], row["balance"])
        for row in reader.select(parse_sql("SELECT * FROM Accounts"))
    )


def to_sql(op) -> str:
    kind, amount, lo, hi = op
    where = f"WHERE aid >= {lo} AND aid <= {hi}"
    if kind == "delta":
        sign = "+" if amount >= 0 else "-"
        return (
            f"UPDATE Accounts SET balance = balance {sign} {abs(amount)} "
            + where
        )
    # keep absolute values near START so later negative deltas cannot
    # push a balance below the column's domain floor
    return f"UPDATE Accounts SET balance = {START + abs(amount)} {where}"


bounds = st.tuples(
    st.integers(min_value=0, max_value=ROWS - 1),
    st.integers(min_value=0, max_value=ROWS - 1),
).map(lambda pair: (min(pair), max(pair)))

operations = st.lists(
    st.tuples(
        st.sampled_from(["delta", "set"]),
        st.integers(min_value=-500, max_value=500),
        st.just(0),
        st.just(0),
    ).flatmap(
        lambda op: bounds.map(lambda b: (op[0], op[1], b[0], b[1]))
    ),
    min_size=1,
    max_size=6,
)


def fill(manager):
    for i in range(ROWS):
        manager.execute(
            f"INSERT INTO Accounts (aid, balance) VALUES ({i}, {START + i})"
        )


@settings(max_examples=12, deadline=None)
@given(ops=operations, read_after=st.integers(min_value=0, max_value=5))
def test_delta_path_equals_eager_and_oracle(ops, read_after):
    catalog, oracle = build_oracle()

    txn_source = DataSource(ProviderCluster(3, 2), seed=5)
    txn_source.create_table(accounts_schema())
    manager = TransactionManager(txn_source)
    fill(manager)

    eager_source = DataSource(ProviderCluster(3, 2), seed=5)
    eager_source.create_table(accounts_schema())
    eager_source.insert_many(
        "Accounts",
        [{"aid": i, "balance": START + i} for i in range(ROWS)],
    )

    for position, op in enumerate(ops):
        text = to_sql(op)
        statement = parse_sql(text)
        manager.execute(text)
        eager_source.update(statement)
        oracle.execute(statement)
        if position == read_after:
            # interleaved read through the manager barriers the outbox
            # and must already agree with the oracle mid-sequence
            assert sorted(
                (r["aid"], r["balance"])
                for r in manager.execute("SELECT * FROM Accounts")
            ) == oracle_rows(catalog)
    manager.close()
    expected = oracle_rows(catalog)
    assert live_rows(txn_source) == expected
    assert live_rows(eager_source) == expected


@settings(max_examples=8, deadline=None)
@given(ops=operations)
def test_sharded_delta_sequence_equals_oracle(ops):
    from repro.service.sharding import ShardRouter

    catalog, oracle = build_oracle()
    router = ShardRouter.build(
        n_groups=2, providers_per_group=3, threshold=2, seed=5
    )
    router.create_table(accounts_schema())
    manager = ShardedTransactionManager(router)
    fill(manager)
    for op in ops:
        text = to_sql(op)
        manager.execute(text)
        oracle.execute(parse_sql(text))
    manager.close()
    assert live_rows(router) == oracle_rows(catalog)


@settings(max_examples=10, deadline=None)
@given(ops=operations, phase=st.sampled_from(list(KILL_PHASES)))
def test_wal_replay_is_idempotent(tmp_path_factory, ops, phase):
    wal = str(tmp_path_factory.mktemp("txn") / "prop.wal")
    catalog, oracle = build_oracle()
    source = DataSource(ProviderCluster(3, 2), seed=5)
    source.create_table(accounts_schema())
    manager = TransactionManager(source, wal)
    fill(manager)
    *prefix, victim = ops
    for op in prefix:
        text = to_sql(op)
        manager.execute(text)
        oracle.execute(parse_sql(text))
    manager.kill_at = phase
    crashed = False
    try:
        manager.execute(to_sql(victim))
    except SimulatedCrash:
        crashed = True
    assert crashed
    if phase != "pre-log":
        oracle.execute(parse_sql(to_sql(victim)))
    manager.close()
    once = TransactionManager(source, wal)
    once.recover()
    state_once = live_rows(source)
    once.close()
    twice = TransactionManager(source, wal)
    report = twice.recover()
    twice.close()
    assert report["replayed"] == 0
    assert live_rows(source) == state_once == oracle_rows(catalog)


@settings(max_examples=10, deadline=None)
@given(ops=operations)
def test_time_travel_equals_oracle_at_every_epoch(ops):
    catalog, oracle = build_oracle()
    source = DataSource(ProviderCluster(3, 2), seed=5)
    source.create_table(accounts_schema())
    source.insert_many(
        "Accounts",
        [{"aid": i, "balance": START + i} for i in range(ROWS)],
    )
    manager = TransactionManager(source)
    states = {source.table_epoch("Accounts"): oracle_rows(catalog)}
    for op in ops:
        text = to_sql(op)
        manager.execute(text)
        oracle.execute(parse_sql(text))
        states[source.table_epoch("Accounts")] = oracle_rows(catalog)
    manager.close()
    select_all = parse_sql("SELECT * FROM Accounts")
    for epoch, expected in states.items():
        past = sorted(
            (r["aid"], r["balance"])
            for r in source.select_asof(select_all, epoch)
        )
        assert past == expected, f"as_of_epoch={epoch} diverged"
