"""Property tests: the vectorized provider engine == the scalar oracle.

ISSUE-9 rebuilt the provider execution path (select, scan, aggregates,
grouped aggregates, compact increment deltas) on numpy residue arrays.
The invariant is total: for any table and any request battery, a
provider forced onto the numpy backend must be **bit-identical** to one
forced onto the scalar backend — same responses, same raised errors,
same cost counters, same storage state (rows, history, version, epoch),
same Merkle roots and proofs — including under CRASH/TAMPER/OMIT fault
injection (same provider name ⇒ same fault RNG stream) and across the
``applied_txns`` exactly-once replay path.

Wide shares (beyond uint64) must make the engine *decline*, never
diverge, so a mixed-width table exercises the per-column fallback.

Without numpy the whole module skips — the scalar oracle cannot
diverge from itself; the CI matrix runs the suite both ways.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.field import MERSENNE_61
from repro.errors import ReproError
from repro.providers.failures import FailureMode, Fault
from repro.providers.provider import ShareProvider

pytestmark = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="numpy backend not installed (repro[fast])",
)

COLUMNS = ["k", "g", "v", "w"]
SEARCHABLE = ["k", "g"]
#: shares one bit past uint64 — every mirror for this column must decline
WIDE = 1 << 70

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=50)


def make_rows(rng, n, wide_column=None):
    """n share rows; ``wide_column`` (if set) gets >uint64 shares."""
    rows = []
    for rid in range(n):
        values = {
            "k": rng.randrange(max(n // 3, 1)) * 5
            if rng.random() >= 0.1
            else None,
            "g": rng.randrange(4) * 1_000,
            "v": rng.randrange(MERSENNE_61) if rng.random() >= 0.15 else None,
            "w": rng.randrange(MERSENNE_61),
        }
        if wide_column is not None and values[wide_column] is not None:
            values[wide_column] += WIDE
        rows.append((rid, values))
    return rows


def build_provider(rows, fault=None):
    # identical name on both twins ⇒ identical fault RNG streams
    provider = ShareProvider("P")
    provider.handle(
        "create_table",
        {"table": "T", "columns": COLUMNS, "searchable": SEARCHABLE},
    )
    if rows:
        provider.handle("insert_many", {"table": "T", "rows": rows})
    if fault is not None:
        provider.inject_fault(fault)
    return provider


def request_battery(rng, rows):
    """A deterministic mixed battery derived from the row population."""
    ks = sorted(
        {v["k"] for _, v in rows if v["k"] is not None} or {0, 10}
    )
    mid = ks[len(ks) // 2]
    cond_range = [{"column": "k", "op": "range", "low": ks[0], "high": mid}]
    cond_eq = [{"column": "k", "op": "eq", "low": rng.choice(ks)}]
    cond_pair = [
        {"column": "k", "op": "ge", "low": mid},
        {"column": "g", "op": "le", "low": 2_000},
    ]
    cond_empty = [{"column": "g", "op": "gt", "low": 10_000}]
    battery = [
        ("select", {"table": "T", "conditions": []}),
        ("select", {"table": "T", "conditions": cond_range,
                    "projection": ["v", "w"]}),
        ("select", {"table": "T", "conditions": cond_eq, "order_by": "k"}),
        ("select", {"table": "T", "conditions": cond_pair, "order_by": "g",
                    "descending": True, "limit": 7}),
        ("select", {"table": "T", "conditions": cond_empty}),
        ("select", {"table": "T", "conditions": [], "order_by": "k",
                    "limit": 5}),
        ("scan", {"table": "T", "projection": ["k", "v"]}),
        ("scan", {"table": "T"}),
        ("aggregate", {"table": "T", "func": "count", "column": None,
                       "conditions": []}),
        ("aggregate", {"table": "T", "func": "count", "column": "v",
                       "conditions": cond_range}),
        ("aggregate", {"table": "T", "func": "sum", "column": "v",
                       "conditions": []}),
        ("aggregate", {"table": "T", "func": "sum", "column": "v",
                       "conditions": cond_pair}),
        ("aggregate", {"table": "T", "func": "sum", "column": "w",
                       "conditions": cond_empty}),
        ("aggregate", {"table": "T", "func": "min", "column": "k",
                       "conditions": []}),
        ("aggregate", {"table": "T", "func": "max", "column": "k",
                       "conditions": cond_range}),
        ("aggregate", {"table": "T", "func": "median", "column": "k",
                       "conditions": cond_range}),
        ("aggregate_group", {"table": "T", "group_column": "g",
                             "func": "sum", "column": "v",
                             "conditions": []}),
        ("aggregate_group", {"table": "T", "group_column": "g",
                             "func": "count", "column": None,
                             "conditions": cond_range}),
        ("aggregate_group", {"table": "T", "group_column": "g",
                             "func": "median", "column": "w",
                             "conditions": []}),
        ("merkle_root", {"table": "T"}),
    ]
    if rows:
        sample = [rid for rid, _ in rows][:: max(len(rows) // 7, 1)]
        battery.append(("get_rows", {"table": "T", "row_ids": sample}))
        for rid in sample[:3]:
            battery.append(("merkle_proof", {"table": "T", "row_id": rid}))
    return battery


def run_battery(provider, battery):
    """Execute every request, capturing results and raised errors alike."""
    out = []
    for method, request in battery:
        try:
            out.append(provider.handle(method, dict(request)))
        except ReproError as exc:
            out.append(("err", type(exc).__name__, str(exc)))
    return out


def state_snapshot(provider):
    table = provider.store.table("T")
    return (
        table.rows,
        table.version,
        list(table.history),
        table.epoch,
        set(provider.store.applied_txns),
    )


def twin_run(fn):
    """Run ``fn()`` under forced scalar and forced numpy; return both."""
    results = {}
    for backend in ("scalar", "numpy"):
        previous = kernels.set_kernel_backend(backend)
        try:
            results[backend] = fn()
        finally:
            kernels.set_kernel_backend(previous)
    return results["scalar"], results["numpy"]


@given(seed=seeds, n=sizes)
@settings(max_examples=40, deadline=None)
def test_read_battery_backends_identical(seed, n):
    """Every read RPC: same responses, same cost counters."""
    rows = make_rows(random.Random(seed), n)
    battery = request_battery(random.Random(seed + 1), rows)

    def run():
        provider = build_provider(rows)
        responses = run_battery(provider, battery)
        return responses, provider.cost.snapshot()

    scalar, vector = twin_run(run)
    assert scalar == vector


@given(seed=seeds, n=st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_increment_backends_identical(seed, n):
    """Compact increment deltas: same results/errors, same storage state."""
    rng = random.Random(seed)
    rows = make_rows(rng, n)
    all_ids = [rid for rid, _ in rows]
    batches = [
        # plain batch over payload columns (NULL v cells must stay NULL)
        {"table": "T", "row_ids": all_ids[: max(n // 2, 1)],
         "deltas": {"v": rng.randrange(MERSENNE_61),
                    "w": rng.randrange(MERSENNE_61)},
         "modulus": MERSENNE_61, "epoch": 1},
        # unknown column rides along and is skipped
        {"table": "T", "row_ids": all_ids[:1],
         "deltas": {"w": 3, "zz": 9}, "modulus": MERSENNE_61},
        # missing row id: both engines must raise the same error pre-write
        {"table": "T", "row_ids": [n + 50],
         "deltas": {"w": 1}, "modulus": MERSENNE_61},
        # searchable column: both engines must refuse identically
        {"table": "T", "row_ids": all_ids[:1],
         "deltas": {"k": 2}, "modulus": MERSENNE_61},
        # per-row legacy shape (always scalar; must still match)
        {"table": "T",
         "increments": [[all_ids[-1], {"w": rng.randrange(1_000)}]],
         "modulus": MERSENNE_61},
    ]

    def run():
        provider = build_provider(rows)
        out = []
        for request in batches:
            try:
                out.append(provider.handle("increment_rows", dict(request)))
            except ReproError as exc:
                out.append(("err", str(exc)))
        return out, state_snapshot(provider), provider.cost.snapshot()

    scalar, vector = twin_run(run)
    assert scalar == vector


@given(
    seed=seeds,
    n=sizes,
    mode=st.sampled_from(
        [FailureMode.CRASH, FailureMode.TAMPER, FailureMode.OMIT]
    ),
)
@settings(max_examples=30, deadline=None)
def test_faulty_battery_backends_identical(seed, n, mode):
    """Fault injection operates on per-request copies: with the same
    provider name (⇒ same fault RNG stream), a tampering/omitting/crashed
    provider misbehaves identically on both backends."""
    rows = make_rows(random.Random(seed), n)
    battery = request_battery(random.Random(seed + 1), rows)
    rate = 0.4 if mode is not FailureMode.CRASH else 1.0
    after = 5 if mode is FailureMode.CRASH else 0

    def run():
        provider = build_provider(
            rows,
            fault=Fault(mode, rate=rate, seed=seed, after_requests=after),
        )
        responses = run_battery(provider, battery)
        return responses, state_snapshot(provider)

    scalar, vector = twin_run(run)
    assert scalar == vector


@given(seed=seeds, n=st.integers(min_value=2, max_value=40))
@settings(max_examples=30, deadline=None)
def test_txn_replay_backends_identical(seed, n):
    """The exactly-once replay path: a re-prepared committed transaction
    is skipped, and increments are applied exactly once per backend."""
    rng = random.Random(seed)
    rows = make_rows(rng, n)
    ids = [rid for rid, _ in rows][: max(n // 2, 1)]
    inc = {"table": "T", "row_ids": ids,
           "deltas": {"w": rng.randrange(MERSENNE_61)},
           "modulus": MERSENNE_61, "epoch": 2}
    ops = [["increment_rows", inc]]

    def run():
        provider = build_provider(rows)
        out = [provider.handle("txn_prepare", {"txns": [[7, ops]]})]
        out.append(provider.handle("txn_commit", {"ids": [7]}))
        # WAL replay after a simulated client crash: same txn again
        out.append(provider.handle("txn_prepare", {"txns": [[7, ops]]}))
        out.append(provider.handle("txn_commit", {"ids": [7]}))
        out.append(provider.handle("select", {"table": "T", "conditions": []}))
        return out, state_snapshot(provider)

    scalar, vector = twin_run(run)
    assert scalar == vector


@given(seed=seeds, n=st.integers(min_value=1, max_value=30))
@settings(max_examples=25, deadline=None)
def test_wide_share_fallback_identical(seed, n):
    """Shares past uint64 force the per-column scalar fallback — the
    engines must still agree on everything, including mixed-width
    batteries where only some columns decline."""
    rng = random.Random(seed)
    rows = make_rows(rng, n, wide_column=rng.choice(COLUMNS))
    battery = request_battery(random.Random(seed + 1), rows)

    def run():
        provider = build_provider(rows)
        responses = run_battery(provider, battery)
        return responses, provider.cost.snapshot()

    scalar, vector = twin_run(run)
    assert scalar == vector


@given(seed=seeds, n=st.integers(min_value=1, max_value=30))
@settings(max_examples=25, deadline=None)
def test_merkle_after_increments_identical(seed, n):
    """Roots and proofs over post-increment storage match: the batched
    writeback feeds the same bytes into the Merkle tree."""
    rng = random.Random(seed)
    rows = make_rows(rng, n)
    ids = [rid for rid, _ in rows]
    inc = {"table": "T", "row_ids": ids,
           "deltas": {"v": rng.randrange(MERSENNE_61)},
           "modulus": MERSENNE_61}

    def run():
        provider = build_provider(rows)
        provider.handle("increment_rows", dict(inc))
        root = provider.handle("merkle_root", {"table": "T"})
        proofs = [
            provider.handle("merkle_proof", {"table": "T", "row_id": rid})
            for rid in ids
        ]
        return root, proofs, state_snapshot(provider)

    scalar, vector = twin_run(run)
    assert scalar == vector
