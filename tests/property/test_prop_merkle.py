"""Property-based tests for Merkle trees and OPE monotonicity."""

from hypothesis import given, settings, strategies as st

from repro.baselines.ope import OrderPreservingEncryption
from repro.core.order_preserving import IntegerDomain
from repro.trust.merkle import MerkleTree, leaf_hash, verify_proof

leaf_lists = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40, unique=True
)


@given(values=leaf_lists)
@settings(max_examples=100, deadline=None)
def test_all_proofs_verify(values):
    leaves = [leaf_hash("T", i, {"v": v}) for i, v in enumerate(values)]
    tree = MerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        assert verify_proof(tree.root, leaf, tree.proof(i))


@given(values=leaf_lists, tamper_index=st.integers(min_value=0, max_value=39))
@settings(max_examples=100, deadline=None)
def test_tampered_leaf_never_verifies(values, tamper_index):
    tamper_index %= len(values)
    leaves = [leaf_hash("T", i, {"v": v}) for i, v in enumerate(values)]
    tree = MerkleTree(leaves)
    forged = leaf_hash("T", tamper_index, {"v": values[tamper_index] + 1})
    assert not verify_proof(tree.root, forged, tree.proof(tamper_index))


@given(values=leaf_lists)
@settings(max_examples=50, deadline=None)
def test_root_binds_content(values):
    leaves = [leaf_hash("T", i, {"v": v}) for i, v in enumerate(values)]
    modified = list(leaves)
    modified[0] = leaf_hash("T", 0, {"v": values[0] + 1})
    assert MerkleTree(leaves).root != MerkleTree(modified).root


OPE = OrderPreservingEncryption(b"\x0a" * 32, IntegerDomain(0, 2**20))
ope_values = st.integers(min_value=0, max_value=2**20)


@given(a=ope_values, b=ope_values)
@settings(max_examples=200, deadline=None)
def test_ope_strictly_monotone(a, b):
    ca, cb = OPE.encrypt(a), OPE.encrypt(b)
    if a < b:
        assert ca < cb
    elif a > b:
        assert ca > cb
    else:
        assert ca == cb
