"""Property test: parse_sql(render_sql(query)) == query for random ASTs."""

from decimal import Decimal

from hypothesis import given, settings, strategies as st

from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    IsNull,
    Not,
    Or,
    StartsWith,
    TruePredicate,
)
from repro.sqlengine.query import (
    Aggregate,
    AggregateFunc,
    Delete,
    Insert,
    JoinSelect,
    Select,
    Update,
)
from repro.sqlengine.render import render_predicate, render_sql
from repro.sqlengine.sqlparser import parse_sql

identifiers = st.from_regex(r"[a-zA-Z][a-zA-Z_0-9]{0,8}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "LIKE",
        "IS", "NULL", "TRUE", "FALSE", "JOIN", "ON", "INSERT", "INTO",
        "VALUES", "UPDATE", "SET", "DELETE", "COUNT", "SUM", "AVG", "MIN",
        "MAX", "MEDIAN", "AS", "GROUP", "ORDER", "BY", "ASC", "DESC",
        "LIMIT",
    }
)

safe_strings = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '", min_size=0, max_size=12
)

literals = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    safe_strings,
    st.booleans(),
    st.decimals(
        min_value=Decimal(0), max_value=Decimal("9999.99"), places=2,
        allow_nan=False, allow_infinity=False,
    ),
    st.none(),
)

comparisons = st.builds(
    Comparison,
    column=identifiers,
    op=st.sampled_from(list(ComparisonOp)),
    value=st.one_of(
        st.integers(min_value=-(10**6), max_value=10**6), safe_strings
    ),
)

leaf_predicates = st.one_of(
    comparisons,
    st.builds(
        Between,
        column=identifiers,
        low=st.integers(min_value=-(10**6), max_value=10**6),
        high=st.integers(min_value=-(10**6), max_value=10**6),
    ),
    st.builds(
        StartsWith,
        column=identifiers,
        prefix=st.text(alphabet="ABCXYZ", min_size=1, max_size=4),
    ),
    st.builds(IsNull, column=identifiers, negated=st.booleans()),
)

predicates = st.recursive(
    leaf_predicates,
    lambda children: st.one_of(
        st.builds(Not, part=children),
        st.builds(
            And, parts=st.lists(children, min_size=2, max_size=3).map(tuple)
        ),
        st.builds(
            Or, parts=st.lists(children, min_size=2, max_size=3).map(tuple)
        ),
    ),
    max_leaves=6,
)


@given(predicate=predicates, table=identifiers)
@settings(max_examples=200, deadline=None)
def test_predicate_roundtrip(predicate, table):
    text = f"SELECT * FROM {table} WHERE {render_predicate(predicate)}"
    parsed = parse_sql(text)
    assert parsed.where == predicate


selects = st.builds(
    Select,
    table=identifiers,
    columns=st.one_of(
        st.just(()), st.lists(identifiers, min_size=1, max_size=3).map(tuple)
    ),
    where=st.one_of(st.just(TruePredicate()), leaf_predicates),
    order_by=st.one_of(st.none(), identifiers),
    descending=st.booleans(),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
)

aggregate_selects = st.builds(
    Select,
    table=identifiers,
    where=st.one_of(st.just(TruePredicate()), leaf_predicates),
    aggregate=st.builds(
        Aggregate,
        func=st.sampled_from(
            [f for f in AggregateFunc if f is not AggregateFunc.COUNT]
        ),
        column=identifiers,
    ),
    group_by=st.one_of(st.none(), identifiers),
)


@given(query=selects)
@settings(max_examples=150, deadline=None)
def test_select_roundtrip(query):
    assert parse_sql(render_sql(query)) == query


@given(query=aggregate_selects)
@settings(max_examples=150, deadline=None)
def test_aggregate_select_roundtrip(query):
    assert parse_sql(render_sql(query)) == query


inserts = st.builds(
    Insert,
    table=identifiers,
    row=st.dictionaries(identifiers, literals, min_size=1, max_size=4),
)

updates = st.builds(
    Update,
    table=identifiers,
    assignments=st.dictionaries(identifiers, literals, min_size=1, max_size=3),
    where=st.one_of(st.just(TruePredicate()), leaf_predicates),
)

deletes = st.builds(
    Delete,
    table=identifiers,
    where=st.one_of(st.just(TruePredicate()), leaf_predicates),
)

distinct_tables = st.tuples(identifiers, identifiers).filter(
    lambda pair: pair[0] != pair[1]
)

joins = st.tuples(distinct_tables, identifiers, identifiers).map(
    lambda parts: JoinSelect(
        left_table=parts[0][0],
        right_table=parts[0][1],
        left_column=parts[1],
        right_column=parts[2],
    )
)


@given(query=st.one_of(inserts, updates, deletes))
@settings(max_examples=200, deadline=None)
def test_write_roundtrip(query):
    assert parse_sql(render_sql(query)) == query


@given(query=joins)
@settings(max_examples=100, deadline=None)
def test_join_roundtrip(query):
    assert parse_sql(render_sql(query)) == query
