"""Property tests: the numpy backend is bit-identical to the scalar oracle.

The vectorized kernels (:mod:`repro.core.kernels`) re-implement GF(p)
dot products and Horner evaluation three ways — uint64 limb-splitting
for the Mersenne-61 default field, direct uint64 for small moduli, and
``object``-dtype arrays for wide primes.  None of that is allowed to
change a single byte: for random moduli, degrees, and batch shapes the
forced-numpy and forced-scalar paths must produce identical residues,
including the k+1-share robust-decode path that feeds interpolation
with over-determined quorums.

These tests are meaningful with numpy installed (the CI matrix runs the
suite both ways); without it they skip — the scalar oracle cannot
diverge from itself.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.field import MERSENNE_61, PRIME_89, PRIME_127, PrimeField
from repro.core.secrets import generate_client_secrets
from repro.core.shamir import ShamirScheme
from repro.errors import ReconstructionError
from repro.sim.rng import DeterministicRNG

pytestmark = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="numpy backend not installed (repro[fast])",
)

# a spread of modulus classes: the Mersenne-61 limb-split path, small
# uint64 primes, and wide primes forced onto the object-dtype path
MODULI = (
    MERSENNE_61,
    (1 << 31) - 1,  # largest Mersenne below the small-modulus bound
    65_537,
    97,
    PRIME_89,
    PRIME_127,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
moduli = st.sampled_from(MODULI)
degrees = st.integers(min_value=0, max_value=6)
batch_sizes = st.integers(min_value=1, max_value=40)


def _both_backends(fn):
    """Run ``fn`` under forced scalar and forced numpy; return both."""
    results = {}
    for backend in ("scalar", "numpy"):
        previous = kernels.set_kernel_backend(backend)
        try:
            kernels.clear_kernel_caches()
            results[backend] = fn()
        finally:
            kernels.set_kernel_backend(previous)
    return results["scalar"], results["numpy"]


@given(modulus=moduli, degree=degrees, batch=batch_sizes, seed=seeds)
@settings(max_examples=120, deadline=None)
def test_batch_reconstruct_backends_identical(modulus, degree, batch, seed):
    """Vectorized Lagrange interpolation == scalar, cell for cell."""
    field = PrimeField(modulus)
    k = degree + 1
    rng = DeterministicRNG(seed, "vec")
    xs = rng.distinct_field_elements(min(k, modulus - 1), modulus)
    vectors = [
        [rng.field_element(modulus) for _ in xs] for _ in range(batch)
    ]
    scalar, vector = _both_backends(
        lambda: kernels.batch_reconstruct(field, xs, vectors)
    )
    assert scalar == vector


@given(modulus=moduli, degree=degrees, batch=batch_sizes, seed=seeds)
@settings(max_examples=120, deadline=None)
def test_split_kernel_backends_identical(modulus, degree, batch, seed):
    """Batched Horner evaluation == scalar power-table dot products."""
    width = degree + 1
    rng = DeterministicRNG(seed, "split")
    n_points = min(5, modulus - 1)
    points = rng.distinct_field_elements(n_points, modulus)
    coeff_rows = [
        [rng.field_element(modulus) for _ in range(width)]
        for _ in range(batch)
    ]

    def run():
        kernel = kernels.split_kernel(tuple(points), width, modulus)
        return kernel.evaluate_batch(coeff_rows)

    scalar, vector = _both_backends(run)
    assert scalar == vector


@given(batch=batch_sizes, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_split_then_reconstruct_roundtrip_both_backends(batch, seed):
    """End-to-end scheme round trip is backend-invariant, shares included."""
    scheme = ShamirScheme(generate_client_secrets(5, seed=seed % 997), 3)
    values = [
        DeterministicRNG(seed, "vals").field_element(scheme.field.modulus)
        for _ in range(batch)
    ]

    def run():
        shares = scheme.split_batch(values, DeterministicRNG(seed, "rt"))
        cells = [{i: row[i] for i in range(3)} for row in shares]
        return shares, scheme.reconstruct_batch(cells)

    (scalar_shares, scalar_out), (vector_shares, vector_out) = _both_backends(run)
    assert scalar_shares == vector_shares
    assert scalar_out == vector_out == values


@given(seed=seeds, batch=st.integers(min_value=1, max_value=15))
@settings(max_examples=60, deadline=None)
def test_robust_decode_with_extra_share_backend_invariant(seed, batch):
    """The k+1-share robust-decode path (PR 5) agrees across backends.

    Robust decoding feeds over-determined quorums through k-subset
    interpolation; a corrupted share must be outvoted identically whether
    the surrounding batch arithmetic ran scalar or vectorized.
    """
    scheme = ShamirScheme(generate_client_secrets(5, seed=seed % 997), 3)
    rng = DeterministicRNG(seed, "robust")
    values = [
        rng.field_element(scheme.field.modulus) for _ in range(batch)
    ]

    def robust(cell):
        # with k+1 shares a single tamper may be undecidable (no strict
        # majority among the k-subsets) — the *raise* must then be the
        # identical outcome on both backends
        try:
            return scheme.reconstruct_robust(cell)
        except ReconstructionError as exc:
            return ("raised", str(exc))

    def run():
        shares = scheme.split_batch(values, DeterministicRNG(seed, "rs"))
        out = []
        for row in shares:
            cell = {i: row[i] for i in range(4)}  # k+1 shares
            tampered = dict(cell)
            tampered[1] = (tampered[1] + 17) % scheme.field.modulus
            out.append((robust(cell), robust(tampered)))
        return out

    scalar, vector = _both_backends(run)
    assert scalar == vector
    assert all(clean == value for (clean, _), value in zip(scalar, values))


def test_out_of_range_shares_fall_back_to_scalar_identically():
    """Tampered shares outside [0, p) cannot take the uint64 path; the
    dispatch must fall back and still match the scalar oracle exactly."""
    field = PrimeField(MERSENNE_61)
    xs = [3, 7, 11]
    vectors = [[2**63 + i, -5 * i, i] for i in range(20)]
    scalar, vector = _both_backends(
        lambda: kernels.batch_reconstruct(field, xs, vectors)
    )
    assert scalar == vector


def test_backend_selection_api():
    """Forcing, restoring, and rejecting unknown backends."""
    from repro.errors import ConfigurationError

    assert kernels.active_backend() in kernels.available_backends()
    previous = kernels.set_kernel_backend("scalar")
    try:
        assert kernels.active_backend() == "scalar"
        with pytest.raises(ConfigurationError):
            kernels.set_kernel_backend("cuda")
    finally:
        kernels.set_kernel_backend(previous)
