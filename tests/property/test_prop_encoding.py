"""Property-based tests for codec order preservation and round trips."""

import datetime
from decimal import Decimal

from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    DateCodec,
    DecimalCodec,
    IntegerCodec,
    StringCodec,
)

INT_CODEC = IntegerCodec(-(10**9), 10**9)
STR_CODEC = StringCodec(width=8)
DEC_CODEC = DecimalCodec(Decimal(-10_000), Decimal(10_000), scale=2)
DATE_CODEC = DateCodec()

ints = st.integers(min_value=-(10**9), max_value=10**9)
words = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", min_size=0, max_size=8)
decimals = st.decimals(
    min_value=Decimal(-10_000), max_value=Decimal(10_000), places=2,
    allow_nan=False, allow_infinity=False,
)
dates = st.dates(
    min_value=datetime.date(1900, 1, 1), max_value=datetime.date(2100, 12, 31)
)


@given(v=ints)
@settings(max_examples=200, deadline=None)
def test_integer_roundtrip(v):
    assert INT_CODEC.decode(INT_CODEC.encode(v)) == v


@given(a=ints, b=ints)
@settings(max_examples=200, deadline=None)
def test_integer_order(a, b):
    assert (INT_CODEC.encode(a) < INT_CODEC.encode(b)) == (a < b)


@given(w=words)
@settings(max_examples=200, deadline=None)
def test_string_roundtrip(w):
    assert STR_CODEC.decode(STR_CODEC.encode(w)) == w


@given(a=words, b=words)
@settings(max_examples=200, deadline=None)
def test_string_order_matches_padded_comparison(a, b):
    """Base-27 order equals blank-padded lexicographic order (Sec. V-B)."""
    padded_a, padded_b = a.ljust(8, " "), b.ljust(8, " ")
    # '*' (blank) sorts below 'A', matching space below letters
    expected = padded_a < padded_b
    assert (STR_CODEC.encode(a) < STR_CODEC.encode(b)) == expected


@given(w=words, prefix=st.text(alphabet="ABCXYZ", min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_prefix_range_membership(w, prefix):
    low, high = STR_CODEC.prefix_range(prefix)
    encoded = STR_CODEC.encode(w)
    assert (low <= encoded <= high) == w.startswith(prefix)


@given(d=decimals)
@settings(max_examples=200, deadline=None)
def test_decimal_roundtrip(d):
    assert DEC_CODEC.decode(DEC_CODEC.encode(d)) == d


@given(a=decimals, b=decimals)
@settings(max_examples=150, deadline=None)
def test_decimal_order(a, b):
    assert (DEC_CODEC.encode(a) < DEC_CODEC.encode(b)) == (a < b)


@given(d=dates)
@settings(max_examples=150, deadline=None)
def test_date_roundtrip(d):
    assert DATE_CODEC.decode(DATE_CODEC.encode(d)) == d


@given(a=dates, b=dates)
@settings(max_examples=150, deadline=None)
def test_date_order(a, b):
    assert (DATE_CODEC.encode(a) < DATE_CODEC.encode(b)) == (a < b)
