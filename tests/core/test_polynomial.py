"""Unit tests for field and integer polynomials and interpolation."""

import pytest

from repro.core.field import PrimeField
from repro.core.polynomial import (
    FieldPolynomial,
    IntegerPolynomial,
    interpolate_field_polynomial,
    interpolate_integer_constant,
    interpolate_rational_constant,
    lagrange_constant_term,
    random_field_polynomial,
)
from repro.errors import ReconstructionError, ShareError
from repro.sim.rng import DeterministicRNG

FIELD = PrimeField(101)


class TestFieldPolynomial:
    def test_coefficients_reduced(self):
        poly = FieldPolynomial(FIELD, (105, 203))
        assert poly.coeffs == (4, 1)

    def test_degree(self):
        assert FieldPolynomial(FIELD, (1, 2, 3)).degree == 2
        assert FieldPolynomial(FIELD, (1, 0, 0)).degree == 0
        assert FieldPolynomial(FIELD, (0,)).degree == -1

    def test_constant_term(self):
        assert FieldPolynomial(FIELD, (42, 7)).constant_term == 42

    def test_evaluate_horner(self):
        # 3 + 2x + x^2 at x=5 → 38
        poly = FieldPolynomial(FIELD, (3, 2, 1))
        assert poly.evaluate(5) == 38

    def test_evaluate_wraps(self):
        poly = FieldPolynomial(FIELD, (100, 100))
        assert poly.evaluate(2) == (100 + 200) % 101

    def test_evaluate_many(self):
        poly = FieldPolynomial(FIELD, (1, 1))
        assert poly.evaluate_many([1, 2, 3]) == [2, 3, 4]

    def test_add(self):
        a = FieldPolynomial(FIELD, (1, 2))
        b = FieldPolynomial(FIELD, (3, 4, 5))
        assert a.add(b).coeffs == (4, 6, 5)

    def test_add_different_fields_rejected(self):
        a = FieldPolynomial(FIELD, (1,))
        b = FieldPolynomial(PrimeField(103), (1,))
        with pytest.raises(ShareError):
            a.add(b)

    def test_scale(self):
        poly = FieldPolynomial(FIELD, (2, 3))
        assert poly.scale(10).coeffs == (20, 30)


class TestRandomPolynomial:
    def test_constant_is_secret(self):
        rng = DeterministicRNG(0)
        poly = random_field_polynomial(FIELD, 42, 3, rng)
        assert poly.constant_term == 42
        assert len(poly.coeffs) == 4

    def test_secret_out_of_field_rejected(self):
        rng = DeterministicRNG(0)
        with pytest.raises(Exception):
            random_field_polynomial(FIELD, 101, 2, rng)

    def test_negative_degree_rejected(self):
        with pytest.raises(ShareError):
            random_field_polynomial(FIELD, 1, -1, DeterministicRNG(0))

    def test_degree_zero_is_constant(self):
        poly = random_field_polynomial(FIELD, 9, 0, DeterministicRNG(0))
        assert poly.coeffs == (9,)


class TestLagrange:
    def test_reconstructs_constant_term(self):
        rng = DeterministicRNG(1)
        poly = random_field_polynomial(FIELD, 55, 2, rng)
        points = [(x, poly.evaluate(x)) for x in (3, 7, 11)]
        assert lagrange_constant_term(FIELD, points) == 55

    def test_any_subset_of_points_works(self):
        rng = DeterministicRNG(2)
        poly = random_field_polynomial(FIELD, 17, 2, rng)
        xs = [2, 5, 9, 13, 20]
        points = [(x, poly.evaluate(x)) for x in xs]
        import itertools

        for subset in itertools.combinations(points, 3):
            assert lagrange_constant_term(FIELD, list(subset)) == 17

    def test_empty_points_rejected(self):
        with pytest.raises(ReconstructionError):
            lagrange_constant_term(FIELD, [])

    def test_duplicate_points_rejected(self):
        with pytest.raises(ReconstructionError):
            lagrange_constant_term(FIELD, [(3, 1), (3, 2)])

    def test_zero_point_rejected(self):
        with pytest.raises(ReconstructionError):
            lagrange_constant_term(FIELD, [(0, 5), (1, 6)])

    def test_full_interpolation_matches(self):
        rng = DeterministicRNG(3)
        poly = random_field_polynomial(FIELD, 8, 3, rng)
        points = [(x, poly.evaluate(x)) for x in (1, 2, 3, 4)]
        recovered = interpolate_field_polynomial(FIELD, points)
        assert recovered.coeffs[: len(poly.coeffs)] == poly.coeffs


class TestIntegerPolynomial:
    def test_evaluate(self):
        # 5 + 2x + 3x^2 at x=4 → 5 + 8 + 48 = 61
        poly = IntegerPolynomial((5, 2, 3))
        assert poly.evaluate(4) == 61

    def test_negative_constant(self):
        poly = IntegerPolynomial((-7, 1))
        assert poly.evaluate(3) == -4

    def test_degree_and_constant(self):
        poly = IntegerPolynomial((9, 0, 4))
        assert poly.degree == 2
        assert poly.constant_term == 9

    def test_dominates(self):
        low = IntegerPolynomial((1, 2, 3))
        high = IntegerPolynomial((2, 3, 4))
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_dominates_length_mismatch(self):
        with pytest.raises(ShareError):
            IntegerPolynomial((1,)).dominates(IntegerPolynomial((1, 2)))

    def test_dominance_implies_order_at_positive_points(self):
        # the paper's key observation (Sec. IV)
        low = IntegerPolynomial((10, 100, 7, 3))
        high = IntegerPolynomial((11, 101, 8, 4))
        assert high.dominates(low)
        for x in (1, 2, 5, 100, 10_000):
            assert high.evaluate(x) > low.evaluate(x)


class TestRationalInterpolation:
    def test_exact_integer_constant(self):
        poly = IntegerPolynomial((42, 17, 3, 9))
        points = [(x, poly.evaluate(x)) for x in (2, 4, 1, 7)]
        assert interpolate_integer_constant(points) == 42

    def test_rational_result_detected(self):
        # tamper one share → non-integer constant (overwhelmingly likely)
        poly = IntegerPolynomial((42, 17, 3, 9))
        points = [(x, poly.evaluate(x)) for x in (2, 4, 1, 7)]
        points[0] = (points[0][0], points[0][1] + 1)
        result = interpolate_rational_constant(points)
        assert result != 42

    def test_non_integer_raises(self):
        points = [(1, 1), (2, 2), (3, 4)]  # not on an integer-constant parabola
        value = interpolate_rational_constant(points)
        if value.denominator != 1:
            with pytest.raises(ReconstructionError):
                interpolate_integer_constant(points)

    def test_duplicate_x_rejected(self):
        with pytest.raises(ReconstructionError):
            interpolate_rational_constant([(2, 1), (2, 3)])

    def test_zero_x_rejected(self):
        with pytest.raises(ReconstructionError):
            interpolate_rational_constant([(0, 1), (2, 3)])

    def test_empty_rejected(self):
        with pytest.raises(ReconstructionError):
            interpolate_rational_constant([])

    def test_negative_constant_roundtrip(self):
        poly = IntegerPolynomial((-500, 3, 2))
        points = [(x, poly.evaluate(x)) for x in (1, 5, 9)]
        assert interpolate_integer_constant(points) == -500
