"""Unit tests for Shamir sharing, including the Figure 1 reproduction."""

import pytest

from repro.core.field import DEFAULT_FIELD
from repro.core.secrets import generate_client_secrets, secrets_with_points
from repro.core.shamir import (
    ShamirScheme,
    figure1_shares,
    reconstruct_value,
    salaries_from_figure1,
    split_value,
)
from repro.errors import ConfigurationError, ReconstructionError
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def scheme():
    return ShamirScheme(generate_client_secrets(5, seed=1), threshold=3)


class TestConfiguration:
    def test_threshold_bounds(self):
        secrets = generate_client_secrets(3, seed=0)
        with pytest.raises(ConfigurationError):
            ShamirScheme(secrets, threshold=0)
        with pytest.raises(ConfigurationError):
            ShamirScheme(secrets, threshold=4)

    def test_threshold_equal_n_allowed(self):
        secrets = generate_client_secrets(3, seed=0)
        assert ShamirScheme(secrets, threshold=3).threshold == 3


class TestSplitReconstruct:
    def test_roundtrip(self, scheme):
        rng = DeterministicRNG(7)
        shares = scheme.split(123_456, rng)
        assert len(shares) == 5
        assert scheme.reconstruct(dict(enumerate(shares))) == 123_456

    def test_any_k_shares_suffice(self, scheme):
        import itertools

        rng = DeterministicRNG(8)
        shares = scheme.split(999, rng)
        for combo in itertools.combinations(range(5), 3):
            subset = {i: shares[i] for i in combo}
            assert scheme.reconstruct(subset) == 999

    def test_fewer_than_k_rejected(self, scheme):
        rng = DeterministicRNG(9)
        shares = scheme.split(5, rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct({0: shares[0], 1: shares[1]})

    def test_zero_secret(self, scheme):
        shares = scheme.split(0, DeterministicRNG(1))
        assert scheme.reconstruct(dict(enumerate(shares))) == 0

    def test_max_secret(self, scheme):
        secret = DEFAULT_FIELD.modulus - 1
        shares = scheme.split(secret, DeterministicRNG(2))
        assert scheme.reconstruct(dict(enumerate(shares))) == secret

    def test_different_rng_different_shares(self, scheme):
        a = scheme.split(42, DeterministicRNG(1))
        b = scheme.split(42, DeterministicRNG(2))
        assert a != b  # randomized sharing hides equality

    def test_batch(self, scheme):
        rng = DeterministicRNG(3)
        matrix = scheme.split_batch([1, 2, 3], rng)
        assert len(matrix) == 3
        for value, shares in zip([1, 2, 3], matrix):
            assert scheme.reconstruct(dict(enumerate(shares))) == value

    def test_convenience_functions(self):
        secrets = generate_client_secrets(4, seed=5)
        shares = split_value(777, secrets, 2, DeterministicRNG(5))
        assert reconstruct_value(dict(enumerate(shares)), secrets, 2) == 777


class TestCheckedReconstruction:
    def test_consistent_extra_shares_pass(self, scheme):
        shares = scheme.split(31337, DeterministicRNG(4))
        assert scheme.reconstruct_checked(dict(enumerate(shares))) == 31337

    def test_inconsistent_extra_share_detected(self, scheme):
        shares = scheme.split(31337, DeterministicRNG(4))
        tampered = dict(enumerate(shares))
        tampered[4] = (tampered[4] + 1) % DEFAULT_FIELD.modulus
        with pytest.raises(ReconstructionError):
            scheme.reconstruct_checked(tampered)


class TestSignedValues:
    def test_negative_roundtrip(self, scheme):
        encoded = scheme.field.encode_signed(-98765)
        shares = scheme.split(encoded, DeterministicRNG(6))
        assert scheme.reconstruct_signed(dict(enumerate(shares))) == -98765


class TestLinearity:
    """Sec. V-A: providers sum shares, the client interpolates the total."""

    def test_share_sum_is_sum_share(self, scheme):
        rng = DeterministicRNG(10)
        a = scheme.split(1000, rng)
        b = scheme.split(2345, rng)
        summed = scheme.add_share_vectors(a, b)
        assert scheme.reconstruct(dict(enumerate(summed))) == 3345

    def test_partial_sums_combine(self, scheme):
        rng = DeterministicRNG(11)
        values = [10, 20, 30, 40]
        matrix = scheme.split_batch(values, rng)
        partials = {
            i: sum(matrix[j][i] for j in range(len(values))) for i in range(5)
        }
        assert scheme.combine_partial_sums(partials) == 100

    def test_scale_by_constant(self, scheme):
        shares = scheme.split(7, DeterministicRNG(12))
        scaled = scheme.scale_share_vector(shares, 6)
        assert scheme.reconstruct(dict(enumerate(scaled))) == 42

    def test_mismatched_vector_lengths(self, scheme):
        with pytest.raises(ReconstructionError):
            scheme.add_share_vectors([1, 2], [1, 2, 3])


class TestSecrecy:
    def test_k_minus_1_shares_consistent_with_any_secret(self):
        """Information-theoretic security: k-1 shares + points admit every
        candidate secret (there exists a polynomial through them)."""
        secrets = secrets_with_points((2, 4, 1), seed=0)
        scheme = ShamirScheme(secrets, threshold=2)
        shares = scheme.split(40, DeterministicRNG(13))
        # one share (k-1=1): for ANY claimed secret s, the line through
        # (0, s) and (x1, share1) exists — the share rules nothing out
        x1 = secrets.point_for(0)
        share1 = shares[0]
        for candidate in (0, 10, 40, 99):
            slope_exists = (share1 - candidate) % DEFAULT_FIELD.modulus
            assert slope_exists is not None  # always solvable in a field


class TestFigure1:
    """Bit-exact reproduction of the paper's worked example."""

    def test_share_columns_match_figure(self):
        columns = figure1_shares()
        assert columns["DAS1"] == [210, 30, 42, 64, 88]
        # the printed figure shows 64 in DAS2's 4th entry, but the stated
        # polynomial q60(x)=2x+60 at x_2=4 gives 68 — a typo in the paper;
        # we reproduce the arithmetic (see EXPERIMENTS.md EXP-F1)
        assert columns["DAS2"] == [410, 40, 44, 68, 96]
        assert columns["DAS3"] == [110, 25, 41, 62, 84]

    def test_salaries_recoverable_from_any_two_columns(self):
        columns = figure1_shares()
        expected = [10, 20, 40, 60, 80]
        assert salaries_from_figure1(columns) == expected
        assert (
            salaries_from_figure1({k: columns[k] for k in ("DAS2", "DAS3")})
            == expected
        )
        assert (
            salaries_from_figure1({k: columns[k] for k in ("DAS1", "DAS3")})
            == expected
        )

    def test_single_column_insufficient(self):
        columns = figure1_shares()
        with pytest.raises(ReconstructionError):
            salaries_from_figure1({"DAS1": columns["DAS1"]})


class TestRobustDecodeAmbiguity:
    """At m = k+1 shares the subset vote cannot isolate one bad share.

    Every k-subset polynomial explains its own k members — a strict
    majority each — so a silent arbitrary pick could return a corrupt
    candidate and blame an honest provider.  The decode must raise
    unless outside blame evidence (``suspects``) breaks the tie.
    """

    def shares_of(self, scheme, secret, seed=3):
        return dict(
            enumerate(scheme.split(secret, DeterministicRNG(seed, "amb")))
        )

    def test_k_plus_one_with_one_bad_share_is_ambiguous(self, scheme):
        shares = self.shares_of(scheme, 777)
        del shares[4]  # m = k + 1 = 4
        shares[2] += 1234  # one tampered share
        with pytest.raises(ReconstructionError, match="ambiguous"):
            scheme.reconstruct_robust(shares)
        with pytest.raises(ReconstructionError, match="ambiguous"):
            scheme.reconstruct_robust_with_blame(shares)

    def test_suspect_evidence_breaks_the_tie(self, scheme):
        shares = self.shares_of(scheme, 777)
        del shares[4]
        shares[2] += 1234
        secret, blamed = scheme.reconstruct_robust_with_blame(
            shares, suspects=[2]
        )
        assert secret == 777
        assert blamed == [2]

    def test_suspect_evidence_is_trusted(self, scheme):
        # at m = k+1 every single-liar hypothesis is self-consistent, so
        # the decode follows the evidence it is given — suspects must come
        # from a sound source (deterministic order-preserving blame, which
        # cannot finger an honest provider)
        shares = self.shares_of(scheme, 777)
        del shares[4]
        shares[2] += 1234
        _, blamed = scheme.reconstruct_robust_with_blame(shares, suspects=[0])
        assert blamed == [0]

    def test_k_plus_two_decodes_without_evidence(self, scheme):
        # m = 5, k = 3: radius ⌊(5-3)/2⌋ = 1 bad share decodes uniquely
        shares = self.shares_of(scheme, 777)
        shares[2] += 1234
        secret, blamed = scheme.reconstruct_robust_with_blame(shares)
        assert secret == 777
        assert blamed == [2]


class TestShareExtension:
    def test_extended_share_matches_original(self, scheme):
        shares = dict(
            enumerate(scheme.split(4242, DeterministicRNG(9, "ext")))
        )
        original = shares.pop(4)
        assert scheme.extend_share(shares, 4) == original

    def test_needs_k_source_shares(self, scheme):
        shares = dict(
            enumerate(scheme.split(4242, DeterministicRNG(9, "ext")))
        )
        with pytest.raises(ReconstructionError):
            scheme.extend_share({0: shares[0], 1: shares[1]}, 4)
