"""Unit tests for prime-field arithmetic."""

import pytest

from repro.core.field import (
    DEFAULT_FIELD,
    MERSENNE_61,
    PRIME_89,
    PRIME_127,
    PRIME_521,
    PrimeField,
    field_for_domain,
    is_probable_prime,
)
from repro.errors import ConfigurationError, DomainError


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 15, 100, 7917):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # classic Fermat pseudoprimes must not fool Miller-Rabin
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)

    def test_standard_primes_are_prime(self):
        for p in (MERSENNE_61, PRIME_89, PRIME_127, PRIME_521):
            assert is_probable_prime(p)

    def test_mersenne_61_value(self):
        assert MERSENNE_61 == 2**61 - 1


class TestFieldConstruction:
    def test_composite_modulus_rejected(self):
        with pytest.raises(ConfigurationError):
            PrimeField(2**61)  # even

    def test_small_prime_field(self):
        field = PrimeField(101)
        assert field.modulus == 101

    def test_fields_hashable_and_equal(self):
        assert PrimeField(101) == PrimeField(101)
        assert hash(PrimeField(101)) == hash(PrimeField(101))


class TestArithmetic:
    field = PrimeField(101)

    def test_add_wraps(self):
        assert self.field.add(100, 5) == 4

    def test_sub_wraps(self):
        assert self.field.sub(3, 10) == 94

    def test_mul(self):
        assert self.field.mul(20, 6) == 120 % 101

    def test_neg(self):
        assert self.field.neg(1) == 100
        assert self.field.neg(0) == 0

    def test_inverse_roundtrip(self):
        for a in range(1, 101):
            assert self.field.mul(a, self.field.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            self.field.inv(0)

    def test_div(self):
        assert self.field.mul(self.field.div(7, 3), 3) == 7

    def test_pow(self):
        assert self.field.pow(2, 10) == 1024 % 101

    def test_sum(self):
        assert self.field.sum([100, 100, 100]) == 300 % 101

    def test_dot(self):
        assert self.field.dot([1, 2, 3], [4, 5, 6]) == 32 % 101

    def test_dot_length_mismatch(self):
        with pytest.raises(ValueError):
            self.field.dot([1], [1, 2])

    def test_batch_inv_matches_inv(self):
        values = [3, 7, 50, 99, 1]
        batch = self.field.batch_inv(values)
        assert batch == [self.field.inv(v) for v in values]

    def test_batch_inv_zero_raises_share_error(self):
        from repro.errors import ShareError

        with pytest.raises(ShareError, match="positions \\[1\\]"):
            self.field.batch_inv([3, 0, 7])


class TestSignedEncoding:
    field = PrimeField(101)

    def test_roundtrip_positive(self):
        for v in (0, 1, 50):
            assert self.field.decode_signed(self.field.encode_signed(v)) == v

    def test_roundtrip_negative(self):
        for v in (-1, -25, -50):
            assert self.field.decode_signed(self.field.encode_signed(v)) == v

    def test_out_of_range_rejected(self):
        with pytest.raises(DomainError):
            self.field.encode_signed(51)
        with pytest.raises(DomainError):
            self.field.encode_signed(-51)


class TestSecretValidation:
    def test_in_range_passes(self):
        assert DEFAULT_FIELD.check_secret(0) == 0
        assert DEFAULT_FIELD.check_secret(MERSENNE_61 - 1) == MERSENNE_61 - 1

    def test_out_of_range_raises(self):
        with pytest.raises(DomainError):
            DEFAULT_FIELD.check_secret(MERSENNE_61)
        with pytest.raises(DomainError):
            DEFAULT_FIELD.check_secret(-1)


class TestFieldForDomain:
    def test_small_domain_gets_default(self):
        assert field_for_domain(10**6).modulus == MERSENNE_61

    def test_wide_domain_gets_bigger_prime(self):
        assert field_for_domain(2**61).modulus == PRIME_89
        assert field_for_domain(2**90).modulus == PRIME_127
        assert field_for_domain(2**130).modulus == PRIME_521

    def test_huge_domain_rejected(self):
        with pytest.raises(DomainError):
            field_for_domain(2**521)

    def test_negative_bound_rejected(self):
        with pytest.raises(DomainError):
            field_for_domain(-1)
