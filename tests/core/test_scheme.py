"""Unit tests for per-table sharing configuration."""

import pytest
from decimal import Decimal

from repro.core.scheme import TableSharing
from repro.core.secrets import generate_client_secrets
from repro.errors import (
    QueryError,
    ReconstructionError,
    UnsupportedQueryError,
)
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.schema import (
    TableSchema,
    decimal_column,
    integer_column,
    string_column,
)


@pytest.fixture
def schema():
    return TableSchema(
        "T",
        (
            integer_column("id", 1, 10_000),
            string_column("name", 6),
            integer_column("secret_num", -500, 500, searchable=False),
            decimal_column("price", 0, 1000, scale=2),
        ),
        primary_key="id",
    )


@pytest.fixture
def sharing(schema):
    return TableSharing(
        schema, generate_client_secrets(5, seed=2), 3, DeterministicRNG(2)
    )


class TestConfiguration:
    def test_threshold_one_rejected(self, schema):
        with pytest.raises(QueryError):
            TableSharing(
                schema, generate_client_secrets(5, seed=2), 1, DeterministicRNG(2)
            )

    def test_searchability(self, sharing):
        assert sharing.is_searchable("id")
        assert sharing.is_searchable("name")
        assert not sharing.is_searchable("secret_num")

    def test_op_scheme_for_random_column_raises(self, sharing):
        with pytest.raises(UnsupportedQueryError):
            sharing.op_scheme("secret_num")

    def test_unknown_column_raises(self, sharing):
        with pytest.raises(QueryError):
            sharing.codec("nope")

    def test_domain_label_sharing(self):
        schema_a = TableSchema(
            "A", (integer_column("k", 1, 100, domain_label="dom/k"),)
        )
        schema_b = TableSchema(
            "B", (integer_column("k", 1, 100, domain_label="dom/k"),)
        )
        secrets = generate_client_secrets(4, seed=1)
        registry = {}
        a = TableSharing(schema_a, secrets, 2, DeterministicRNG(1), registry)
        b = TableSharing(schema_b, secrets, 2, DeterministicRNG(1), registry)
        # join compatibility: equal values → equal shares across tables
        assert a.query_share("k", 42, 0) == b.query_share("k", 42, 0)

    def test_incompatible_domain_same_label_rejected(self):
        schema_a = TableSchema(
            "A", (integer_column("k", 1, 100, domain_label="dom/x"),)
        )
        schema_b = TableSchema(
            "B", (integer_column("k", 1, 999, domain_label="dom/x"),)
        )
        secrets = generate_client_secrets(4, seed=1)
        registry = {}
        TableSharing(schema_a, secrets, 2, DeterministicRNG(1), registry)
        with pytest.raises(QueryError):
            TableSharing(schema_b, secrets, 2, DeterministicRNG(1), registry)


class TestRowSharing:
    def test_share_and_reconstruct_row(self, sharing):
        row = {
            "id": 7,
            "name": "ALICE",
            "secret_num": -123,
            "price": Decimal("19.99"),
        }
        share_rows = sharing.share_row(row)
        assert len(share_rows) == 5
        reconstructed = sharing.reconstruct_row(dict(enumerate(share_rows)))
        assert reconstructed == row

    def test_null_handling(self, schema):
        schema_nullable = TableSchema(
            "T2",
            (
                integer_column("id", 1, 100),
                integer_column("x", 0, 10, nullable=True),
            ),
        )
        sharing = TableSharing(
            schema_nullable, generate_client_secrets(3, seed=4), 2,
            DeterministicRNG(4),
        )
        share_rows = sharing.share_row({"id": 1, "x": None})
        assert all(r["x"] is None for r in share_rows)
        row = sharing.reconstruct_row(dict(enumerate(share_rows)))
        assert row["x"] is None

    def test_null_disagreement_detected(self, sharing):
        share_rows = sharing.share_row(
            {"id": 1, "name": "B", "secret_num": 0, "price": Decimal(1)}
        )
        share_rows[0]["name"] = None
        with pytest.raises(ReconstructionError):
            sharing.reconstruct_row(dict(enumerate(share_rows)))

    def test_too_few_providers(self, sharing):
        share_rows = sharing.share_row(
            {"id": 1, "name": "B", "secret_num": 0, "price": Decimal(1)}
        )
        with pytest.raises(ReconstructionError):
            sharing.reconstruct_row({0: share_rows[0], 1: share_rows[1]})

    def test_partial_column_reconstruction(self, sharing):
        row = {"id": 3, "name": "CAROL", "secret_num": 5, "price": Decimal(2)}
        share_rows = sharing.share_row(row)
        partial = sharing.reconstruct_row(
            dict(enumerate(share_rows)), columns=["id", "name"]
        )
        assert partial == {"id": 3, "name": "CAROL"}

    def test_query_share_matches_stored_share(self, sharing):
        row = {"id": 9, "name": "DAVE", "secret_num": 1, "price": Decimal(5)}
        share_rows = sharing.share_row(row)
        for i in range(5):
            assert sharing.query_share("id", 9, i) == share_rows[i]["id"]
            assert sharing.query_share("name", "DAVE", i) == share_rows[i]["name"]

    def test_random_columns_not_deterministic(self, sharing):
        a = sharing.share_value("secret_num", 42)
        b = sharing.share_value("secret_num", 42)
        assert a != b

    def test_query_share_of_null_rejected(self, sharing):
        with pytest.raises(QueryError):
            sharing.query_share("id", None, 0)


class TestSumCombination:
    def test_op_column_sum(self, sharing):
        values = [100, 250, 333]
        partials = {i: 0 for i in range(5)}
        for v in values:
            shares = sharing.share_value("id", v)
            for i in range(5):
                partials[i] += shares[i]
        assert sharing.combine_sum("id", partials, len(values)) == sum(values)

    def test_random_column_sum_with_negatives(self, sharing):
        values = [-100, 250, -33]
        partials = {i: 0 for i in range(5)}
        for v in values:
            shares = sharing.share_value("secret_num", v)
            for i in range(5):
                partials[i] += shares[i]
        assert sharing.combine_sum("secret_num", partials, len(values)) == 117

    def test_decimal_sum_decoding(self, sharing):
        values = [Decimal("1.25"), Decimal("2.50")]
        partials = {i: 0 for i in range(5)}
        for v in values:
            shares = sharing.share_value("price", v)
            for i in range(5):
                partials[i] += shares[i]
        assert sharing.combine_sum("price", partials, 2) == Decimal("3.75")

    def test_empty_sum_is_none(self, sharing):
        assert sharing.combine_sum("id", {}, 0) is None

    def test_non_numeric_sum_rejected(self, sharing):
        partials = {i: s for i, s in enumerate(sharing.share_value("name", "A"))}
        with pytest.raises(QueryError):
            sharing.combine_sum("name", partials, 1)


ROW = {
    "id": 7,
    "name": "ALICE",
    "secret_num": -123,
    "price": Decimal("19.99"),
}


class TestRobustNullTie:
    def test_null_tie_raises_cleanly(self, sharing):
        """An exact NULL/non-NULL split has no majority to trust.

        Regression: the tie used to fall through to robust decoding of
        the non-NULL half, which can be fewer than k shares and died
        with a misleading low-level interpolation error.
        """
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        del share_rows[4]  # 4 providers left
        share_rows[0]["secret_num"] = None
        share_rows[1]["secret_num"] = None
        with pytest.raises(ReconstructionError, match="tie"):
            sharing.reconstruct_value_robust(
                "secret_num",
                {i: r["secret_num"] for i, r in share_rows.items()},
            )
        with pytest.raises(ReconstructionError, match="tie"):
            sharing.reconstruct_value_checked(
                "secret_num",
                {i: r["secret_num"] for i, r in share_rows.items()},
            )

    def test_null_majority_wins(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        for index in (0, 1, 2):
            share_rows[index]["secret_num"] = None
        assert (
            sharing.reconstruct_value_robust(
                "secret_num",
                {i: r["secret_num"] for i, r in share_rows.items()},
            )
            is None
        )


class TestCheckedReconstruction:
    def test_clean_row_no_blame(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        row, blamed = sharing.reconstruct_row_checked(share_rows)
        assert row == ROW and blamed == []

    def test_tampered_provider_blamed_all_columns(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        for column in share_rows[2]:
            share_rows[2][column] += 17
        row, blamed = sharing.reconstruct_row_checked(share_rows)
        assert row == ROW
        assert blamed == [2]

    def test_random_column_tie_broken_by_op_evidence(self, sharing):
        """At k+1 shares, deterministic OP blame resolves the random-column
        vote tie — the scenario one crash plus one tamperer creates."""
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        del share_rows[4]  # one provider down: m = k + 1
        for column in share_rows[2]:
            share_rows[2][column] += 17  # one tamperer
        row, blamed = sharing.reconstruct_row_checked(share_rows)
        assert row == ROW
        assert blamed == [2]

    def test_random_only_corruption_at_k_plus_one_is_ambiguous(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        del share_rows[4]
        share_rows[2]["secret_num"] += 17  # no OP evidence anywhere
        with pytest.raises(ReconstructionError, match="ambiguous"):
            sharing.reconstruct_row_checked(share_rows)

    def test_caller_suspects_break_random_tie(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        del share_rows[4]
        share_rows[2]["secret_num"] += 17
        row, blamed = sharing.reconstruct_row_checked(share_rows, suspects=[2])
        assert row == ROW
        assert blamed == [2]

    def test_null_flip_blamed(self, sharing):
        share_rows = dict(enumerate(sharing.share_row(ROW)))
        share_rows[3]["name"] = None
        row, blamed = sharing.reconstruct_row_checked(share_rows)
        assert row == ROW
        assert blamed == [3]
