"""Unit tests for the order-preserving polynomial construction (Sec. IV)."""

import pytest

from repro.core.order_preserving import (
    IntegerDomain,
    MonotoneStrawmanScheme,
    OrderPreservingScheme,
)
from repro.core.secrets import generate_client_secrets
from repro.errors import ConfigurationError, DomainError, ReconstructionError


@pytest.fixture
def secrets():
    return generate_client_secrets(5, seed=3)


@pytest.fixture
def scheme(secrets):
    return OrderPreservingScheme(
        secrets, IntegerDomain(0, 10_000), threshold=4, label="test"
    )


class TestIntegerDomain:
    def test_size(self):
        assert IntegerDomain(0, 9).size == 10
        assert IntegerDomain(-5, 5).size == 11

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegerDomain(5, 4)

    def test_rank(self):
        domain = IntegerDomain(10, 20)
        assert domain.rank(10) == 0
        assert domain.rank(20) == 10

    def test_rank_outside_raises(self):
        with pytest.raises(DomainError):
            IntegerDomain(0, 5).rank(6)

    def test_clamp(self):
        domain = IntegerDomain(0, 100)
        assert domain.clamp(-5) == 0
        assert domain.clamp(105) == 100
        assert domain.clamp(50) == 50

    def test_contains(self):
        domain = IntegerDomain(-3, 3)
        assert domain.contains(-3) and domain.contains(3)
        assert not domain.contains(4)


class TestConstruction:
    def test_threshold_bounds(self, secrets):
        domain = IntegerDomain(0, 10)
        with pytest.raises(ConfigurationError):
            OrderPreservingScheme(secrets, domain, threshold=1)
        with pytest.raises(ConfigurationError):
            OrderPreservingScheme(secrets, domain, threshold=6)

    def test_slot_width_validation(self, secrets):
        with pytest.raises(ConfigurationError):
            OrderPreservingScheme(
                secrets, IntegerDomain(0, 10), threshold=2, slot_width=0
            )

    def test_polynomial_constant_term_is_value(self, scheme):
        assert scheme.polynomial_for(777).constant_term == 777

    def test_polynomial_degree_is_k_minus_1(self, scheme):
        assert scheme.polynomial_for(5).degree == 3


class TestDeterminism:
    def test_same_value_same_shares(self, scheme):
        assert scheme.split(42) == scheme.split(42)

    def test_same_label_same_family(self, secrets):
        a = OrderPreservingScheme(
            secrets, IntegerDomain(0, 100), threshold=3, label="shared"
        )
        b = OrderPreservingScheme(
            secrets, IntegerDomain(0, 100), threshold=3, label="shared"
        )
        assert a.split(7) == b.split(7)

    def test_different_label_different_shares(self, secrets):
        a = OrderPreservingScheme(
            secrets, IntegerDomain(0, 100), threshold=3, label="one"
        )
        b = OrderPreservingScheme(
            secrets, IntegerDomain(0, 100), threshold=3, label="two"
        )
        assert a.split(7) != b.split(7)


class TestOrderPreservation:
    """The scheme's defining property: v1 < v2 ⇒ share(v1,i) < share(v2,i)."""

    def test_order_preserved_at_every_provider(self, scheme):
        values = [0, 1, 17, 500, 4_999, 5_000, 9_999, 10_000]
        for i in range(scheme.n_providers):
            shares = [scheme.share(v, i) for v in values]
            assert shares == sorted(shares)
            assert len(set(shares)) == len(shares)  # strict

    def test_adjacent_values_strictly_ordered(self, scheme):
        for v in (0, 100, 9_999):
            for i in range(scheme.n_providers):
                assert scheme.share(v, i) < scheme.share(v + 1, i)

    def test_negative_domain_order(self, secrets):
        scheme = OrderPreservingScheme(
            secrets, IntegerDomain(-1000, 1000), threshold=3, label="neg"
        )
        values = [-1000, -500, -1, 0, 1, 999, 1000]
        for i in range(scheme.n_providers):
            shares = [scheme.share(v, i) for v in values]
            assert shares == sorted(shares)


class TestRangeRewriting:
    def test_share_range_brackets_exactly(self, scheme):
        low, high = scheme.share_range(100, 200, 0)
        assert low == scheme.share(100, 0)
        assert high == scheme.share(200, 0)
        # values inside map inside, values outside map outside
        assert low <= scheme.share(150, 0) <= high
        assert scheme.share(99, 0) < low
        assert scheme.share(201, 0) > high

    def test_range_clamps_out_of_domain_bounds(self, scheme):
        low, high = scheme.share_range(-50, 999_999, 0)
        assert low == scheme.share(0, 0)
        assert high == scheme.share(10_000, 0)

    def test_empty_range_rejected(self, scheme):
        with pytest.raises(DomainError):
            scheme.share_range(5, 4, 0)


class TestReconstruction:
    def test_roundtrip(self, scheme):
        for value in (0, 1, 42, 9_999, 10_000):
            shares = scheme.split(value)
            assert scheme.reconstruct(dict(enumerate(shares))) == value

    def test_any_k_of_n(self, scheme):
        import itertools

        shares = scheme.split(1234)
        for combo in itertools.combinations(range(5), 4):
            assert scheme.reconstruct({i: shares[i] for i in combo}) == 1234

    def test_too_few_shares(self, scheme):
        shares = scheme.split(5)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct({0: shares[0], 1: shares[1], 2: shares[2]})

    def test_tampered_share_detected(self, scheme):
        shares = dict(enumerate(scheme.split(5)))
        shares[0] += 12345
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(shares)

    def test_out_of_domain_value_rejected(self, scheme):
        with pytest.raises(DomainError):
            scheme.split(10_001)

    def test_verify_share(self, scheme):
        share = scheme.share(77, 2)
        assert scheme.verify_share(77, 2, share)
        assert not scheme.verify_share(77, 2, share + 1)

    def test_max_share_magnitude_bounds_all_shares(self, scheme):
        bound = scheme.max_share_magnitude()
        for v in (0, 5_000, 10_000):
            for i in range(scheme.n_providers):
                assert abs(scheme.share(v, i)) <= bound


class TestStrawman:
    def test_order_preserved(self, secrets):
        scheme = MonotoneStrawmanScheme(secrets, IntegerDomain(0, 1000))
        values = [0, 10, 500, 1000]
        for i in range(secrets.n_providers):
            shares = [scheme.share(v, i) for v in values]
            assert shares == sorted(shares)

    def test_shares_are_affine_in_secret(self, secrets):
        """The leak the paper demonstrates: share = A_i * v + B_i."""
        scheme = MonotoneStrawmanScheme(secrets, IntegerDomain(0, 1000))
        slope, intercept = scheme.affine_form(0)
        for v in (0, 1, 77, 1000):
            assert scheme.share(v, 0) == slope * v + intercept

    def test_negative_slopes_rejected(self, secrets):
        with pytest.raises(ConfigurationError):
            MonotoneStrawmanScheme(
                secrets, IntegerDomain(0, 10), slopes=(-1, 2, 3)
            )

    def test_threshold_validation(self, secrets):
        with pytest.raises(ConfigurationError):
            MonotoneStrawmanScheme(secrets, IntegerDomain(0, 10), threshold=1)
