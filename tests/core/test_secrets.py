"""Unit tests for client secret material."""

import pytest

from repro.core.field import PrimeField
from repro.core.secrets import (
    ClientSecrets,
    generate_client_secrets,
    secrets_with_points,
    shares_by_provider,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSecrets((2, 2, 3), b"k" * 32)

    def test_zero_point_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSecrets((0, 1, 2), b"k" * 32)

    def test_negative_point_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSecrets((-1, 1), b"k" * 32)

    def test_point_beyond_field_rejected(self):
        field = PrimeField(101)
        with pytest.raises(ConfigurationError):
            ClientSecrets((102,), b"k" * 32, field)

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSecrets((1, 2), b"short")


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate_client_secrets(5, seed=7)
        b = generate_client_secrets(5, seed=7)
        assert a.evaluation_points == b.evaluation_points
        assert a.hash_key == b.hash_key

    def test_different_seeds_differ(self):
        a = generate_client_secrets(5, seed=7)
        b = generate_client_secrets(5, seed=8)
        assert a.evaluation_points != b.evaluation_points

    def test_points_distinct_and_positive(self):
        secrets = generate_client_secrets(20, seed=1)
        points = secrets.evaluation_points
        assert len(set(points)) == 20
        assert all(p > 0 for p in points)

    def test_zero_providers_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_client_secrets(0)

    def test_explicit_points(self):
        secrets = secrets_with_points((2, 4, 1), seed=0)
        assert secrets.evaluation_points == (2, 4, 1)
        assert secrets.point_for(1) == 4


class TestKeyedHash:
    def test_deterministic(self):
        secrets = generate_client_secrets(2, seed=1)
        assert secrets.keyed_hash("label", 5) == secrets.keyed_hash("label", 5)

    def test_label_separation(self):
        secrets = generate_client_secrets(2, seed=1)
        assert secrets.keyed_hash("a", 5) != secrets.keyed_hash("b", 5)

    def test_value_separation(self):
        secrets = generate_client_secrets(2, seed=1)
        assert secrets.keyed_hash("a", 5) != secrets.keyed_hash("a", 6)

    def test_negative_values_distinct(self):
        secrets = generate_client_secrets(2, seed=1)
        assert secrets.keyed_hash("a", -5) != secrets.keyed_hash("a", 5)

    def test_key_dependence(self):
        a = generate_client_secrets(2, seed=1)
        b = generate_client_secrets(2, seed=2)
        assert a.keyed_hash("a", 5) != b.keyed_hash("a", 5)

    def test_subkey_derivation(self):
        secrets = generate_client_secrets(2, seed=1)
        assert secrets.derive_subkey("x") != secrets.derive_subkey("y")
        assert len(secrets.derive_subkey("x")) == 32


class TestHelpers:
    def test_shares_by_provider_sorted(self):
        assert shares_by_provider({2: 30, 0: 10, 1: 20}) == [
            (0, 10),
            (1, 20),
            (2, 30),
        ]
