"""Unit tests for value codecs (Sec. V-B enumeration)."""

import datetime
from decimal import Decimal

import pytest

from repro.core.encoding import (
    BooleanCodec,
    DateCodec,
    DecimalCodec,
    IntegerCodec,
    StringCodec,
)
from repro.errors import EncodingError


class TestIntegerCodec:
    codec = IntegerCodec(-100, 100)

    def test_identity_roundtrip(self):
        for v in (-100, -1, 0, 50, 100):
            assert self.codec.decode(self.codec.encode(v)) == v

    def test_out_of_domain(self):
        with pytest.raises(EncodingError):
            self.codec.encode(101)
        with pytest.raises(EncodingError):
            self.codec.decode(-101)

    def test_none_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(None)

    def test_bool_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(True)

    def test_empty_domain_rejected(self):
        with pytest.raises(EncodingError):
            IntegerCodec(5, 4)

    def test_domain(self):
        domain = self.codec.domain()
        assert (domain.lo, domain.hi) == (-100, 100)


class TestStringCodec:
    codec = StringCodec(width=5)

    def test_paper_example_consistent_reading(self):
        # digits (1,2,3,0,0) in base 27 — see module docstring on the
        # paper's own arithmetic slip
        assert self.codec.encode("ABC") == 1 * 27**4 + 2 * 27**3 + 3 * 27**2

    def test_roundtrip(self):
        for s in ("", "A", "Z", "FATIH", "AB"):
            assert self.codec.decode(self.codec.encode(s)) == s

    def test_case_folding(self):
        assert self.codec.encode("john") == self.codec.encode("JOHN")

    def test_order_matches_padded_string_order(self):
        words = ["", "A", "AA", "ABC", "AZ", "B", "JACK", "ZZZZZ"]
        encoded = [self.codec.encode(w) for w in words]
        assert encoded == sorted(encoded)

    def test_too_long_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode("TOOLONG")

    def test_bad_characters_rejected(self):
        for bad in ("A1", "A B", "Ä", "A*"):
            with pytest.raises(EncodingError):
                self.codec.encode(bad)

    def test_none_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(None)

    def test_domain_size(self):
        assert self.codec.domain().hi == 27**5 - 1

    def test_prefix_range_contains_exactly_prefixed(self):
        low, high = self.codec.prefix_range("AB")
        for word in ("AB", "ABA", "ABZZZ"):
            assert low <= self.codec.encode(word) <= high
        for word in ("AA", "AC", "B", "A"):
            enc = self.codec.encode(word)
            assert enc < low or enc > high

    def test_full_width_prefix_is_point(self):
        low, high = self.codec.prefix_range("HELLO")
        assert low == high == self.codec.encode("HELLO")

    def test_decode_out_of_domain(self):
        with pytest.raises(EncodingError):
            self.codec.decode(27**5)

    def test_width_one(self):
        codec = StringCodec(width=1)
        assert codec.decode(codec.encode("Q")) == "Q"

    def test_zero_width_rejected(self):
        with pytest.raises(EncodingError):
            StringCodec(width=0)


class TestDecimalCodec:
    codec = DecimalCodec(Decimal(0), Decimal(1000), scale=2)

    def test_roundtrip(self):
        for v in (Decimal("0"), Decimal("0.01"), Decimal("999.99"), Decimal(1000)):
            assert self.codec.decode(self.codec.encode(v)) == v

    def test_order_preserved(self):
        values = [Decimal("0.01"), Decimal("0.10"), Decimal("1"), Decimal("999.99")]
        encoded = [self.codec.encode(v) for v in values]
        assert encoded == sorted(encoded)

    def test_too_many_digits_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(Decimal("1.001"))

    def test_out_of_domain(self):
        with pytest.raises(EncodingError):
            self.codec.encode(Decimal("1000.01"))

    def test_int_coerced(self):
        assert self.codec.encode(5) == 500

    def test_negative_scale_rejected(self):
        with pytest.raises(EncodingError):
            DecimalCodec(Decimal(0), Decimal(1), scale=-1)

    def test_unrepresentable_bound_rejected(self):
        with pytest.raises(EncodingError):
            DecimalCodec(Decimal("0.001"), Decimal(1), scale=2)


class TestDateCodec:
    codec = DateCodec()

    def test_roundtrip(self):
        for d in (
            datetime.date(1900, 1, 1),
            datetime.date(2009, 3, 29),  # ICDE 2009
            datetime.date(2100, 12, 31),
        ):
            assert self.codec.decode(self.codec.encode(d)) == d

    def test_order_preserved(self):
        a = self.codec.encode(datetime.date(2000, 1, 1))
        b = self.codec.encode(datetime.date(2000, 1, 2))
        assert a < b

    def test_out_of_domain(self):
        with pytest.raises(EncodingError):
            self.codec.encode(datetime.date(1899, 12, 31))

    def test_datetime_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(datetime.datetime(2000, 1, 1, 12, 0))

    def test_custom_bounds(self):
        codec = DateCodec(datetime.date(2020, 1, 1), datetime.date(2020, 12, 31))
        with pytest.raises(EncodingError):
            codec.encode(datetime.date(2021, 1, 1))

    def test_empty_domain_rejected(self):
        with pytest.raises(EncodingError):
            DateCodec(datetime.date(2021, 1, 1), datetime.date(2020, 1, 1))


class TestBooleanCodec:
    codec = BooleanCodec()

    def test_roundtrip(self):
        assert self.codec.decode(self.codec.encode(True)) is True
        assert self.codec.decode(self.codec.encode(False)) is False

    def test_false_below_true(self):
        assert self.codec.encode(False) < self.codec.encode(True)

    def test_int_rejected(self):
        with pytest.raises(EncodingError):
            self.codec.encode(1)

    def test_decode_validation(self):
        with pytest.raises(EncodingError):
            self.codec.decode(2)
