"""Open-loop overload runner: oracle, shedding order, degradation."""

import pytest

from repro import telemetry
from repro.client.datasource import DataSource
from repro.errors import ConfigurationError
from repro.providers.cluster import ProviderCluster
from repro.service import PlaintextMirror, estimate_capacity, run_open_loop
from repro.workloads.employees import employees_table
from repro.workloads.traffic import (
    TrafficEvent,
    TrafficProfile,
    generate_traffic,
)

SEED = 2009


def build_source(rows=40, providers=4, threshold=2):
    table = employees_table(rows, seed=SEED)
    source = DataSource(
        ProviderCluster(providers, threshold), seed=SEED, verified_reads=True
    )
    source.outsource_table(table)
    eids = sorted(row["eid"] for row in table.rows())
    return source, eids


def flood_events(source, eids, load, queries=200, max_in_flight=4):
    """Traffic calibrated to ``load`` x the deployment's capacity."""
    capacity = estimate_capacity(
        source, eids, max_in_flight=max_in_flight, seed=SEED + 1
    )
    source.cluster.network.reset()
    profile = TrafficProfile(
        mean_interarrival=1.0 / (capacity["capacity_qps"] * load)
    )
    return generate_traffic(eids, queries, seed=SEED, profile=profile)


class TestMirror:
    def rows(self):
        return [
            {"eid": 1, "name": "A", "salary": 50_000},
            {"eid": 2, "name": "B", "salary": 60_000},
        ]

    def event(self, kind, params):
        return TrafficEvent(
            arrival=0.0, session_id="s", sql="", kind=kind,
            priority=0, params=params,
        )

    def test_point_hit_and_miss(self):
        mirror = PlaintextMirror(self.rows())
        assert mirror.check_and_apply(
            self.event("point", (1,)), [{"name": "A", "salary": 50_000}]
        )
        assert mirror.check_and_apply(self.event("point", (99,)), [])
        assert not mirror.check_and_apply(
            self.event("point", (1,)), [{"name": "A", "salary": 1}]
        )

    def test_range_compares_eids(self):
        mirror = PlaintextMirror(self.rows())
        event = self.event("range", (55_000, 65_000))
        assert mirror.check_and_apply(event, [{"eid": 2}])
        assert not mirror.check_and_apply(event, [{"eid": 1}])
        assert not mirror.check_and_apply(event, "not a list")

    def test_aggregate_counts(self):
        mirror = PlaintextMirror(self.rows())
        event = self.event("aggregate", (40_000, 70_000))
        assert mirror.check_and_apply(event, 2)
        assert not mirror.check_and_apply(event, 3)

    def test_update_applies_at_check_time(self):
        mirror = PlaintextMirror(self.rows())
        assert mirror.check_and_apply(self.event("update", (1, 99_000)), 1)
        # the write landed: later reads expect the new salary
        assert mirror.check_and_apply(
            self.event("point", (1,)), [{"name": "A", "salary": 99_000}]
        )
        assert mirror.check_and_apply(self.event("update", (99, 1)), 0)

    def test_insert_applies(self):
        mirror = PlaintextMirror(self.rows())
        event = self.event("insert", (3, "C", "FLOOD", "OPS", 70_000))
        assert mirror.check_and_apply(event, 1)
        assert mirror.check_and_apply(
            self.event("point", (3,)), [{"name": "C", "salary": 70_000}]
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            PlaintextMirror([]).check_and_apply(
                self.event("mystery", ()), None
            )


class TestCapacity:
    def test_capacity_positive_and_deterministic(self):
        source, eids = build_source()
        first = estimate_capacity(source, eids, max_in_flight=4)
        assert first["capacity_qps"] > 0
        assert first["mean_service_seconds"] > 0
        source2, eids2 = build_source()
        assert estimate_capacity(source2, eids2, max_in_flight=4) == first


class TestRunOpenLoop:
    def test_validation(self):
        source, _ = build_source(rows=10, providers=3, threshold=2)
        with pytest.raises(ConfigurationError):
            run_open_loop(source, [], degrade_at=0.3, restore_at=0.5)
        with pytest.raises(ConfigurationError):
            run_open_loop(source, [], degrade_at=1.5)

    def test_light_load_all_complete_zero_incorrect(self):
        source, eids = build_source()
        events = flood_events(source, eids, load=0.2, queries=120)
        report = run_open_loop(source, events, max_in_flight=4,
                               queue_limit=16)
        assert report["completed"] == 120
        assert report["shed"] == 0
        assert report["failed"] == 0
        assert report["incorrect"] == 0

    def test_overload_sheds_by_priority_and_degrades(self):
        source, eids = build_source()
        events = flood_events(source, eids, load=4.0, queries=240)
        with telemetry.session(
            clock=lambda: source.cluster.network.modelled_seconds
        ):
            report = run_open_loop(
                source, events, max_in_flight=4, queue_limit=16
            )
        assert report["incorrect"] == 0
        assert report["shed"] > 0
        assert report["degraded_served"] > 0
        assert report["degrade_spans"] >= 1
        rates = {
            name: stats["completion_rate"]
            for name, stats in report["slo"]["by_priority"].items()
            if stats["offered"]
        }
        assert rates["interactive"] >= rates["background"]
        # SLO rollup agrees with the runner's own counts
        assert report["slo"]["offered"] == report["offered"]

    def test_verified_reads_restored_after_run(self):
        source, eids = build_source()
        events = flood_events(source, eids, load=4.0, queries=150)
        assert source.verified_reads
        run_open_loop(source, events, max_in_flight=2, queue_limit=8)
        assert source.verified_reads  # ladder toggles are transient

    def test_deterministic_reports(self):
        reports = []
        for _ in range(2):
            source, eids = build_source()
            events = flood_events(source, eids, load=4.0, queries=150)
            reports.append(
                run_open_loop(source, events, max_in_flight=4,
                              queue_limit=16)
            )
        assert reports[0] == reports[1]
