"""Fan-out batching: correctness, round reduction, accounting, errors."""

import threading

from repro import DataSource, ProviderCluster, telemetry
from repro.errors import ProviderError
from repro.service import QueryService
from repro.service.scheduler import FanoutBatcher
from repro.workloads.employees import employees_table


def build_source(rows=60, seed=11, providers=4, threshold=2):
    source = DataSource(ProviderCluster(providers, threshold), seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    source.cluster.network.reset()
    return source


def point_queries(source, count):
    eids = sorted(r["eid"] for r in source.sql("SELECT eid FROM Employees"))
    source.cluster.network.reset()
    return [
        f"SELECT name, salary FROM Employees WHERE eid = {eids[i % len(eids)]}"
        for i in range(count)
    ]


class TestBatchingCorrectness:
    def test_wave_equals_sequential_results(self):
        seq = build_source()
        bat = build_source()
        statements = point_queries(seq, 12)
        point_queries(bat, 0)  # reset accounting identically
        expected = [seq.sql(s) for s in statements]
        service = QueryService(bat, max_in_flight=12, queue_limit=0)
        assert service.run_wave(statements) == expected
        service.close()

    def test_n_queries_one_combined_round(self):
        """The headline: N concurrent point queries ≈ 1 round per provider."""
        seq = build_source()
        bat = build_source()
        statements = point_queries(seq, 8)
        point_queries(bat, 0)
        for s in statements:
            seq.sql(s)
        seq_messages = seq.cluster.network.total_messages
        service = QueryService(bat, max_in_flight=8, queue_limit=0)
        service.run_wave(statements)
        bat_messages = bat.cluster.network.total_messages
        service.close()
        # sequential: 8 queries × k providers × 2 messages; batched: one
        # combined request+response per addressed provider
        assert bat_messages == seq_messages // 8
        assert service.batcher.max_batch == 8
        assert service.batcher.combined_rounds_total == 1

    def test_modelled_latency_reduced(self):
        seq = build_source()
        bat = build_source()
        statements = point_queries(seq, 16)
        point_queries(bat, 0)
        for s in statements:
            seq.sql(s)
        service = QueryService(bat, max_in_flight=16, queue_limit=0)
        service.run_wave(statements)
        service.close()
        assert (
            seq.cluster.network.modelled_seconds
            >= 2.0 * bat.cluster.network.modelled_seconds
        )

    def test_byte_accounting_matches_network_exactly(self):
        """Telemetry's counters must equal the network's own accounting
        even when rounds are combined (bytes recorded once, on dispatch)."""
        source = build_source()
        statements = point_queries(source, 10)
        service = QueryService(source, max_in_flight=10, queue_limit=0)
        network = source.cluster.network
        with telemetry.session(clock=lambda: network.modelled_seconds) as hub:
            service.run_wave(statements)
            assert (
                hub.registry.counter_total("net.bytes") == network.total_bytes
            )
            assert (
                hub.registry.counter_total("net.messages")
                == network.total_messages
            )
            # the batch-size histogram saw the combined round
            assert hub.registry.counter_total("service.combined_rounds") >= 1
        service.close()

    def test_mixed_statements_group_by_quorum_shape(self):
        """Reads (first_k over the quorum) and a full-table scan (all
        providers) must not share a combined round — different targets."""
        source = build_source()
        service = QueryService(source, max_in_flight=4, queue_limit=4)
        eids = sorted(r["eid"] for r in source.sql("SELECT eid FROM Employees"))
        results = {}

        def run(name, text):
            results[name] = service.execute(text)

        threads = [
            threading.Thread(
                target=run,
                args=(i, f"SELECT salary FROM Employees WHERE eid = {eids[i]}"),
            )
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(len(results[i]) == 1 for i in range(3))
        service.close()


class TestErrorIsolation:
    def test_provider_error_hits_only_its_ticket(self):
        """One bad sub-request in a combined round fails one ticket; the
        co-batched query still gets its answer."""
        source = build_source()
        cluster = source.cluster
        batcher = FanoutBatcher(cluster)
        physical = source.physical_name("Employees")
        good_request = {i: {"table": physical} for i in range(cluster.n_providers)}
        bad_request = {i: {"table": "Nope"} for i in range(cluster.n_providers)}
        outcomes = {}
        barrier = threading.Barrier(2)

        def run(name, requests):
            barrier.wait()
            try:
                outcomes[name] = ("ok", batcher.broadcast("row_count", requests))
            except Exception as exc:
                outcomes[name] = ("err", exc)

        batcher.register(2)
        threads = [
            threading.Thread(target=run, args=("good", good_request)),
            threading.Thread(target=run, args=("bad", bad_request)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.finish()
        batcher.finish()
        assert batcher.combined_rounds_total == 1
        kind, payload = outcomes["good"]
        assert kind == "ok"
        assert all(r["count"] == 60 for r in payload.values())
        kind, error = outcomes["bad"]
        assert kind == "err"
        # the provider-side error class survives the batch round trip
        assert isinstance(error, ProviderError)
        assert "Nope" in str(error)

    def test_singleton_dispatches_with_real_method(self):
        """A lone ticket skips the batch envelope entirely."""
        source = build_source()
        batcher = FanoutBatcher(source.cluster)
        physical = source.physical_name("Employees")
        batcher.register()
        responses = batcher.broadcast(
            "row_count",
            {i: {"table": physical} for i in range(source.cluster.n_providers)},
        )
        batcher.finish()
        assert all(r["count"] == 60 for r in responses.values())
        assert batcher.combined_rounds_total == 0
        assert batcher.rounds_total == 1

    def test_finish_flushes_stragglers(self):
        """A query finishing while another is parked must trigger the
        flush — otherwise the parked query waits forever."""
        source = build_source()
        batcher = FanoutBatcher(source.cluster)
        physical = source.physical_name("Employees")
        batcher.register(2)
        result = {}

        def parked():
            result["r"] = batcher.broadcast(
                "row_count", {0: {"table": physical}}
            )
            batcher.finish()

        thread = threading.Thread(target=parked)
        thread.start()
        for _ in range(500):
            if batcher.snapshot()["parked"] == 1:
                break
            threading.Event().wait(0.002)
        # the other registered query never issues a fan-out; its finish
        # must release the parked one
        batcher.finish()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert result["r"][0]["count"] == 60
