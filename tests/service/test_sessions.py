"""Sessions: row-id isolation, per-session stats, lifecycle."""

import threading

import pytest

from repro import DataSource, ProviderCluster
from repro.errors import ServiceError
from repro.service import QueryService
from repro.workloads.employees import EID_HI, employees_table


@pytest.fixture
def service():
    source = DataSource(ProviderCluster(4, 2), seed=3)
    source.outsource_table(employees_table(30, seed=3))
    svc = QueryService(source, max_in_flight=8, queue_limit=8)
    yield svc
    svc.close()


class TestLifecycle:
    def test_open_and_close(self, service):
        session = service.open_session("alice")
        assert session.client_id == "alice"
        assert service.sessions.open_count == 1
        service.close_session(session)
        assert service.sessions.open_count == 0

    def test_closed_session_rejects_queries(self, service):
        session = service.open_session()
        service.close_session(session)
        with pytest.raises(ServiceError, match="closed"):
            session.execute("SELECT eid FROM Employees")

    def test_default_client_ids_unique(self, service):
        a = service.open_session()
        b = service.open_session()
        assert a.session_id != b.session_id
        assert a.client_id != b.client_id

    def test_block_size_validation(self, service):
        with pytest.raises(ServiceError):
            service.open_session(id_block_size=0)


class TestStats:
    def test_reads_and_writes_counted(self, service):
        session = service.open_session("metered")
        rows = session.execute("SELECT eid, salary FROM Employees")
        eid = rows[0]["eid"]
        session.execute(f"UPDATE Employees SET salary = 1 WHERE eid = {eid}")
        session.execute(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            f"VALUES ({EID_HI}, 'NEW', 'ROW', 'ENG', 2)"
        )
        snap = session.stats.snapshot()
        assert snap["queries"] == 3
        assert snap["rows_returned"] == len(rows)
        assert snap["rows_written"] == 2  # one update + one insert
        assert snap["errors"] == 0

    def test_errors_counted(self, service):
        session = service.open_session()
        with pytest.raises(Exception):
            session.execute("SELECT nope FROM Employees")
        assert session.stats.errors == 1

    def test_manager_snapshot_carries_stats(self, service):
        session = service.open_session("snap")
        session.execute("SELECT eid FROM Employees")
        (entry,) = [
            s for s in service.sessions.snapshot() if s["client_id"] == "snap"
        ]
        assert entry["queries"] == 1
        assert entry["rows_returned"] == 30


class TestRowIdIsolation:
    def test_blocks_never_overlap(self, service):
        """Concurrent allocation from many sessions yields disjoint ids."""
        sessions = [service.open_session(id_block_size=8) for _ in range(4)]
        allocated = {s.session_id: [] for s in sessions}

        def grab(session):
            for _ in range(50):
                allocated[session.session_id].extend(
                    session.allocate_row_ids("Employees", 3)
                )

        threads = [
            threading.Thread(target=grab, args=(s,)) for s in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_ids = [i for ids in allocated.values() for i in ids]
        assert len(all_ids) == len(set(all_ids)) == 4 * 50 * 3

    def test_oversized_request_served_in_one_block(self, service):
        session = service.open_session(id_block_size=4)
        ids = session.allocate_row_ids("Employees", 10)
        assert ids == list(range(ids[0], ids[0] + 10))

    def test_concurrent_inserts_do_not_collide(self, service):
        """The acceptance shape: parallel sessions insert, every row lands."""
        per_session = 5
        sessions = [service.open_session(f"w{i}") for i in range(3)]
        errors = []

        def insert_all(index, session):
            try:
                for j in range(per_session):
                    eid = EID_HI - (index * per_session + j)
                    session.execute(
                        "INSERT INTO Employees "
                        "(eid, name, lastname, department, salary) "
                        f"VALUES ({eid}, 'BULK', 'ROW', 'ENG', {index + 1})"
                    )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=insert_all, args=(i, s))
            for i, s in enumerate(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        count = service.source.sql("SELECT COUNT(*) FROM Employees")
        assert count == 30 + 3 * per_session
        for i in range(3):
            assert (
                service.source.sql(
                    f"SELECT COUNT(*) FROM Employees WHERE salary = {i + 1}"
                )
                == per_session
            )
