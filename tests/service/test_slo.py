"""SLO rollup: quantile math, error budget, per-priority accounting."""

import pytest

from repro import telemetry
from repro.service import FINE_BUCKETS, histogram_quantile, slo_report
from repro.service.slo import (
    COMPLETED_METRIC,
    DEGRADED_METRIC,
    SHED_METRIC,
    observe_latency,
)
from repro.telemetry.metrics import MetricsRegistry


class TestQuantiles:
    def make_hist(self, values, buckets=(1.0, 2.0, 4.0)):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=buckets)
        for value in values:
            hist.observe(value)
        return hist

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile(self.make_hist([]), 0.5) == 0.0

    def test_quantile_bounds_validated(self):
        hist = self.make_hist([1.0])
        with pytest.raises(ValueError):
            histogram_quantile(hist, -0.1)
        with pytest.raises(ValueError):
            histogram_quantile(hist, 1.1)

    def test_interpolates_within_bucket(self):
        # 10 observations all in the (1, 2] bucket: p50 lands midway
        hist = self.make_hist([1.5] * 10)
        p50 = histogram_quantile(hist, 0.50)
        assert 1.0 < p50 <= 2.0
        # p100 reaches the bucket's upper bound
        assert histogram_quantile(hist, 1.0) == pytest.approx(2.0)

    def test_quantiles_monotone(self):
        hist = self.make_hist([0.5, 0.7, 1.5, 1.6, 3.0, 3.5])
        quantiles = [
            histogram_quantile(hist, q)
            for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
        ]
        assert quantiles == sorted(quantiles)

    def test_overflow_clamps_to_top_bound(self):
        hist = self.make_hist([100.0] * 5)  # all beyond the last bound
        assert histogram_quantile(hist, 0.99) == 4.0

    def test_fine_buckets_resolve_sub_millisecond(self):
        assert FINE_BUCKETS[0] == pytest.approx(0.0001)
        assert len(FINE_BUCKETS) == 64
        # geometric ladder: strictly increasing, ~25% steps
        assert all(
            b > a for a, b in zip(FINE_BUCKETS, FINE_BUCKETS[1:])
        )


class TestObserveLatency:
    def test_noop_without_telemetry(self):
        observe_latency(0.5, "interactive")  # must not raise

    def test_lands_in_fine_buckets(self):
        with telemetry.session() as hub:
            observe_latency(0.0005, "interactive")
            hist = hub.registry.histogram(
                "slo.latency", buckets=FINE_BUCKETS, priority="interactive"
            )
            assert hist.count == 1
            # fine resolution: p99 within a bucket step of the truth
            assert histogram_quantile(hist, 0.99) < 0.001


class TestReport:
    def test_requires_registry_when_disabled(self):
        with pytest.raises(ValueError):
            slo_report()

    def test_target_validated(self):
        with pytest.raises(ValueError):
            slo_report(MetricsRegistry(), availability_target=1.0)

    def test_empty_registry_is_fully_available(self):
        report = slo_report(MetricsRegistry())
        assert report["availability"] == 1.0
        assert report["budget_consumed"] == 0.0
        assert report["offered"] == 0
        assert set(report["by_priority"]) == {
            "interactive", "batch", "background",
        }

    def test_budget_counts_shed_but_not_degraded(self):
        with telemetry.session():
            for _ in range(90):
                telemetry.count(COMPLETED_METRIC, priority="interactive")
                observe_latency(0.01, "interactive")
            telemetry.count(
                SHED_METRIC, 10, priority="interactive", reason="queue_full"
            )
            telemetry.count(DEGRADED_METRIC, 50, priority="interactive")
            report = slo_report(availability_target=0.9)
        assert report["offered"] == 100
        assert report["availability"] == pytest.approx(0.9)
        # exactly at target: the whole budget is burned, no more
        assert report["budget_consumed"] == pytest.approx(1.0)
        interactive = report["by_priority"]["interactive"]
        assert interactive["completed"] == 90
        assert interactive["shed"] == 10
        assert interactive["shed_queue_full"] == 10
        assert interactive["shed_timeout"] == 0
        assert interactive["degraded"] == 50
        assert interactive["completion_rate"] == pytest.approx(0.9)
        assert interactive["latency_modelled_seconds"]["count"] == 90

    def test_shed_timeout_reason_counted(self):
        with telemetry.session():
            telemetry.count(
                SHED_METRIC, priority="batch", reason="timeout"
            )
            report = slo_report()
        batch = report["by_priority"]["batch"]
        assert batch["shed"] == 1
        assert batch["shed_timeout"] == 1
