"""Plan cache: hits, epoch invalidation on every write path, staleness.

The centrepiece is the *wrong rows* demonstration: cached per-provider
conditions embed share-space values computed from the secret material
current at rewrite time, so replaying a plan across a secret rotation
with invalidation disabled returns incorrect results — which is exactly
what the table-epoch key prevents.
"""

import pytest

from repro import DataSource, ProviderCluster
from repro.client.updates import LazyUpdateBuffer
from repro.errors import ConfigurationError
from repro.service import PlanCache, normalise_sql
from repro.sqlengine.query import Update
from repro.sqlengine.expression import Comparison, ComparisonOp
from repro.workloads.employees import employees_table


@pytest.fixture
def cached_source():
    source = DataSource(ProviderCluster(4, 2), seed=5)
    source.outsource_table(employees_table(50, seed=5))
    source.plan_cache = PlanCache()
    return source


def eids_of(source):
    return sorted(r["eid"] for r in source.sql("SELECT eid FROM Employees"))


class TestCacheMechanics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            PlanCache(0)

    def test_normalise_sql_folds_whitespace_only(self):
        assert normalise_sql("SELECT  *\n FROM T") == "SELECT * FROM T"
        assert normalise_sql("eid = 5") != normalise_sql("eid = 6")

    def test_repeated_query_hits(self, cached_source):
        eid = eids_of(cached_source)[0]
        text = f"SELECT salary FROM Employees WHERE eid = {eid}"
        first = cached_source.sql(text)
        stats0 = cached_source.plan_cache.stats()
        second = cached_source.sql(text)
        stats1 = cached_source.plan_cache.stats()
        assert first == second
        assert stats1["plan_hits"] == stats0["plan_hits"] + 1
        assert stats1["plan_misses"] == stats0["plan_misses"]

    def test_cached_plan_gives_same_rows(self, cached_source):
        """Range query through the cache == the same query uncached."""
        text = "SELECT name FROM Employees WHERE salary BETWEEN 20000 AND 80000"
        via_cache_1 = cached_source.sql(text)
        via_cache_2 = cached_source.sql(text)
        cached_source.plan_cache = None
        uncached = cached_source.sql(text)
        assert via_cache_1 == via_cache_2 == uncached

    def test_lru_eviction(self, cached_source):
        cached_source.plan_cache = PlanCache(capacity=2)
        for eid in eids_of(cached_source)[:4]:
            cached_source.sql(f"SELECT name FROM Employees WHERE eid = {eid}")
        stats = cached_source.plan_cache.stats()
        assert stats["plans_cached"] <= 2
        assert stats["evictions"] >= 2

    def test_different_predicates_different_plans(self, cached_source):
        eids = eids_of(cached_source)
        cached_source.sql(f"SELECT name FROM Employees WHERE eid = {eids[0]}")
        cached_source.sql(f"SELECT name FROM Employees WHERE eid = {eids[1]}")
        stats = cached_source.plan_cache.stats()
        assert stats["plan_misses"] >= 2
        assert stats["plan_hits"] == 0


class TestEpochInvalidation:
    """Every write path must bump the epoch and force a re-rewrite."""

    def run_and_count(self, source, text):
        before = source.plan_cache.stats()
        source.sql(text)
        after = source.plan_cache.stats()
        return before, after

    def test_insert_bumps_epoch_and_misses(self, cached_source):
        text = "SELECT name FROM Employees WHERE salary BETWEEN 0 AND 999999"
        cached_source.sql(text)
        epoch = cached_source.table_epoch("Employees")
        cached_source.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (999999, 'NEW', 'ROW', 'ENG', 1000)"
        )
        assert cached_source.table_epoch("Employees") == epoch + 1
        before, after = self.run_and_count(cached_source, text)
        assert after["plan_misses"] == before["plan_misses"] + 1
        assert after["invalidations"] > 0

    def test_update_bumps_epoch(self, cached_source):
        eid = eids_of(cached_source)[0]
        text = f"SELECT salary FROM Employees WHERE eid = {eid}"
        cached_source.sql(text)
        epoch = cached_source.table_epoch("Employees")
        cached_source.sql(
            f"UPDATE Employees SET salary = 123 WHERE eid = {eid}"
        )
        assert cached_source.table_epoch("Employees") == epoch + 1
        # re-running re-rewrites (miss) and sees the new value
        before, after = self.run_and_count(cached_source, text)
        assert after["plan_misses"] == before["plan_misses"] + 1
        assert cached_source.sql(text) == [{"salary": 123}]

    def test_delete_bumps_epoch(self, cached_source):
        eid = eids_of(cached_source)[0]
        text = f"SELECT salary FROM Employees WHERE eid = {eid}"
        assert len(cached_source.sql(text)) == 1
        epoch = cached_source.table_epoch("Employees")
        cached_source.sql(f"DELETE FROM Employees WHERE eid = {eid}")
        assert cached_source.table_epoch("Employees") == epoch + 1
        assert cached_source.sql(text) == []

    def test_lazy_update_buffer_flush_bumps_epoch(self, cached_source):
        """updates.py bypasses DataSource.update — its flush must still
        invalidate (the satellite's named integration point)."""
        eid = eids_of(cached_source)[0]
        text = f"SELECT salary FROM Employees WHERE eid = {eid}"
        cached_source.sql(text)
        epoch = cached_source.table_epoch("Employees")
        buffer = LazyUpdateBuffer(cached_source)
        buffer.enqueue(
            Update(
                "Employees",
                {"salary": 777},
                Comparison("eid", ComparisonOp.EQ, eid),
            )
        )
        assert cached_source.table_epoch("Employees") == epoch  # not yet
        buffer.flush()
        assert cached_source.table_epoch("Employees") == epoch + 1
        before, after = self.run_and_count(cached_source, text)
        assert after["plan_misses"] == before["plan_misses"] + 1
        assert cached_source.sql(text) == [{"salary": 777}]

    def test_rotation_bumps_every_table(self, cached_source):
        epoch = cached_source.table_epoch("Employees")
        cached_source.rotate_secrets(new_seed=321)
        assert cached_source.table_epoch("Employees") > epoch


class TestStalePlanWouldReturnWrongRows:
    """Why the epoch key is load-bearing, demonstrated by disabling it."""

    def test_stale_plan_across_rotation_is_wrong(self, cached_source):
        text = "SELECT name FROM Employees WHERE salary BETWEEN 30000 AND 70000"
        correct = cached_source.sql(text)
        assert correct  # a non-trivial result set
        # freeze the epoch mechanism AT ITS CURRENT VALUE: lookups keep
        # hitting the already-cached plan, and invalidation is a no-op —
        # i.e. the cache can no longer observe writes
        frozen = cached_source.table_epoch("Employees")
        cached_source.table_epoch = lambda table: frozen
        cached_source.plan_cache.invalidate = lambda table=None: 0
        cached_source.rotate_secrets(new_seed=99)
        stale = cached_source.sql(text)
        # the cached per-provider conditions are in the *old* share space;
        # against re-shared data they select the wrong rows
        assert sorted(r["name"] for r in stale) != sorted(
            r["name"] for r in correct
        )

    def test_epoch_key_prevents_the_wrong_rows(self):
        source = DataSource(ProviderCluster(4, 2), seed=5)
        source.outsource_table(employees_table(50, seed=5))
        source.plan_cache = PlanCache()
        text = "SELECT name FROM Employees WHERE salary BETWEEN 30000 AND 70000"
        correct = source.sql(text)
        source.rotate_secrets(new_seed=99)
        assert sorted(r["name"] for r in source.sql(text)) == sorted(
            r["name"] for r in correct
        )
