"""QueryService end-to-end: overload, oracle equivalence, lifecycle."""

import threading

import pytest

from repro import DataSource, ProviderCluster
from repro.errors import ServiceError, ServiceOverloadedError
from repro.service import QueryService
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.sqlengine.sqlparser import parse_sql
from repro.sqlengine.table import Table
from repro.workloads.employees import EID_HI, employees_table


def build_service(rows=40, seed=13, **kwargs):
    source = DataSource(ProviderCluster(4, 2), seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    kwargs.setdefault("max_in_flight", 8)
    kwargs.setdefault("queue_limit", 8)
    return QueryService(source, **kwargs)


class TestOverload:
    def test_m_in_flight_q_queued_next_rejected(self):
        """The acceptance-criteria shape at the *service* level: M slow
        queries in flight, Q queued, the (M+Q+1)-th raises."""
        M, Q = 2, 1
        service = build_service(max_in_flight=M, queue_limit=Q)
        release = threading.Event()
        running = threading.Semaphore(0)
        inner_execute = service.source.execute

        def slow_execute(statement):
            running.release()
            assert release.wait(timeout=5.0)
            return inner_execute(statement)

        service.source.execute = slow_execute
        text = "SELECT eid FROM Employees"
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda: outcomes.append(service.execute(text))
            )
            for _ in range(M + Q)
        ]
        for t in threads:
            t.start()
        for _ in range(M):
            assert running.acquire(timeout=5.0)  # M genuinely executing
        for _ in range(200):
            if service.admission.queued == Q:
                break
            threading.Event().wait(0.005)
        assert service.admission.queued == Q
        rejected_before = service.admission.rejected_total
        with pytest.raises(ServiceOverloadedError):
            service.execute(text)
        assert service.admission.rejected_total == rejected_before + 1
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert len(outcomes) == M + Q
        service.source.execute = inner_execute
        service.close()

    def test_session_records_rejection(self):
        service = build_service(max_in_flight=1, queue_limit=0)
        blocker = threading.Event()
        started = threading.Event()
        inner_execute = service.source.execute

        def slow_execute(statement):
            started.set()
            assert blocker.wait(timeout=5.0)
            return inner_execute(statement)

        service.source.execute = slow_execute
        session = service.open_session("impatient")
        thread = threading.Thread(
            target=service.execute, args=("SELECT eid FROM Employees",)
        )
        thread.start()
        assert started.wait(timeout=5.0)
        with pytest.raises(ServiceOverloadedError):
            session.execute("SELECT eid FROM Employees")
        assert session.stats.rejected == 1
        assert session.stats.errors == 1
        blocker.set()
        thread.join(timeout=5.0)
        service.source.execute = inner_execute
        service.close()


class TestOracleEquivalence:
    def test_concurrent_mixed_sessions_equal_sequential_plaintext(self):
        """Concurrent sessions doing reads+writes over *disjoint* eid
        ranges must leave the database in exactly the state a sequential
        plaintext run produces."""
        rows = 36
        table = employees_table(rows, seed=21)
        service = build_service(rows=rows, seed=21)
        catalog = Catalog()
        catalog.add_table(Table(table.schema, table.rows()))
        oracle = PlaintextExecutor(catalog)

        eids = sorted(r["eid"] for r in table.rows())
        n_sessions = 4
        chunks = [eids[i::n_sessions] for i in range(n_sessions)]

        def statements_for(index):
            out = []
            for position, eid in enumerate(chunks[index][:5]):
                out.append(
                    f"UPDATE Employees SET salary = "
                    f"{1000 * (index + 1) + position} WHERE eid = {eid}"
                )
                out.append(f"SELECT salary FROM Employees WHERE eid = {eid}")
            out.append(
                "INSERT INTO Employees "
                "(eid, name, lastname, department, salary) "
                f"VALUES ({EID_HI - index}, 'S{chr(65 + index)}', 'NEW', 'ENG', "
                f"{90_000 + index})"
            )
            return out

        workloads = [statements_for(i) for i in range(n_sessions)]
        for statements in workloads:  # the sequential plaintext oracle
            for text in statements:
                oracle.execute(parse_sql(text))

        errors = []

        def run_session(index):
            session = service.open_session(f"client-{index}")
            try:
                for text in workloads[index]:
                    session.execute(text)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=run_session, args=(i,))
            for i in range(n_sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        probe = "SELECT eid, name, salary FROM Employees ORDER BY eid"
        assert service.source.sql(probe) == oracle.execute(parse_sql(probe))
        service.close()


class TestWave:
    def test_wave_rejects_writes(self):
        service = build_service()
        with pytest.raises(ServiceError, match="read-only"):
            service.run_wave(
                ["DELETE FROM Employees WHERE eid = 1"]
            )
        service.close()

    def test_wave_larger_than_capacity_rejected(self):
        service = build_service(max_in_flight=2)
        with pytest.raises(ServiceError, match="max_in_flight"):
            service.run_wave(["SELECT eid FROM Employees"] * 3)
        service.close()

    def test_empty_wave(self):
        service = build_service()
        assert service.run_wave([]) == []
        service.close()


class TestLifecycle:
    def test_close_restores_source(self):
        source = DataSource(ProviderCluster(4, 2), seed=13)
        source.outsource_table(employees_table(20, seed=13))
        inner_cluster = source.cluster
        previous_cache = source.plan_cache
        with QueryService(source) as service:
            assert source.cluster is not inner_cluster  # batching installed
            assert source.plan_cache is service.plan_cache
        assert source.cluster is inner_cluster
        assert source.plan_cache is previous_cache
        # the detached source still works
        assert source.sql("SELECT COUNT(*) FROM Employees") == 20

    def test_closed_service_rejects_everything(self):
        service = build_service()
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.execute("SELECT eid FROM Employees")
        with pytest.raises(ServiceError, match="closed"):
            service.open_session()

    def test_report_shape(self):
        service = build_service()
        session = service.open_session("r")
        session.execute("SELECT eid FROM Employees")
        report = service.report()
        assert report["service"]["completed"] == 1
        assert report["admission"]["admitted_total"] == 1
        assert "rounds_total" in report["batcher"]
        assert "plan_hits" in report["plan_cache"]
        assert report["sessions"][0]["client_id"] == "r"
        service.close()

    def test_batching_disabled_still_correct(self):
        service = build_service(batching=False)
        source = service.source
        direct = sorted(r["eid"] for r in source.sql("SELECT eid FROM Employees"))
        via = sorted(
            r["eid"] for r in service.execute("SELECT eid FROM Employees")
        )
        assert via == direct
        service.close()
