"""Admission control: bounds, backpressure, and the reject counter."""

import threading

import pytest

from repro import telemetry
from repro.errors import ConfigurationError, ServiceOverloadedError
from repro.service import AdmissionController


def fill_queue(controller, count):
    """Spawn ``count`` threads that block in acquire(); wait until queued."""
    started = []
    threads = []
    for _ in range(count):
        thread = threading.Thread(target=lambda: (controller.acquire(), started.append(1)))
        thread.start()
        threads.append(thread)
    deadline = threading.Event()
    for _ in range(500):
        if controller.queued == count:
            break
        deadline.wait(0.005)
    assert controller.queued == count
    return threads


class TestBounds:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0, 1)
        with pytest.raises(ConfigurationError):
            AdmissionController(1, -1)

    def test_admits_up_to_max_in_flight(self):
        controller = AdmissionController(max_in_flight=3, queue_limit=0)
        for _ in range(3):
            controller.acquire()
        assert controller.in_flight == 3
        assert controller.admitted_total == 3

    def test_release_requires_acquire(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(1, 0).release()


class TestRejection:
    def test_m_plus_q_plus_first_query_rejected(self):
        """The acceptance-criteria shape: M in flight, Q queued, the
        (M+Q+1)-th concurrent query is rejected and the counter moves."""
        M, Q = 3, 2
        controller = AdmissionController(max_in_flight=M, queue_limit=Q)
        with telemetry.session() as hub:
            for _ in range(M):
                controller.acquire()
            queued_threads = fill_queue(controller, Q)
            assert controller.in_flight == M
            assert controller.queued == Q
            with pytest.raises(ServiceOverloadedError) as excinfo:
                controller.acquire()
            assert controller.rejected_total == 1
            assert hub.registry.counter_total("service.rejected") == 1
            # the error names both limits so callers can size retry policy
            assert str(M) in str(excinfo.value)
            assert str(Q) in str(excinfo.value)
            # drain: each release wakes one queued thread, which admits
            for _ in range(M):
                controller.release()
            for thread in queued_threads:
                thread.join(timeout=2.0)
            assert controller.in_flight == Q  # the woken queued queries
            for _ in range(Q):
                controller.release()
        assert controller.in_flight == 0
        assert controller.queued == 0
        assert controller.admitted_total == M + Q

    def test_zero_queue_rejects_immediately(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=0)
        controller.acquire()
        with pytest.raises(ServiceOverloadedError):
            controller.acquire()
        controller.release()
        controller.acquire()  # slot free again

    def test_queue_wait_timeout_rejects(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        with pytest.raises(ServiceOverloadedError):
            controller.acquire(timeout=0.01)
        assert controller.rejected_total == 1
        assert controller.queued == 0  # the waiter cleaned up after itself

    def test_queued_query_runs_after_release(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        (thread,) = fill_queue(controller, 1)
        controller.release()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert controller.in_flight == 1
        assert controller.rejected_total == 0

    def test_snapshot_shape(self):
        controller = AdmissionController(2, 4)
        controller.acquire()
        snap = controller.snapshot()
        assert snap["in_flight"] == 1
        assert snap["max_in_flight"] == 2
        assert snap["queue_limit"] == 4
        assert snap["admitted_total"] == 1
        assert snap["rejected_total"] == 0
