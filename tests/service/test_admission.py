"""Admission control: bounds, backpressure, and the reject counter."""

import threading
import time

import pytest

from repro import telemetry
from repro.errors import ConfigurationError, ServiceOverloadedError
from repro.service import (
    PRIORITY_BACKGROUND,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    priority_level,
    priority_name,
)


def fill_queue(controller, count):
    """Spawn ``count`` threads that block in acquire(); wait until queued."""
    started = []
    threads = []
    for _ in range(count):
        thread = threading.Thread(target=lambda: (controller.acquire(), started.append(1)))
        thread.start()
        threads.append(thread)
    deadline = threading.Event()
    for _ in range(500):
        if controller.queued == count:
            break
        deadline.wait(0.005)
    assert controller.queued == count
    return threads


class TestBounds:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0, 1)
        with pytest.raises(ConfigurationError):
            AdmissionController(1, -1)

    def test_admits_up_to_max_in_flight(self):
        controller = AdmissionController(max_in_flight=3, queue_limit=0)
        for _ in range(3):
            controller.acquire()
        assert controller.in_flight == 3
        assert controller.admitted_total == 3

    def test_release_requires_acquire(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(1, 0).release()


class TestRejection:
    def test_m_plus_q_plus_first_query_rejected(self):
        """The acceptance-criteria shape: M in flight, Q queued, the
        (M+Q+1)-th concurrent query is rejected and the counter moves."""
        M, Q = 3, 2
        controller = AdmissionController(max_in_flight=M, queue_limit=Q)
        with telemetry.session() as hub:
            for _ in range(M):
                controller.acquire()
            queued_threads = fill_queue(controller, Q)
            assert controller.in_flight == M
            assert controller.queued == Q
            with pytest.raises(ServiceOverloadedError) as excinfo:
                controller.acquire()
            assert controller.rejected_total == 1
            assert hub.registry.counter_total("service.rejected") == 1
            # the error names both limits so callers can size retry policy
            assert str(M) in str(excinfo.value)
            assert str(Q) in str(excinfo.value)
            # drain: each release wakes one queued thread, which admits
            for _ in range(M):
                controller.release()
            for thread in queued_threads:
                thread.join(timeout=2.0)
            assert controller.in_flight == Q  # the woken queued queries
            for _ in range(Q):
                controller.release()
        assert controller.in_flight == 0
        assert controller.queued == 0
        assert controller.admitted_total == M + Q

    def test_zero_queue_rejects_immediately(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=0)
        controller.acquire()
        with pytest.raises(ServiceOverloadedError):
            controller.acquire()
        controller.release()
        controller.acquire()  # slot free again

    def test_queue_wait_timeout_rejects(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        with pytest.raises(ServiceOverloadedError):
            controller.acquire(timeout=0.01)
        assert controller.rejected_total == 1
        assert controller.queued == 0  # the waiter cleaned up after itself

    def test_queued_query_runs_after_release(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        (thread,) = fill_queue(controller, 1)
        controller.release()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert controller.in_flight == 1
        assert controller.rejected_total == 0

    def test_snapshot_shape(self):
        controller = AdmissionController(2, 4)
        controller.acquire()
        snap = controller.snapshot()
        assert snap["in_flight"] == 1
        assert snap["max_in_flight"] == 2
        assert snap["queue_limit"] == 4
        assert snap["admitted_total"] == 1
        assert snap["rejected_total"] == 0


class TestPriorityHelpers:
    def test_levels_and_names_round_trip(self):
        assert priority_level(None) == PRIORITY_INTERACTIVE
        assert priority_level("interactive") == PRIORITY_INTERACTIVE
        assert priority_level("batch") == PRIORITY_BATCH
        assert priority_level("background") == PRIORITY_BACKGROUND
        assert priority_level(1) == 1
        assert priority_name(PRIORITY_BATCH) == "batch"

    def test_unknown_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            priority_level("urgent")
        with pytest.raises(ConfigurationError):
            priority_level(3)
        with pytest.raises(ConfigurationError):
            priority_level(-1)

    def test_queue_allowance_shrinks_with_priority(self):
        controller = AdmissionController(1, queue_limit=12)
        assert controller.queue_limit_for(PRIORITY_INTERACTIVE) == 12
        assert controller.queue_limit_for(PRIORITY_BATCH) == 8
        assert controller.queue_limit_for(PRIORITY_BACKGROUND) == 4

    def test_background_shed_first(self):
        """Once the queue passes the background allowance, background
        arrivals are rejected while interactive ones still queue."""
        controller = AdmissionController(max_in_flight=1, queue_limit=6)
        controller.acquire()
        threads = fill_queue(controller, 2)  # interactive waiters
        with pytest.raises(ServiceOverloadedError):
            controller.acquire(priority="background")  # allowance 2 full
        # interactive still has room: a short-timeout wait times out
        # rather than being rejected outright at enqueue time
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.acquire(priority="interactive", timeout=0.02)
        assert "no slot freed" in str(excinfo.value)
        for _ in range(3):
            controller.release()
        for thread in threads:
            thread.join(timeout=2.0)

    def test_release_grants_highest_priority_first(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=6)
        controller.acquire()
        admitted = []
        order = ["background", "batch", "interactive"]
        threads = []
        for name in order:  # worst priority enqueues first
            thread = threading.Thread(
                target=lambda n=name: (
                    controller.acquire(priority=n),
                    admitted.append(n),
                )
            )
            thread.start()
            threads.append(thread)
            for _ in range(500):
                if controller.queued == len(threads):
                    break
                time.sleep(0.002)
        for _ in range(3):
            controller.release()
            time.sleep(0.02)
        for thread in threads:
            thread.join(timeout=2.0)
        assert admitted == ["interactive", "batch", "background"]
        # each release handed its slot straight on; one remains held
        assert controller.in_flight == 1
        controller.release()


class TestTimeoutSemantics:
    def test_timeout_zero_admits_when_free(self):
        controller = AdmissionController(max_in_flight=1, queue_limit=4)
        controller.acquire(timeout=0)  # free slot: no queueing needed
        assert controller.in_flight == 1
        controller.release()

    def test_timeout_zero_rejects_without_queueing(self):
        """timeout=0 is a non-blocking probe: saturated means an
        immediate rejection, never a queue entry."""
        controller = AdmissionController(max_in_flight=1, queue_limit=4)
        controller.acquire()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.acquire(timeout=0)
        assert "timeout=0" in str(excinfo.value)
        assert controller.queued == 0
        assert controller.rejected_total == 1
        controller.release()

    def test_spurious_wakeups_do_not_extend_deadline(self):
        """Regression for the deadline-drift bug: the old loop passed
        the *full* timeout to every ``Condition.wait``, so a waiter
        woken repeatedly (without being granted) restarted its clock
        each time and could over-wait without bound.  Here a pounder
        thread notifies the waiter's condition every 20ms — far more
        often than the 250ms timeout — and the waiter must still time
        out on schedule.  On the pre-fix code path this provably hangs:
        every wakeup re-arms a fresh 250ms wait, so the waiter never
        reaches its deadline while the pounder runs (>= 2s here).
        """
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        stop = threading.Event()

        def pound():
            # wake the queued ticket's condition without granting it
            while not stop.is_set():
                with controller._lock:
                    for _, _, ticket in controller._heap:
                        if not ticket.granted and not ticket.abandoned:
                            ticket.cond.notify()
                time.sleep(0.02)

        pounder = threading.Thread(target=pound)
        pounder.start()
        try:
            start = time.monotonic()
            with pytest.raises(ServiceOverloadedError):
                controller.acquire(timeout=0.25)
            elapsed = time.monotonic() - start
        finally:
            stop.set()
            pounder.join(timeout=2.0)
        assert elapsed < 2.0, (
            f"waiter over-waited its 0.25s deadline by {elapsed - 0.25:.2f}s "
            f"— full-timeout restart per wakeup (deadline drift)"
        )
        assert controller.timed_out_total == 1
        assert controller.queued == 0
        controller.release()

    def test_grant_racing_timeout_keeps_the_slot(self):
        """Regression for the lost-wakeup hazard: a grant that lands
        while the waiter is timing out must not be dropped.  The waiter
        is forced past its deadline while the lock is held, then the
        slot is granted to it before it can re-check; pre-fix the waiter
        raised overload anyway and the granted slot was stranded."""
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        controller.acquire()
        outcome = {}

        def wait_briefly():
            try:
                controller.acquire(timeout=0.05)
                outcome["admitted"] = True
            except ServiceOverloadedError:
                outcome["admitted"] = False

        waiter = threading.Thread(target=wait_briefly)
        waiter.start()
        for _ in range(500):
            if controller.queued == 1:
                break
            time.sleep(0.002)
        assert controller.queued == 1
        with controller._lock:
            # hold the lock past the waiter's deadline so its timed-out
            # wait() blocks re-acquiring, then grant it the freed slot
            time.sleep(0.1)
            controller._release_locked()
        waiter.join(timeout=2.0)
        assert outcome == {"admitted": True}, (
            "grant racing the timeout was discarded (lost wakeup)"
        )
        assert controller.in_flight == 1  # the waiter holds the slot
        controller.release()
        assert controller.in_flight == 0
        # nothing stranded: the slot is immediately acquirable
        controller.acquire(timeout=0)
        controller.release()


class TestConcurrentAccounting:
    def test_counters_balance_under_barrier_storm(self):
        """queued_peak / admitted / rejected stay consistent when many
        threads hit acquire() simultaneously from a barrier."""
        M, Q, N = 2, 4, 12
        controller = AdmissionController(max_in_flight=M, queue_limit=Q)
        barrier = threading.Barrier(N)
        results = []
        results_lock = threading.Lock()

        def storm():
            barrier.wait()
            try:
                controller.acquire(timeout=2.0)
            except ServiceOverloadedError:
                with results_lock:
                    results.append("rejected")
                return
            time.sleep(0.01)
            controller.release()
            with results_lock:
                results.append("admitted")

        threads = [threading.Thread(target=storm) for _ in range(N)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(results) == N
        snap = controller.snapshot()
        admitted = results.count("admitted")
        rejected = results.count("rejected")
        assert snap["admitted_total"] == admitted
        assert snap["rejected_total"] == rejected
        assert admitted + rejected == N
        # more arrivals than M+Q guarantees queueing and some shedding
        assert admitted >= M + Q
        assert 0 < snap["queued_peak"] <= Q
        assert snap["in_flight"] == 0
        assert snap["queued"] == 0

    def test_release_vs_timeout_races_never_strand_slots(self):
        """Repeatedly race release() against a short queue-wait timeout;
        whatever the interleaving, the slot must end up either with the
        waiter or back in the free pool — never stranded."""
        controller = AdmissionController(max_in_flight=1, queue_limit=1)
        for round_no in range(50):
            controller.acquire()
            outcome = {}

            def wait_briefly():
                try:
                    controller.acquire(timeout=0.005)
                    outcome["admitted"] = True
                except ServiceOverloadedError:
                    outcome["admitted"] = False

            waiter = threading.Thread(target=wait_briefly)
            waiter.start()
            for _ in range(500):
                if controller.queued == 1 or not waiter.is_alive():
                    break
                time.sleep(0.0005)
            # jitter the release around the waiter's deadline
            time.sleep(0.005 * (round_no % 3) / 2)
            controller.release()
            waiter.join(timeout=2.0)
            assert not waiter.is_alive()
            if outcome["admitted"]:
                controller.release()
            # the invariant: a fresh non-blocking acquire always works
            controller.acquire(timeout=0)
            controller.release()
        snap = controller.snapshot()
        assert snap["in_flight"] == 0
        assert snap["queued"] == 0
        assert snap["timed_out_total"] == snap["rejected_total"]
