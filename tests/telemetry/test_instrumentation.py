"""End-to-end instrumentation tests: spans, counter exactness, no-op-ness.

The three properties ISSUE.md pins:

* the span tree mirrors the pipeline (query → select → rewrite →
  fan_out → rpc per provider → reconstruct);
* telemetry's per-link byte/message counters are *exactly* the
  cluster's own network accounting (``NetworkStats.by_link``);
* running with telemetry disabled changes no query results, and the
  enabled run returns the same rows as the disabled one.
"""

import json

from repro import DataSource, ProviderCluster, telemetry
from repro.workloads.employees import employees_table

QUERY = (
    "SELECT name, salary FROM Employees "
    "WHERE salary BETWEEN 10000 AND 60000 ORDER BY salary LIMIT 7"
)


def build_source(dispatch="parallel", rows=60, seed=11):
    cluster = ProviderCluster(n_providers=5, threshold=3, dispatch=dispatch)
    source = DataSource(cluster, seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    cluster.reset_accounting()
    return source


def run_traced(source, sql=QUERY):
    network = source.cluster.network
    with telemetry.session(clock=lambda: network.modelled_seconds) as hub:
        rows = source.sql(sql)
        return rows, hub.export(), hub


class TestSpanTree:
    def test_pipeline_span_nesting(self):
        source = build_source()
        _, _, hub = run_traced(source)
        # hub outlives the session; inspect the collected trace
        root = hub.tracer.last_trace()
        assert root.name == "query"
        assert root.attributes["sql"] == QUERY
        (select,) = root.children
        assert select.name == "select"
        child_names = [c.name for c in select.children]
        assert child_names == ["rewrite", "fan_out", "reconstruct"]
        fan_out = select.children[1]
        rpcs = fan_out.find("rpc")
        assert len(rpcs) == fan_out.attributes["addressed"] == 3
        for rpc in rpcs:
            assert rpc.attributes["outcome"] == "ok"
            assert rpc.attributes["request_bytes"] > 0
            assert rpc.attributes["response_bytes"] > 0
        assert root.start <= select.start <= fan_out.start
        assert fan_out.end <= select.end <= root.end

    def test_write_and_join_spans_exist(self):
        source = build_source()
        with telemetry.session() as hub:
            source.sql("UPDATE Employees SET salary = 12345 WHERE eid = 1")
            assert hub.tracer.last_trace().find("update")
            source.sql("DELETE FROM Employees WHERE eid = 2")
            assert hub.tracer.last_trace().find("delete")


class TestCounterExactness:
    def test_per_link_counters_match_network_accounting(self):
        source = build_source()
        network = source.cluster.network
        _, _, hub = run_traced(source)
        assert network.stats.by_link, "query produced no traffic?"
        for (src, dst), endpoint in network.stats.by_link.items():
            assert hub.registry.counter_value(
                "net.bytes", src=src, dst=dst
            ) == endpoint.payload_bytes
            assert hub.registry.counter_value(
                "net.messages", src=src, dst=dst
            ) == endpoint.messages
        assert hub.registry.counter_total("net.bytes") == network.total_bytes
        assert (
            hub.registry.counter_total("net.messages")
            == network.total_messages
        )

    def test_exactness_holds_under_sequential_dispatch(self):
        source = build_source(dispatch="sequential")
        network = source.cluster.network
        _, _, hub = run_traced(source)
        assert hub.registry.counter_total("net.bytes") == network.total_bytes

    def test_provider_request_counters_match_served(self):
        source = build_source()
        _, _, hub = run_traced(source)
        assert hub.registry.counter_total("provider.requests") == sum(
            p.requests_served for p in source.cluster.providers
        )
        for provider in source.cluster.providers:
            assert hub.registry.counter_value(
                "provider.requests", provider=provider.name, method="select"
            ) == provider.requests_served

    def test_kernel_batches_observed(self):
        from repro.sim.rng import DeterministicRNG
        from repro.workloads.employees import managers_table

        cluster = ProviderCluster(n_providers=5, threshold=3)
        source = DataSource(cluster, seed=11)
        employees = employees_table(40, seed=11)
        source.outsource_table(employees)
        source.outsource_table(managers_table(employees, 0.3, seed=11))
        cluster.reset_accounting()
        with telemetry.session() as hub:
            # password is randomly shared → modular batch reconstruction
            rows = source.sql("SELECT password FROM Managers")
            assert rows
            # the batched split kernel (as the hot-path benchmark drives it)
            scheme = source.sharing("Managers").random_scheme
            scheme.split_batch([1, 2, 3], DeterministicRNG(0, "t"))
            histograms = hub.export()["metrics"]["histograms"]
        assert histograms["kernels.batch_reconstruct_cells"]["count"] >= 1
        split = histograms["kernels.split_batch_values"]
        assert split["count"] == 1 and split["sum"] == 3


class TestDisabledIsInert:
    def test_results_identical_enabled_vs_disabled(self, no_telemetry):
        baseline = build_source().sql(QUERY)
        traced_rows, _, _ = run_traced(build_source())
        assert traced_rows == baseline

    def test_disabled_run_leaves_no_hub(self, no_telemetry):
        source = build_source()
        source.sql(QUERY)
        assert telemetry.hub() is None

    def test_network_accounting_unchanged_by_telemetry(self, no_telemetry):
        disabled = build_source()
        disabled.sql(QUERY)
        enabled = build_source()
        run_traced(enabled)
        assert (
            disabled.cluster.network.stats.snapshot()
            == enabled.cluster.network.stats.snapshot()
        )


class TestDeterminism:
    def test_identical_runs_export_identically(self):
        exports = []
        for _ in range(2):
            _, export, _ = run_traced(build_source())
            exports.append(json.dumps(export, sort_keys=True))
        assert exports[0] == exports[1]

    def test_modelled_clock_times_the_trace(self):
        source = build_source()
        network = source.cluster.network
        _, _, hub = run_traced(source)
        root = hub.tracer.last_trace()
        assert root.start == 0.0
        assert root.end == network.modelled_seconds > 0.0
