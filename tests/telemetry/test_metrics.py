"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json
import threading

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", x="1") is registry.counter("c", x="1")

    def test_label_sets_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes", src="client", dst="DAS1").inc(10)
        registry.counter("net.bytes", src="client", dst="DAS2").inc(20)
        assert registry.counter_value("net.bytes", src="client", dst="DAS1") == 10
        assert registry.counter_value("net.bytes", src="client", dst="DAS2") == 20
        assert registry.counter_total("net.bytes") == 30

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter_value("c", b="2", a="1") == 1

    def test_untouched_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("ghost") == 0

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")
        with pytest.raises(ValueError):
            registry.histogram("dual")

    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauges:
    def test_set_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2


class TestHistograms:
    def test_observations_land_in_correct_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # counts are per-bucket (not cumulative): <=1.0, <=10.0, overflow
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(106.5)
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("lat").mean == 0.0

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=())


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_able(self):
        registry = MetricsRegistry()
        registry.counter("b.metric", z="2").inc(2)
        registry.counter("b.metric", a="1").inc(1)
        registry.counter("a.metric").inc(9)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.002)
        snap = registry.snapshot()
        json.dumps(snap)  # must be serialisable as-is
        keys = list(snap["counters"])
        assert keys == sorted(keys)
        assert snap["counters"]["a.metric"] == 9
        assert snap["counters"]["b.metric{a=1}"] == 1
        assert snap["counters"]["b.metric{z=2}"] == 2
        assert snap["gauges"]["g"] == 1.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["buckets"] == {"le_0.005": 1}

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.counter_value("c") == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
