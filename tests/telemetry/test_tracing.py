"""Unit tests for tracing spans, clocks, and the module-level switch."""

import json

import pytest

from repro import telemetry
from repro.telemetry.tracing import NULL_SPAN, Span, StepClock, Tracer


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query") as query:
            with tracer.span("rewrite"):
                pass
            with tracer.span("fan_out"):
                with tracer.span("rpc", provider="DAS1"):
                    pass
                with tracer.span("rpc", provider="DAS2"):
                    pass
        assert [child.name for child in query.children] == ["rewrite", "fan_out"]
        assert [s.name for s in query.walk()] == [
            "query", "rewrite", "fan_out", "rpc", "rpc"
        ]
        assert len(query.find("rpc")) == 2
        assert query.find("rpc")[1].attributes["provider"] == "DAS2"

    def test_step_clock_orders_starts_and_ends(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start < inner.start < inner.end < outer.end
        assert outer.duration == outer.end - outer.start

    def test_finished_roots_are_collected(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [t.name for t in tracer.traces] == ["a", "b"]
        assert tracer.last_trace().name == "b"

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(max_traces=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [t.name for t in tracer.traces] == ["b", "c"]
        assert tracer.dropped_traces == 1

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        root = tracer.last_trace()
        assert root.error == "ValueError"
        assert root.end is not None  # span closed despite the raise

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is None

    def test_to_dict_is_json_able_and_sorted(self):
        tracer = Tracer()
        with tracer.span("query", z=1, a=2) as span:
            span.set(m=3)
        data = tracer.last_trace().to_dict()
        json.dumps(data)
        assert list(data["attributes"]) == ["a", "m", "z"]
        assert data["duration"] == data["end"] - data["start"]

    def test_custom_clock_times_spans(self):
        readings = iter([10.0, 20.0])
        tracer = Tracer(clock=lambda: next(readings))
        with tracer.span("s") as span:
            pass
        assert (span.start, span.end) == (10.0, 20.0)

    def test_reset_clears_traces(self):
        tracer = Tracer(max_traces=1)
        for _ in range(3):
            with tracer.span("x"):
                pass
        tracer.reset()
        assert tracer.traces == [] and tracer.dropped_traces == 0

    def test_bad_max_traces_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


class TestStepClock:
    def test_monotonically_increases(self):
        clock = StepClock()
        assert [clock() for _ in range(3)] == [1.0, 2.0, 3.0]


class TestSwitch:
    def test_disabled_by_default_outside_session(self, no_telemetry):
        assert not telemetry.is_enabled()
        assert telemetry.hub() is None

    def test_disabled_helpers_are_no_ops(self, no_telemetry):
        telemetry.count("ghost")
        telemetry.observe("ghost.lat", 1.0)
        telemetry.set_gauge("ghost.depth", 2)
        telemetry.annotate(anything="goes")
        with telemetry.span("ghost") as span:
            assert span is NULL_SPAN
            span.set(still="fine")
        assert telemetry.hub() is None

    def test_session_enables_and_restores(self):
        before = telemetry.hub()
        with telemetry.session() as hub:
            assert telemetry.is_enabled()
            assert telemetry.hub() is hub
            telemetry.count("c", 3)
            assert hub.registry.counter_value("c") == 3
        assert telemetry.hub() is before

    def test_session_restores_on_error(self):
        before = telemetry.hub()
        with pytest.raises(RuntimeError):
            with telemetry.session():
                raise RuntimeError
        assert telemetry.hub() is before

    def test_nested_session_is_last_wins(self):
        with telemetry.session() as outer:
            telemetry.count("c")
            with telemetry.session() as inner:
                telemetry.count("c")
                assert telemetry.hub() is inner
            assert telemetry.hub() is outer
            assert outer.registry.counter_value("c") == 1
            assert inner.registry.counter_value("c") == 1

    def test_enable_disable(self, no_telemetry):
        hub = telemetry.enable()
        try:
            assert telemetry.hub() is hub
        finally:
            telemetry.disable()
        assert not telemetry.is_enabled()

    def test_annotate_hits_innermost_span(self):
        with telemetry.session() as hub:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    telemetry.annotate(tag="here")
            root = hub.tracer.last_trace()
        assert root.children[0].attributes == {"tag": "here"}
        assert "tag" not in root.attributes

    def test_export_shape(self):
        with telemetry.session() as hub:
            telemetry.count("c", 2, lane="a")
            telemetry.observe("h", 0.5)
            with telemetry.span("root"):
                pass
            export = hub.export()
        json.dumps(export)
        assert export["metrics"]["counters"] == {"c{lane=a}": 2}
        assert export["traces"][0]["name"] == "root"
        assert export["dropped_traces"] == 0


class TestNullSpan:
    def test_set_is_noop(self):
        NULL_SPAN.set(a=1)  # must not raise or store anything

    def test_real_span_duration_before_close(self):
        span = Span("open", {}, start=1.0)
        assert span.duration == 0.0
