"""Telemetry test fixtures."""

import pytest

import repro.telemetry as telemetry_module


@pytest.fixture
def no_telemetry():
    """Force telemetry off for one test, restoring the prior hub after.

    Lets disabled-path tests hold even when an outer harness runs the
    whole suite under a globally enabled hub (the "suite passes with
    telemetry enabled" acceptance check).
    """
    previous = telemetry_module._HUB
    telemetry_module._HUB = None
    try:
        yield
    finally:
        telemetry_module._HUB = previous
