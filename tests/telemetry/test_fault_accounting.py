"""Fault/byte accounting consistency across dispatch modes (ISSUE §fix).

The regression this PR fixes: rounds that fail part-way must account the
same traffic under ``dispatch="sequential"`` and ``dispatch="parallel"``.
Both modes now drain the whole round — every addressed provider's
request bytes, and every successful response — before the first
provider-side error is re-raised, and the parallel path advances the
modelled clock before raising.  Telemetry mirrors those bytes exactly in
both modes, faulted providers included.
"""

import pytest

from repro import DataSource, ProviderCluster, telemetry
from repro.errors import IntegrityError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.workloads.employees import employees_table

QUERY = "SELECT name, salary FROM Employees WHERE salary >= 20000"


def build_source(dispatch, rows=40, seed=7):
    cluster = ProviderCluster(n_providers=5, threshold=3, dispatch=dispatch)
    source = DataSource(cluster, seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    cluster.network.reset()
    return source


class TestCrashRoutedAround:
    def test_bytes_identical_across_dispatch_modes(self):
        """CRASH + first_k routing must not skew byte accounting by mode."""
        results = {}
        for dispatch in ("sequential", "parallel"):
            source = build_source(dispatch)
            source.cluster.inject_fault(0, Fault(FailureMode.CRASH))
            with telemetry.session() as hub:
                rows = source.sql(QUERY)
                telemetry_bytes = hub.registry.counter_total("net.bytes")
            network = source.cluster.network
            assert telemetry_bytes == network.total_bytes
            results[dispatch] = (rows, network.stats.snapshot())
        assert results["sequential"] == results["parallel"]

    def test_crashed_provider_request_bytes_still_counted(self):
        """Addressing a crashed provider spends request bytes (both modes)."""
        snapshots = {}
        for dispatch in ("sequential", "parallel"):
            source = build_source(dispatch)
            cluster = source.cluster
            cluster.inject_fault(1, Fault(FailureMode.CRASH))
            with telemetry.session() as hub:
                responses = cluster.call_all(
                    "row_count",
                    {i: {"table": "Employees"} for i in range(5)},
                    minimum=3,
                    quorum="first_k",
                )
                assert sorted(responses) == [0, 2, 3, 4]
                crashed = cluster.providers[1].name
                sent = hub.registry.counter_value(
                    "net.bytes", src="client", dst=crashed
                )
                back = hub.registry.counter_value(
                    "net.bytes", src=crashed, dst="client"
                )
                assert sent > 0 and back == 0
                assert hub.registry.counter_value(
                    "fanout.unavailable", provider=crashed
                ) == 1
                assert (
                    hub.registry.counter_total("net.bytes")
                    == cluster.network.total_bytes
                )
            snapshots[dispatch] = cluster.network.stats.snapshot()
        assert snapshots["sequential"] == snapshots["parallel"]


class TestProviderErrorDrain:
    def test_error_rounds_account_identically_across_modes(self):
        """A provider-side error must not leave the round half-accounted."""
        snapshots = {}
        for dispatch in ("sequential", "parallel"):
            source = build_source(dispatch)
            cluster = source.cluster
            # provider 2 blows up server-side (not an unavailability)
            cluster.providers[2].handle = _exploding_handler(
                cluster.providers[2].handle
            )
            with telemetry.session() as hub:
                with pytest.raises(RuntimeError, match="disk on fire"):
                    cluster.call_all(
                        "row_count",
                        {i: {"table": "Employees"} for i in range(5)},
                        minimum=3,
                    )
                assert (
                    hub.registry.counter_total("net.bytes")
                    == cluster.network.total_bytes
                )
            network = cluster.network
            # all 5 requests and the 4 successful responses were drained
            assert network.stats.by_link[("client", "DAS3")].messages == 1
            assert ("DAS3", "client") not in network.stats.by_link
            for name in ("DAS1", "DAS2", "DAS4", "DAS5"):
                assert network.stats.by_link[(name, "client")].messages == 1
            snapshots[dispatch] = network.stats.snapshot()
        assert snapshots["sequential"] == snapshots["parallel"]

    def test_parallel_error_round_still_advances_clock(self):
        source = build_source("parallel")
        cluster = source.cluster
        cluster.providers[0].handle = _exploding_handler(
            cluster.providers[0].handle
        )
        before = cluster.network.modelled_seconds
        with pytest.raises(RuntimeError):
            cluster.call_all(
                "row_count", {i: {"table": "Employees"} for i in range(5)}
            )
        assert cluster.network.modelled_seconds > before


def _exploding_handler(original):
    def handler(method, request):
        raise RuntimeError("disk on fire")

    return handler


class TestFaultCounters:
    def test_injection_and_refusals_counted(self):
        source = build_source("parallel")
        with telemetry.session() as hub:
            source.cluster.inject_fault(0, Fault(FailureMode.CRASH))
            source.sql(QUERY)
            assert hub.registry.counter_value(
                "faults.injected", mode="crash", provider="DAS1"
            ) == 1
            # quorum selection is knowledge-based: the undiscovered crash
            # is only found by addressing the provider, which refuses once
            # before failover routes the round to a spare
            assert hub.registry.counter_total("faults.crash_refusals") == 1

    def test_tamper_and_omit_increment_counters(self):
        with telemetry.session() as hub:
            tamper = Fault(
                FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "t")
            )
            assert tamper.maybe_corrupt_share(100) != 100
            omit = Fault(
                FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(1, "o")
            )
            assert omit.filter_rows([1, 2, 3]) == []
            assert hub.registry.counter_value("faults.tampered_shares") == 1
            assert hub.registry.counter_value("faults.omitted_rows") == 3

    def test_detected_omission_counted(self):
        """An OMIT fault that empties one provider's aggregate nomination
        is detected client-side and lands in ``faults.detected``."""
        source = build_source("parallel")
        source.cluster.inject_fault(
            0, Fault(FailureMode.OMIT, rate=1.0, rng=DeterministicRNG(3, "o"))
        )
        with telemetry.session() as hub:
            with pytest.raises(IntegrityError):
                source.sql("SELECT MIN(salary) FROM Employees")
            assert hub.registry.counter_value(
                "faults.detected", kind="empty_disagreement"
            ) == 1
