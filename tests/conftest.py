"""Shared fixtures: clusters, data sources, workloads, and the oracle."""

from __future__ import annotations

import pytest

from repro import DataSource, ProviderCluster
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.workloads.employees import employees_table, managers_table


@pytest.fixture
def cluster():
    """A fresh 5-provider, threshold-3 cluster."""
    return ProviderCluster(n_providers=5, threshold=3)


@pytest.fixture
def small_cluster():
    """A 3-provider, threshold-2 cluster (the paper's Figure 1 shape)."""
    return ProviderCluster(n_providers=3, threshold=2)


@pytest.fixture
def employees():
    """A deterministic 120-row Employees table."""
    return employees_table(120, seed=42)


@pytest.fixture
def managers(employees):
    """Managers drawn from the employees fixture (20%)."""
    return managers_table(employees, fraction=0.2, seed=42)


@pytest.fixture
def oracle(employees, managers):
    """Plaintext reference executor over copies of the fixture tables."""
    from repro.sqlengine.table import Table

    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    return PlaintextExecutor(catalog)


@pytest.fixture
def outsourced(cluster, employees, managers):
    """A data source with both fixture tables outsourced."""
    source = DataSource(cluster, seed=42)
    source.outsource_table(employees)
    source.outsource_table(managers)
    return source
