"""Query parity and routing for :class:`ShardRouter`.

Every query shape the engine supports must return byte-identical results
through a sharded deployment — hash or range — as through the plaintext
oracle: fan-out partials (COUNT/SUM/AVG/MIN/MAX, grouped forms) merge
exactly, MEDIAN falls back to a row fetch, joins hash-join across
groups.  Range sharding additionally prunes: a point query on the
partition column must touch only the owning group.
"""

import pytest

from repro.errors import ConfigurationError, UnsupportedQueryError
from repro.providers.cluster import ProviderCluster
from repro.client.datasource import DataSource
from repro.core.secrets import generate_client_secrets
from repro.service.sharding import ShardRouter
from repro.sqlengine.executor import rows_equal_unordered
from repro.sqlengine.sqlparser import parse_sql

from tests.sharding.shardutil import (
    SEED,
    build_oracle,
    build_router,
    oracle_answer,
    sorted_eids,
)

EIDS = sorted_eids()
MID = EIDS[len(EIDS) // 2]

QUERY_SHAPES = {
    "point": f"SELECT * FROM Employees WHERE eid = {MID}",
    "range_pred": (
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 200000 AND 700000 ORDER BY eid"
    ),
    "projection": f"SELECT name FROM Employees WHERE eid = {MID}",
    "partition_range": f"SELECT name FROM Employees WHERE eid <= {MID}",
    "count_star": "SELECT COUNT(*) FROM Employees",
    "count_where": "SELECT COUNT(*) FROM Employees WHERE salary >= 500000",
    "sum": "SELECT SUM(salary) FROM Employees",
    "avg": "SELECT AVG(salary) FROM Employees",
    "min": "SELECT MIN(salary) FROM Employees",
    "max": "SELECT MAX(salary) FROM Employees WHERE salary <= 900000",
    "median": "SELECT MEDIAN(salary) FROM Employees",
    "grouped_count": "SELECT COUNT(*) FROM Employees GROUP BY department",
    "grouped_avg": "SELECT AVG(salary) FROM Employees GROUP BY department",
    "grouped_median": (
        "SELECT MEDIAN(salary) FROM Employees GROUP BY department"
    ),
    "order_limit": "SELECT eid, salary FROM Employees ORDER BY eid LIMIT 10",
    "join": (
        "SELECT * FROM Employees JOIN Managers "
        "ON Employees.eid = Managers.eid"
    ),
}

ORDERED_SHAPES = {"range_pred", "order_limit"}


def assert_same(label, want, got):
    if isinstance(want, list) and label not in ORDERED_SHAPES:
        assert rows_equal_unordered(want, got), f"{label}: {got!r} != {want!r}"
    else:
        assert got == want, f"{label}: {got!r} != {want!r}"


class TestQueryParity:
    @pytest.mark.parametrize("mode", ["hash", "range"])
    @pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
    def test_matches_oracle(self, mode, shape):
        oracle = build_oracle()
        with build_router(mode) as router:
            sql = QUERY_SHAPES[shape]
            assert_same(shape, oracle_answer(oracle, sql), router.sql(sql))

    @pytest.mark.parametrize("mode", ["hash", "range"])
    def test_four_groups_match_oracle_too(self, mode):
        oracle = build_oracle()
        with build_router(mode, n_groups=4) as router:
            for shape in ("count_star", "avg", "grouped_avg", "join"):
                sql = QUERY_SHAPES[shape]
                assert_same(shape, oracle_answer(oracle, sql), router.sql(sql))

    def test_execute_wave_matches_sequential(self):
        statements = [
            f"SELECT name, salary FROM Employees WHERE eid = {eid}"
            for eid in EIDS[:8]
        ] + ["SELECT COUNT(*) FROM Employees"]
        with build_router("range") as router:
            sequential = [router.sql(text) for text in statements]
            assert router.execute_wave(statements) == sequential


class TestPruning:
    def test_point_query_touches_only_owning_group(self):
        """Range pruning: the non-owning group sees zero messages."""
        with build_router("range") as router:
            shard_map = router.shard_map("Employees")
            low_eid = EIDS[0]  # owned by group 0 (lowest range tile)
            owner = shard_map.group_for_key(
                router._encode_partition_key(
                    router._sharing("Employees"), "eid", low_eid
                )
            )
            other = 1 - owner
            router.reset_accounting()
            router.sql(f"SELECT name FROM Employees WHERE eid = {low_eid}")
            assert router.groups[other].network.total_messages == 0
            assert router.groups[owner].network.total_messages > 0

    def test_full_scan_touches_every_group(self):
        with build_router("range") as router:
            router.reset_accounting()
            router.sql("SELECT COUNT(*) FROM Employees")
            for group in router.groups:
                assert group.network.total_messages > 0

    def test_byte_accounting_sums_over_groups(self):
        with build_router("range") as router:
            router.reset_accounting()
            router.sql("SELECT SUM(salary) FROM Employees")
            assert router.total_network_bytes() == sum(
                group.network.total_bytes for group in router.groups
            )
            assert router.modelled_network_seconds() == max(
                group.network.modelled_seconds for group in router.groups
            )


class TestWrites:
    @pytest.mark.parametrize("mode", ["hash", "range"])
    def test_insert_update_delete_match_oracle(self, mode):
        oracle = build_oracle()
        with build_router(mode) as router:
            insert = (
                "INSERT INTO Employees (eid, name, lastname, department, "
                "salary) VALUES (999331, 'ZOE', 'QUINN', 'Sales', 123456)"
            )
            update = (
                f"UPDATE Employees SET salary = 777000 WHERE eid = {MID}"
            )
            delete = f"DELETE FROM Employees WHERE eid = {EIDS[3]}"
            for text in (insert, update, delete):
                assert router.sql(text) == oracle_answer(oracle, text), text
            probe = "SELECT eid, salary FROM Employees ORDER BY eid"
            assert router.sql(probe) == oracle_answer(oracle, probe)

    def test_update_of_range_partition_column_is_rejected(self):
        with build_router("range") as router:
            with pytest.raises(UnsupportedQueryError):
                router.sql(
                    f"UPDATE Employees SET eid = 999999 WHERE eid = {MID}"
                )

    def test_session_inserts_use_router_global_row_ids(self):
        with build_router("hash") as router:
            router.attach_services(max_in_flight=4, queue_limit=8)
            session = router.open_session("writer")
            try:
                router.execute(
                    parse_sql(
                        "INSERT INTO Employees (eid, name, lastname, "
                        "department, salary) VALUES "
                        "(999332, 'ABE', 'LINC', 'Sales', 1000)"
                    ),
                    session=session,
                )
                got = router.sql(
                    "SELECT name FROM Employees WHERE eid = 999332"
                )
                assert got == [{"name": "ABE"}]
            finally:
                router.close_session(session)


class TestConstruction:
    def test_mixed_secrets_rejected(self):
        a = DataSource(ProviderCluster(3, 2), seed=1)
        b = DataSource(ProviderCluster(3, 2), seed=2)
        with pytest.raises(ConfigurationError):
            ShardRouter([a, b])

    def test_mixed_geometry_rejected(self):
        secrets = generate_client_secrets(3, SEED)
        a = DataSource(ProviderCluster(3, 2), seed=1, secrets=secrets)
        b = DataSource(ProviderCluster(3, 3), seed=2, secrets=secrets)
        with pytest.raises(ConfigurationError):
            ShardRouter([a, b])

    def test_split_on_hash_table_rejected(self):
        with build_router("hash") as router:
            with pytest.raises(ConfigurationError):
                router.split_shard("Employees", MID)

    def test_rebalance_on_range_table_rejected(self):
        with build_router("range") as router:
            with pytest.raises(ConfigurationError):
                router.rebalance("Employees")

    def test_report_shape(self):
        with build_router("range") as router:
            router.sql("SELECT COUNT(*) FROM Employees")
            report = router.report()
            assert len(report["groups"]) == 2
            assert report["migrations"] == 0
            assert all(
                group["network_messages"] > 0 for group in report["groups"]
            )
