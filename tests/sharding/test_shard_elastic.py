"""Elastic operations: split, rebalance, drain, add_group — all online.

The invariants: every migration preserves the exact row set (share-level
rebuild, no plaintext reconstruction), checkpoint phases fire in
protocol order, reads issued *during* a migration never observe a
half-moved row, a write racing the online copy forces the ``recopied``
phase, and retired groups drop out of routing.
"""

import pytest

from repro.errors import ConfigurationError
from repro.sqlengine.executor import rows_equal_unordered

from tests.sharding.shardutil import (
    all_row_ids,
    build_oracle,
    build_router,
    oracle_answer,
    sorted_eids,
)

EIDS = sorted_eids()
SPLIT_AT = 250_000  # mid-range of group 0's tile ([1, 500001) at 2 groups)

PROBES = (
    "SELECT COUNT(*) FROM Employees",
    "SELECT SUM(salary) FROM Employees",
    "SELECT AVG(salary) FROM Employees GROUP BY department",
    "SELECT eid, name FROM Employees ORDER BY eid",
)


def assert_parity(router, oracle):
    for text in PROBES:
        want = oracle_answer(oracle, text)
        got = router.sql(text)
        if isinstance(want, list):
            assert rows_equal_unordered(want, got), text
        else:
            assert got == want, text


class TestSplit:
    def test_split_preserves_rows_and_parity(self):
        oracle = build_oracle()
        with build_router("range") as router:
            before = all_row_ids(router)
            phases = []
            moved = router.split_shard(
                "Employees", SPLIT_AT, checkpoint=phases.append
            )
            assert moved > 0
            assert phases == ["scanned", "copied", "cutover", "done"]
            assert all_row_ids(router) == before
            assert router.n_groups == 3  # a fresh group was added
            assert router.migrations == 1
            assert_parity(router, oracle)

    def test_split_to_existing_group(self):
        with build_router("range", n_groups=2) as router:
            extra = router.add_group()
            before = all_row_ids(router)
            moved = router.split_shard("Employees", SPLIT_AT, to_group=extra)
            assert moved > 0
            assert all_row_ids(router) == before
            placement = router.shard_row_ids("Employees")
            assert len(placement.get(extra, [])) == moved

    def test_split_at_range_lower_bound_rejected(self):
        with build_router("range") as router:
            # eid encoding is the identity within the domain, so the
            # encoded tile bound maps back to itself as a value
            lo = router.shard_map("Employees").ranges[0][0]
            with pytest.raises(ConfigurationError):
                router.split_shard("Employees", lo)

    def test_reads_during_migration_are_exact(self):
        """At every unlocked checkpoint the row set reads whole — the
        staging table is invisible, so nothing is ever double-counted."""
        oracle = build_oracle()
        count = oracle_answer(oracle, "SELECT COUNT(*) FROM Employees")
        total = oracle_answer(oracle, "SELECT SUM(salary) FROM Employees")
        with build_router("range") as router:

            def probe(phase):
                if phase == "cutover":  # write lock held — must not query
                    return
                assert router.sql("SELECT COUNT(*) FROM Employees") == count
                assert router.sql("SELECT SUM(salary) FROM Employees") == total

            router.split_shard("Employees", SPLIT_AT, checkpoint=probe)
            assert router.sql("SELECT COUNT(*) FROM Employees") == count


class TestRecopyRace:
    def test_write_racing_the_copy_forces_recopy(self):
        """A write between the online copy and the cutover bumps the
        source epoch; the migration must redo the copy under the lock."""
        with build_router("range") as router:
            before = all_row_ids(router)
            phases = []

            def checkpoint(phase):
                phases.append(phase)
                if phase == "copied" and phases.count("copied") == 1:
                    # race a write into the moving range
                    router.sql(
                        "INSERT INTO Employees (eid, name, lastname, "
                        "department, salary) VALUES "
                        f"({SPLIT_AT + 7}, 'RAC', 'ER', 'Sales', 50000)"
                    )

            moved = router.split_shard(
                "Employees", SPLIT_AT, checkpoint=checkpoint
            )
            assert "recopied" in phases
            after = all_row_ids(router)
            assert len(after) == len(before) + 1
            assert set(before) <= set(after)
            # the racing row landed in the moving slice and migrated too
            got = router.sql(
                f"SELECT name FROM Employees WHERE eid = {SPLIT_AT + 7}"
            )
            assert got == [{"name": "RAC"}]
            assert moved > 0


class TestRebalance:
    def test_rebalance_onto_added_group(self):
        oracle = build_oracle()
        with build_router("hash") as router:
            before = all_row_ids(router)
            phases = []
            router.add_group()
            moved = router.rebalance(checkpoint=phases.append)
            assert moved > 0
            assert phases.count("done") >= 1
            assert all_row_ids(router) == before
            # buckets end up balanced within one across active groups
            shard_map = router.shard_map("Employees")
            counts = [
                len(shard_map.buckets_of(g))
                for g in router.active_group_indexes()
            ]
            assert max(counts) - min(counts) <= 1
            assert_parity(router, oracle)

    def test_rebalance_is_idempotent(self):
        with build_router("hash") as router:
            router.add_group()
            router.rebalance()
            assert router.rebalance() == 0


class TestDrain:
    @pytest.mark.parametrize("mode", ["hash", "range"])
    def test_drain_preserves_rows_and_retires(self, mode):
        oracle = build_oracle()
        with build_router(mode) as router:
            before = all_row_ids(router)
            moved = router.drain_group(1)
            assert moved > 0
            assert router.groups[1].retired
            assert router.active_group_indexes() == [0]
            assert all_row_ids(router) == before
            placement = router.shard_row_ids("Employees")
            assert not placement.get(1)
            assert_parity(router, oracle)
            # retired groups see no further query traffic
            router.reset_accounting()
            router.sql("SELECT COUNT(*) FROM Employees")
            assert router.groups[1].network.total_messages == 0

    def test_drain_last_group_rejected(self):
        with build_router("hash") as router:
            router.drain_group(1)
            with pytest.raises(ConfigurationError):
                router.drain_group(0)

    def test_drained_group_not_a_migration_target(self):
        with build_router("hash") as router:
            router.drain_group(1)
            router.add_group()
            # rebalance routes everything to the live groups only
            router.rebalance()
            placement = router.shard_row_ids("Employees")
            assert not placement.get(1)


class TestAddGroup:
    def test_new_group_serves_queries_after_split(self):
        with build_router("range") as router:
            router.attach_services(max_in_flight=4, queue_limit=8)
            index = router.add_group()
            assert router.groups[index].service is not None
            router.split_shard("Employees", SPLIT_AT, to_group=index)
            router.reset_accounting()
            low = [eid for eid in EIDS if SPLIT_AT <= eid < 500_001][0]
            got = router.sql(
                f"SELECT eid FROM Employees WHERE eid = {low}"
            )
            assert got == [{"eid": low}]
            assert router.groups[index].network.total_messages > 0
