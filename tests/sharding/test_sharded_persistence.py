"""Crash-safe snapshots of sharded deployments.

``save_sharded_deployment`` writes each group as an ordinary deployment
snapshot and a top-level shard manifest *last*, carrying a digest of
every group manifest — so a torn save (missing shard manifest) and a
directory mixing groups from different saves are both rejected instead
of silently reassembling a wrong deployment.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.persistence import (
    SHARD_MANIFEST_NAME,
    load_sharded_deployment,
    save_sharded_deployment,
)
from repro.sqlengine.executor import rows_equal_unordered

from tests.sharding.shardutil import (
    all_row_ids,
    build_oracle,
    build_router,
    oracle_answer,
)

PROBES = (
    "SELECT COUNT(*) FROM Employees",
    "SELECT AVG(salary) FROM Employees",
    "SELECT eid, salary FROM Employees ORDER BY eid",
    "SELECT * FROM Employees JOIN Managers ON Employees.eid = Managers.eid",
)


def assert_parity(router, oracle):
    for text in PROBES:
        want = oracle_answer(oracle, text)
        got = router.sql(text)
        if isinstance(want, list):
            assert rows_equal_unordered(want, got), text
        else:
            assert got == want, text


@pytest.mark.parametrize("mode", ["hash", "range"])
def test_round_trip(tmp_path, mode):
    oracle = build_oracle()
    with build_router(mode) as router:
        before = all_row_ids(router)
        save_sharded_deployment(router, tmp_path)
    with load_sharded_deployment(tmp_path) as restored:
        assert all_row_ids(restored) == before
        assert restored.default_mode == mode
        assert_parity(restored, oracle)


def test_restored_router_accepts_writes(tmp_path):
    with build_router("range") as router:
        save_sharded_deployment(router, tmp_path)
    with load_sharded_deployment(tmp_path) as restored:
        count = restored.sql("SELECT COUNT(*) FROM Employees")
        restored.sql(
            "INSERT INTO Employees (eid, name, lastname, department, "
            "salary) VALUES (999333, 'NEW', 'ROW', 'Sales', 42000)"
        )
        assert restored.sql("SELECT COUNT(*) FROM Employees") == count + 1
        got = restored.sql("SELECT name FROM Employees WHERE eid = 999333")
        assert got == [{"name": "NEW"}]


def test_round_trip_after_split_keeps_map(tmp_path):
    with build_router("range") as router:
        router.split_shard("Employees", 250_000)
        placement = router.shard_row_ids("Employees")
        save_sharded_deployment(router, tmp_path)
    with load_sharded_deployment(tmp_path) as restored:
        assert restored.n_groups == 3
        assert restored.shard_row_ids("Employees") == placement


def test_retired_groups_survive_restore(tmp_path):
    with build_router("hash") as router:
        router.drain_group(1)
        before = all_row_ids(router)
        save_sharded_deployment(router, tmp_path)
    with load_sharded_deployment(tmp_path) as restored:
        assert restored.groups[1].retired
        assert restored.active_group_indexes() == [0]
        assert all_row_ids(restored) == before


def test_missing_shard_manifest_rejected(tmp_path):
    with build_router("hash") as router:
        save_sharded_deployment(router, tmp_path)
    (tmp_path / SHARD_MANIFEST_NAME).unlink()
    with pytest.raises(ConfigurationError, match="interrupted"):
        load_sharded_deployment(tmp_path)


def test_corrupt_shard_manifest_rejected(tmp_path):
    with build_router("hash") as router:
        save_sharded_deployment(router, tmp_path)
    (tmp_path / SHARD_MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_sharded_deployment(tmp_path)


def test_mixed_saves_rejected(tmp_path):
    """Group snapshots from a *different* save must not reassemble."""
    save_a = tmp_path / "a"
    save_b = tmp_path / "b"
    with build_router("range") as router:
        save_sharded_deployment(router, save_a)
        # advance state, save again elsewhere
        router.sql(
            "INSERT INTO Employees (eid, name, lastname, department, "
            "salary) VALUES (999334, 'TOR', 'N', 'Sales', 1)"
        )
        save_sharded_deployment(router, save_b)
    manifest = json.loads((save_a / SHARD_MANIFEST_NAME).read_text())
    group_dir = manifest["groups"][1]["directory"]
    # splice group 1 from save B into save A: digests no longer match
    src = save_b / group_dir / "manifest.json"
    dst = save_a / group_dir / "manifest.json"
    dst.write_bytes(src.read_bytes())
    with pytest.raises(ConfigurationError, match="different saves"):
        load_sharded_deployment(save_a)
