"""Fault matrix against a sharded deployment — including mid-migration.

The acceptance grid the CI chaos-smoke job runs: with n=5, k=3 per
group, a 2-group sharded deployment must return exact plaintext results
with the full per-group crash budget (n−k = 2) or a tampering provider
— and an *online migration* (split / rebalance) hit by a crash or a
tamperer mid-flight must still preserve every row.  Migration rebuilds
fetch one redundant share so a tampering quorum member is blamed rather
than steering the extended polynomial.
"""

import pytest

from repro.client.datasource import DataSource
from repro.client.repair import repair_provider
from repro.core.secrets import generate_client_secrets
from repro.providers.cluster import ProviderCluster
from repro.providers.failures import Fault, FailureMode
from repro.service.sharding import ShardRouter
from repro.sqlengine.executor import rows_equal_unordered

from tests.sharding.shardutil import (
    all_row_ids,
    build_oracle,
    oracle_answer,
    workload_tables,
)

N, K, ROWS, SEED = 5, 3, 30, 2009
N_FAULTY = N - K  # the full per-group crash budget

QUERY_SHAPES = {
    "point": "SELECT * FROM Employees WHERE eid = {eid}",
    "ordered": (
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 200000 AND 800000 ORDER BY eid"
    ),
    "sum": "SELECT SUM(salary) FROM Employees WHERE salary >= 300000",
    "avg": "SELECT AVG(salary) FROM Employees GROUP BY department",
    "join": (
        "SELECT * FROM Employees JOIN Managers "
        "ON Employees.eid = Managers.eid"
    ),
}


def build_sharded(mode, verified):
    """2-group sharded Employees/Managers with optional verified reads."""
    secrets = generate_client_secrets(N, SEED)
    sources = []
    for index in range(2):
        cluster = ProviderCluster(N, K, name_prefix=f"g{index}/")
        sources.append(
            DataSource(
                cluster,
                seed=SEED + 101 * index,
                secrets=secrets,
                verified_reads=verified,
            )
        )
    # 16 buckets keep every bucket populated at 30 rows, so a rebalance
    # always has real rows to move
    router = ShardRouter(sources, mode=mode, n_buckets=16)
    employees, managers = workload_tables(rows=ROWS, seed=SEED)
    if mode == "range":
        router.outsource_table(employees, partition_column="eid")
        router.outsource_table(managers, partition_column="eid")
    else:
        router.outsource_table(employees)
        router.outsource_table(managers)
    return router


def queries():
    employees, _ = workload_tables(rows=ROWS, seed=SEED)
    eid = sorted(row["eid"] for row in employees.rows())[ROWS // 2]
    return {
        label: sql.format(eid=eid) for label, sql in QUERY_SHAPES.items()
    }


def faults_for(mode, indexes):
    if mode is FailureMode.CRASH:
        return [(i, Fault(FailureMode.CRASH)) for i in indexes]
    return [(i, Fault(mode, seed=SEED + i)) for i in indexes]


def assert_same(label, want, got):
    if isinstance(want, list) and label != "ordered":
        assert rows_equal_unordered(want, got), label
    else:
        assert got == want, label


class TestShardedFaultMatrix:
    """Steady-state queries with per-group fault injection."""

    @pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
    @pytest.mark.parametrize(
        "mode", [FailureMode.CRASH, FailureMode.TAMPER, FailureMode.OMIT]
    )
    def test_exact_results_under_faults(self, mode, shape):
        verified = mode is not FailureMode.CRASH
        oracle = build_oracle(rows=ROWS, seed=SEED)
        with build_sharded("range", verified) as router:
            # full crash budget on group 0, one more fault on group 1
            for index, fault in faults_for(mode, range(N_FAULTY)):
                router.groups[0].cluster.inject_fault(index, fault)
            for index, fault in faults_for(mode, range(1)):
                router.groups[1].cluster.inject_fault(index, fault)
            sql = queries()[shape]
            assert_same(shape, oracle_answer(oracle, sql), router.sql(sql))


class TestFaultsDuringMigration:
    """Crashes and tamperers landing while a migration is in flight."""

    def test_crash_during_split(self):
        oracle = build_oracle(rows=ROWS, seed=SEED)
        with build_sharded("range", verified=False) as router:
            before = all_row_ids(router)
            # one provider of the source group is already down...
            router.groups[0].cluster.inject_fault(0, Fault(FailureMode.CRASH))

            def checkpoint(phase):
                if phase == "scanned":
                    # ...and another dies mid-migration
                    router.groups[0].cluster.inject_fault(
                        1, Fault(FailureMode.CRASH)
                    )

            moved = router.split_shard(
                "Employees", 250_000, checkpoint=checkpoint
            )
            assert moved > 0
            assert all_row_ids(router) == before
            for label, sql in queries().items():
                assert_same(label, oracle_answer(oracle, sql), router.sql(sql))
            # crashed providers missed the migration deletes: after they
            # recover, the standard repair flow re-syncs them exactly
            router.groups[0].cluster.clear_faults()
            repair_provider(router.groups[0].source, 0)
            repair_provider(router.groups[0].source, 1)
            for label, sql in queries().items():
                assert_same(label, oracle_answer(oracle, sql), router.sql(sql))

    def test_tamper_during_split(self):
        """A tampering source provider is blamed by the redundant-share
        rebuild; the migrated rows reconstruct to the true plaintext."""
        oracle = build_oracle(rows=ROWS, seed=SEED)
        with build_sharded("range", verified=True) as router:
            before = all_row_ids(router)
            router.groups[0].cluster.inject_fault(
                0, Fault(FailureMode.TAMPER, seed=SEED)
            )
            moved = router.split_shard("Employees", 250_000)
            assert moved > 0
            assert all_row_ids(router) == before
            for label, sql in queries().items():
                assert_same(label, oracle_answer(oracle, sql), router.sql(sql))

    def test_crash_during_rebalance(self):
        oracle = build_oracle(rows=ROWS, seed=SEED)
        with build_sharded("hash", verified=False) as router:
            before = all_row_ids(router)
            router.add_group()
            router.groups[0].cluster.inject_fault(2, Fault(FailureMode.CRASH))
            moved = router.rebalance()
            assert moved > 0
            assert all_row_ids(router) == before
            for label, sql in queries().items():
                assert_same(label, oracle_answer(oracle, sql), router.sql(sql))

    def test_tamper_during_rebalance(self):
        oracle = build_oracle(rows=ROWS, seed=SEED)
        with build_sharded("hash", verified=True) as router:
            before = all_row_ids(router)
            router.add_group()
            router.groups[1].cluster.inject_fault(
                3, Fault(FailureMode.TAMPER, seed=SEED + 3)
            )
            moved = router.rebalance()
            assert moved > 0
            assert all_row_ids(router) == before
            for label, sql in queries().items():
                assert_same(label, oracle_answer(oracle, sql), router.sql(sql))
