"""Shared builders for the sharding suite.

Small deployments (3 providers, k=2, 48 rows) keep the suite fast while
still exercising the full fan-out/merge machinery: two groups, both
workload tables, hash and range modes.
"""

from repro.service.sharding import ShardRouter
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.sqlengine.sqlparser import parse_sql
from repro.sqlengine.table import Table
from repro.workloads.employees import employees_table, managers_table

ROWS = 48
SEED = 2009
PROVIDERS = 3
THRESHOLD = 2
MANAGER_FRACTION = 0.25


def workload_tables(rows=ROWS, seed=SEED):
    employees = employees_table(rows, seed=seed)
    managers = managers_table(employees, MANAGER_FRACTION, seed=seed)
    return employees, managers


def build_router(
    mode,
    n_groups=2,
    providers=PROVIDERS,
    threshold=THRESHOLD,
    rows=ROWS,
    seed=SEED,
):
    """A sharded deployment with both workload tables outsourced."""
    employees, managers = workload_tables(rows, seed)
    router = ShardRouter.build(
        n_groups=n_groups,
        providers_per_group=providers,
        threshold=threshold,
        seed=seed,
        mode=mode,
    )
    if mode == "range":
        router.outsource_table(employees, partition_column="eid")
        router.outsource_table(managers, partition_column="eid")
    else:
        router.outsource_table(employees)
        router.outsource_table(managers)
    return router


def build_oracle(rows=ROWS, seed=SEED):
    employees, managers = workload_tables(rows, seed)
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    return PlaintextExecutor(catalog)


def oracle_answer(oracle, text):
    return oracle.execute(parse_sql(text))


def sorted_eids(rows=ROWS, seed=SEED):
    employees, _ = workload_tables(rows, seed)
    return sorted(row["eid"] for row in employees.rows())


def all_row_ids(router, table="Employees"):
    return sorted(
        rid for ids in router.shard_row_ids(table).values() for rid in ids
    )
