"""Unit tests for the private/public mash-up engine (Sec. V-D)."""

import pytest

from repro import DataSource, ProviderCluster, Select, Table, TableSchema
from repro.errors import QueryError, SchemaError
from repro.mashup.engine import MashupEngine, PIRBackedPublicIndex
from repro.mashup.public_catalog import PublicCatalog
from repro.sqlengine.schema import integer_column, string_column


def friends_table():
    schema = TableSchema(
        "Friends",
        (
            integer_column("fid", 1, 1000),
            string_column("name", 8),
            integer_column("zipcode", 10000, 99999, domain_label="d/zip"),
        ),
        primary_key="fid",
    )
    return Table(
        schema,
        [
            {"fid": 1, "name": "ANNA", "zipcode": 90210},
            {"fid": 2, "name": "BILL", "zipcode": 10001},
            {"fid": 3, "name": "CARA", "zipcode": 90210},
        ],
    )


def restaurants_table():
    schema = TableSchema(
        "Restaurants",
        (
            integer_column("rid", 1, 10000),
            string_column("name", 10),
            integer_column("zipcode", 10000, 99999),
            integer_column("rating", 1, 5),
        ),
        primary_key="rid",
    )
    rows = [
        {"rid": 1, "name": "PASTA", "zipcode": 90210, "rating": 4},
        {"rid": 2, "name": "SUSHI", "zipcode": 90210, "rating": 5},
        {"rid": 3, "name": "TACOS", "zipcode": 10001, "rating": 3},
        {"rid": 4, "name": "BURGER", "zipcode": 60601, "rating": 2},
    ]
    return Table(schema, rows)


@pytest.fixture
def engine():
    cluster = ProviderCluster(3, 2)
    source = DataSource(cluster, seed=61)
    source.outsource_table(friends_table())
    catalog = PublicCatalog()
    catalog.publish(restaurants_table())
    engine = MashupEngine(source, catalog)
    engine.enable_pir(restaurants_table(), "zipcode")
    return engine


def run(engine, strategy):
    return engine.probe_join(
        "Friends",
        Select("Friends"),
        "zipcode",
        "Restaurants",
        "zipcode",
        strategy=strategy,
    )


EXPECTED_PAIRS = {
    ("ANNA", "PASTA"), ("ANNA", "SUSHI"),
    ("CARA", "PASTA"), ("CARA", "SUSHI"),
    ("BILL", "TACOS"),
}


class TestStrategiesAgree:
    @pytest.mark.parametrize("strategy", ["direct", "download", "pir"])
    def test_join_results(self, engine, strategy):
        report = run(engine, strategy)
        pairs = {
            (row["private.name"], row["public.name"]) for row in report.rows
        }
        assert pairs == EXPECTED_PAIRS
        assert report.probe_keys == 2  # two distinct zip codes


class TestLeakageLedger:
    def test_direct_leaks_keys(self, engine):
        report = run(engine, "direct")
        assert report.keys_leaked == 2 and report.leaked

    def test_download_and_pir_leak_nothing(self, engine):
        for strategy in ("download", "pir"):
            report = run(engine, strategy)
            assert report.keys_leaked == 0 and not report.leaked

    def test_public_server_observes_direct_queries(self, engine):
        run(engine, "direct")
        observed = engine.catalog.queries_observed
        assert any("90210" in q for q in observed)

    def test_bytes_accounted(self, engine):
        for strategy in ("direct", "download", "pir"):
            assert run(engine, strategy).public_bytes > 0


class TestRowFilter:
    def test_proximity_style_filter(self, engine):
        report = engine.probe_join(
            "Friends",
            Select("Friends"),
            "zipcode",
            "Restaurants",
            "zipcode",
            strategy="download",
            row_filter=lambda private, public: public["rating"] >= 4,
        )
        names = {row["public.name"] for row in report.rows}
        assert names == {"PASTA", "SUSHI"}


class TestPIRIndex:
    def test_lookup_matches_table(self):
        index = PIRBackedPublicIndex(restaurants_table(), "zipcode")
        rows = index.lookup(90210)
        assert {r["name"] for r in rows} == {"PASTA", "SUSHI"}
        assert index.lookup(33101) == []

    def test_key_column_mismatch_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.probe_join(
                "Friends", Select("Friends"), "zipcode",
                "Restaurants", "rating", strategy="pir",
            )

    def test_pir_requires_enabling(self):
        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=2)
        source.outsource_table(friends_table())
        catalog = PublicCatalog()
        catalog.publish(restaurants_table())
        engine = MashupEngine(source, catalog)
        with pytest.raises(QueryError):
            run(engine, "pir")

    def test_empty_key_table_rejected(self):
        schema = TableSchema("P", (integer_column("k", 0, 9, nullable=True),))
        with pytest.raises(QueryError):
            PIRBackedPublicIndex(Table(schema, [{"k": None}]), "k")


class TestGuards:
    def test_unknown_strategy(self, engine):
        with pytest.raises(QueryError):
            run(engine, "telepathy")

    def test_projected_probe_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.probe_join(
                "Friends",
                Select("Friends", columns=("name",)),
                "zipcode", "Restaurants", "zipcode",
            )

    def test_table_mismatch_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.probe_join(
                "Friends", Select("Other"), "zipcode",
                "Restaurants", "zipcode",
            )

    def test_duplicate_publish_rejected(self, engine):
        with pytest.raises(SchemaError):
            engine.catalog.publish(restaurants_table())
