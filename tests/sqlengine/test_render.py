"""Unit tests for SQL rendering (the property tests cover round trips)."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import QueryError
from repro.sqlengine.expression import (
    Between,
    Comparison,
    ComparisonOp,
    TruePredicate,
)
from repro.sqlengine.query import Aggregate, AggregateFunc, Delete, Select
from repro.sqlengine.render import render_literal, render_predicate, render_sql


class TestLiterals:
    def test_basics(self):
        assert render_literal(None) == "NULL"
        assert render_literal(True) == "TRUE"
        assert render_literal(False) == "FALSE"
        assert render_literal(42) == "42"
        assert render_literal(-7) == "-7"
        assert render_literal(Decimal("3.50")) == "3.50"

    def test_strings_escaped(self):
        assert render_literal("O'BRIEN") == "'O''BRIEN'"

    def test_dates(self):
        assert render_literal(datetime.date(2009, 3, 29)) == "'2009-03-29'"

    def test_unsupported(self):
        with pytest.raises(QueryError):
            render_literal([1, 2])


class TestPredicatesAndQueries:
    def test_comparison(self):
        assert (
            render_predicate(Comparison("a", ComparisonOp.GE, 5)) == "a >= 5"
        )

    def test_between(self):
        assert (
            render_predicate(Between("a", 1, 2)) == "a BETWEEN 1 AND 2"
        )

    def test_true_predicate_has_no_form(self):
        with pytest.raises(QueryError):
            render_predicate(TruePredicate())

    def test_select_full_clauses(self):
        query = Select(
            "T",
            columns=("a", "b"),
            where=Comparison("a", ComparisonOp.GT, 1),
            order_by="a",
            descending=True,
            limit=5,
        )
        assert render_sql(query) == (
            "SELECT a, b FROM T WHERE a > 1 ORDER BY a DESC LIMIT 5"
        )

    def test_grouped_select(self):
        query = Select(
            "T",
            aggregate=Aggregate(AggregateFunc.SUM, "v"),
            group_by="g",
        )
        assert render_sql(query) == "SELECT g, SUM(v) FROM T GROUP BY g"

    def test_count_star(self):
        query = Select("T", aggregate=Aggregate(AggregateFunc.COUNT, None))
        assert render_sql(query) == "SELECT COUNT(*) FROM T"

    def test_delete_without_where(self):
        assert render_sql(Delete("T")) == "DELETE FROM T"

    def test_unknown_node(self):
        with pytest.raises(QueryError):
            render_sql(42)
