"""Unit tests for the in-memory plaintext table."""

import pytest

from repro.errors import SchemaError
from repro.sqlengine.expression import Comparison, ComparisonOp, TruePredicate
from repro.sqlengine.schema import TableSchema, integer_column, string_column
from repro.sqlengine.table import Table

SCHEMA = TableSchema(
    "T",
    (
        integer_column("id", 1, 1000),
        string_column("name", 6),
        integer_column("v", 0, 100, nullable=True),
    ),
    primary_key="id",
)


@pytest.fixture
def table():
    return Table(
        SCHEMA,
        [
            {"id": 1, "name": "A", "v": 10},
            {"id": 2, "name": "B", "v": 20},
            {"id": 3, "name": "C", "v": None},
        ],
    )


class TestInsert:
    def test_len(self, table):
        assert len(table) == 3

    def test_duplicate_pk_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "name": "X", "v": 0})

    def test_validation_applied(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 4, "name": "TOOLONGNAME", "v": 0})

    def test_insert_many(self):
        table = Table(SCHEMA)
        count = table.insert_many(
            [{"id": i, "name": "X", "v": i} for i in range(1, 6)]
        )
        assert count == 5 and len(table) == 5

    def test_rows_are_copies(self, table):
        rows = table.rows()
        rows[0]["v"] = 999
        assert table.get_by_pk(1)["v"] == 10


class TestSelect:
    def test_predicate_filter(self, table):
        rows = table.select(Comparison("v", ComparisonOp.GE, 20))
        assert [r["id"] for r in rows] == [2]

    def test_true_predicate_returns_all(self, table):
        assert len(table.select(TruePredicate())) == 3

    def test_pk_lookup(self, table):
        assert table.get_by_pk(2)["name"] == "B"
        assert table.get_by_pk(99) is None

    def test_pk_lookup_without_pk_raises(self):
        schema = TableSchema("U", (integer_column("x", 0, 1),))
        with pytest.raises(SchemaError):
            Table(schema).get_by_pk(0)

    def test_sorted_by_with_nulls_first(self, table):
        ordered = table.sorted_by("v")
        assert [r["id"] for r in ordered] == [3, 1, 2]


class TestUpdate:
    def test_update_where(self, table):
        changed = table.update_where(
            Comparison("id", ComparisonOp.EQ, 1), {"v": 99}
        )
        assert changed == 1
        assert table.get_by_pk(1)["v"] == 99

    def test_update_validates(self, table):
        with pytest.raises(SchemaError):
            table.update_where(TruePredicate(), {"v": 101})

    def test_update_unknown_column(self, table):
        with pytest.raises(SchemaError):
            table.update_where(TruePredicate(), {"zzz": 1})

    def test_pk_update_rejected(self, table):
        with pytest.raises(SchemaError):
            table.update_where(Comparison("id", ComparisonOp.EQ, 1), {"id": 9})

    def test_update_no_match(self, table):
        assert table.update_where(Comparison("id", ComparisonOp.EQ, 99), {"v": 1}) == 0


class TestDelete:
    def test_delete_where(self, table):
        removed = table.delete_where(Comparison("v", ComparisonOp.LE, 10))
        assert removed == 1
        assert len(table) == 2
        assert table.get_by_pk(1) is None

    def test_pk_index_rebuilt(self, table):
        table.delete_where(Comparison("id", ComparisonOp.EQ, 2))
        assert table.get_by_pk(3)["name"] == "C"

    def test_delete_none(self, table):
        assert table.delete_where(Comparison("id", ComparisonOp.EQ, 99)) == 0
