"""Tests for NULL-aware predicate normalization (NOT elimination)."""


from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    IsNull,
    Not,
    Or,
    StartsWith,
    TruePredicate,
    normalize_predicate,
)
from repro.sqlengine.schema import TableSchema, integer_column, string_column

SCHEMA = TableSchema(
    "T",
    (
        integer_column("a", 0, 100),
        integer_column("n", 0, 100, nullable=True),
        string_column("s", 5),
    ),
)


def norm(pred):
    return normalize_predicate(pred, SCHEMA)


class TestNegationPushdown:
    def test_not_comparison(self):
        assert norm(Not(Comparison("a", ComparisonOp.LT, 5))) == Comparison(
            "a", ComparisonOp.GE, 5
        )
        assert norm(Not(Comparison("a", ComparisonOp.EQ, 5))) == Comparison(
            "a", ComparisonOp.NE, 5
        )

    def test_double_negation(self):
        pred = Comparison("a", ComparisonOp.GT, 5)
        assert norm(Not(Not(pred))) == pred

    def test_not_between_becomes_or(self):
        out = norm(Not(Between("a", 5, 10)))
        assert out == Or(
            (
                Comparison("a", ComparisonOp.LT, 5),
                Comparison("a", ComparisonOp.GT, 10),
            )
        )

    def test_demorgan_or_to_and(self):
        pred = Not(
            Or(
                (
                    Comparison("a", ComparisonOp.LT, 5),
                    Comparison("a", ComparisonOp.GT, 10),
                )
            )
        )
        out = norm(pred)
        assert out == And(
            (
                Comparison("a", ComparisonOp.GE, 5),
                Comparison("a", ComparisonOp.LE, 10),
            )
        )

    def test_demorgan_and_to_or(self):
        pred = Not(
            And(
                (
                    Comparison("a", ComparisonOp.GE, 5),
                    Comparison("a", ComparisonOp.LE, 10),
                )
            )
        )
        out = norm(pred)
        assert isinstance(out, Or)

    def test_is_null_flips(self):
        assert norm(Not(IsNull("n"))) == IsNull("n", negated=True)
        assert norm(Not(IsNull("n", negated=True))) == IsNull("n")


class TestNullFaithfulness:
    def test_nullable_column_keeps_not(self):
        """NOT (n < 5) matches NULL rows; n >= 5 does not — the rewrite
        must not fire for nullable columns."""
        out = norm(Not(Comparison("n", ComparisonOp.LT, 5)))
        assert out == Not(Comparison("n", ComparisonOp.LT, 5))

    def test_nullable_between_keeps_not(self):
        out = norm(Not(Between("n", 1, 2)))
        assert isinstance(out, Not)

    def test_semantics_preserved_on_nullable(self):
        row_null = {"a": 50, "n": None, "s": "X"}
        row_low = {"a": 50, "n": 1, "s": "X"}
        original = Not(Comparison("n", ComparisonOp.LT, 5))
        out = norm(original)
        for row in (row_null, row_low):
            assert out.matches(row) == original.matches(row)

    def test_semantics_preserved_exhaustive(self):
        """Brute-force: every normalized predicate agrees with its original
        on a grid of rows, including NULLs."""
        rows = [
            {"a": a, "n": n, "s": s}
            for a in (0, 5, 50)
            for n in (None, 0, 50)
            for s in ("", "AB", "ZZ")
        ]
        predicates = [
            Not(Comparison("a", ComparisonOp.LT, 5)),
            Not(Comparison("n", ComparisonOp.GE, 5)),
            Not(Between("a", 5, 50)),
            Not(Between("n", 5, 50)),
            Not(Or((Comparison("a", ComparisonOp.LT, 5), IsNull("n")))),
            Not(And((Comparison("a", ComparisonOp.GE, 5),
                     Comparison("n", ComparisonOp.LE, 50)))),
            Not(Not(Comparison("a", ComparisonOp.EQ, 5))),
            Not(StartsWith("s", "A")),
        ]
        for predicate in predicates:
            normalized = norm(predicate)
            for row in rows:
                assert normalized.matches(row) == predicate.matches(row), (
                    predicate, row
                )


class TestFlattening:
    def test_nested_or_flattened(self):
        pred = Or(
            (
                Or(
                    (
                        Comparison("a", ComparisonOp.EQ, 1),
                        Comparison("a", ComparisonOp.EQ, 2),
                    )
                ),
                Comparison("a", ComparisonOp.EQ, 3),
            )
        )
        out = norm(pred)
        assert isinstance(out, Or) and len(out.parts) == 3

    def test_nested_and_flattened(self):
        pred = And(
            (
                And(
                    (
                        Comparison("a", ComparisonOp.GE, 1),
                        Comparison("a", ComparisonOp.LE, 9),
                    )
                ),
                Comparison("a", ComparisonOp.NE, 5),
            )
        )
        out = norm(pred)
        assert isinstance(out, And) and len(out.parts) == 3

    def test_leaves_unchanged(self):
        for pred in (
            Comparison("a", ComparisonOp.EQ, 1),
            Between("a", 1, 2),
            StartsWith("s", "A"),
            IsNull("n"),
            TruePredicate(),
        ):
            assert norm(pred) == pred


class TestPushdownGain:
    def test_not_or_becomes_pushable_interval(self):
        """The payoff: a NOT(OR) over a NOT NULL column pushes down."""
        from repro import DataSource, ProviderCluster
        from repro.client.rewriter import rewrite_predicate
        from repro.workloads.employees import employees_table

        source = DataSource(ProviderCluster(3, 2), seed=89)
        source.outsource_table(employees_table(5, seed=89))
        sharing = source.sharing("Employees")
        pred = Not(
            Or(
                (
                    Comparison("salary", ComparisonOp.LT, 30_000),
                    Comparison("salary", ComparisonOp.GT, 70_000),
                )
            )
        ).bind(sharing.schema)
        rewritten = rewrite_predicate(pred, sharing)
        assert len(rewritten.intervals) == 1
        assert not rewritten.has_residual
        interval = rewritten.intervals[0]
        assert (interval.low, interval.high) == (30_000, 70_000)
