"""Unit tests for the plaintext reference executor."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import (
    PlaintextExecutor,
    compute_aggregate,
    rows_equal_unordered,
)
from repro.sqlengine.expression import Between, Comparison, ComparisonOp
from repro.sqlengine.query import (
    Aggregate,
    AggregateFunc,
    Delete,
    Insert,
    JoinSelect,
    Select,
    Update,
)
from repro.sqlengine.schema import TableSchema, integer_column, string_column
from repro.sqlengine.table import Table


@pytest.fixture
def catalog():
    catalog = Catalog()
    emp = Table(
        TableSchema(
            "E",
            (
                integer_column("eid", 1, 100, domain_label="d/eid"),
                string_column("name", 6),
                integer_column("salary", 0, 1000, nullable=True),
            ),
            primary_key="eid",
        ),
        [
            {"eid": 1, "name": "ANA", "salary": 100},
            {"eid": 2, "name": "BOB", "salary": 200},
            {"eid": 3, "name": "CARA", "salary": 300},
            {"eid": 4, "name": "DAN", "salary": None},
        ],
    )
    mgr = Table(
        TableSchema(
            "M",
            (
                integer_column("eid", 1, 100, domain_label="d/eid"),
                string_column("title", 6),
            ),
        ),
        [
            {"eid": 1, "title": "CTO"},
            {"eid": 3, "title": "VP"},
        ],
    )
    catalog.add_table(emp)
    catalog.add_table(mgr)
    return catalog


@pytest.fixture
def executor(catalog):
    return PlaintextExecutor(catalog)


class TestSelect:
    def test_filter_and_project(self, executor):
        rows = executor.execute(
            Select("E", columns=("name",), where=Between("salary", 150, 300))
        )
        assert rows_equal_unordered(rows, [{"name": "BOB"}, {"name": "CARA"}])

    def test_unknown_projection_rejected(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Select("E", columns=("nope",)))

    def test_unknown_table_rejected(self, executor):
        with pytest.raises(SchemaError):
            executor.execute(Select("Nope"))


class TestAggregates:
    def test_count_star_and_column(self, executor):
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.COUNT, None))) == 4
        # COUNT(col) skips NULLs
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.COUNT, "salary"))) == 3

    def test_sum_ignores_nulls(self, executor):
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.SUM, "salary"))) == 600

    def test_avg(self, executor):
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.AVG, "salary"))) == 200

    def test_min_max(self, executor):
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.MIN, "salary"))) == 100
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.MAX, "salary"))) == 300

    def test_median_lower_convention(self, executor):
        # values 100,200,300 → median 200; with 4 values, lower middle
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.MEDIAN, "salary"))) == 200
        assert compute_aggregate(
            Aggregate(AggregateFunc.MEDIAN, "x"),
            [{"x": 1}, {"x": 2}, {"x": 3}, {"x": 4}],
        ) == 2

    def test_empty_aggregates(self, executor):
        empty = Comparison("salary", ComparisonOp.GT, 999)
        assert executor.execute(Select("E", where=empty, aggregate=Aggregate(AggregateFunc.SUM, "salary"))) is None
        assert executor.execute(Select("E", where=empty, aggregate=Aggregate(AggregateFunc.COUNT, None))) == 0

    def test_unknown_aggregate_column(self, executor):
        with pytest.raises(QueryError):
            executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.SUM, "zzz")))


class TestJoin:
    def test_equi_join(self, executor):
        rows = executor.execute(JoinSelect("E", "M", "eid", "eid"))
        assert len(rows) == 2
        assert {r["M.title"] for r in rows} == {"CTO", "VP"}

    def test_join_projection(self, executor):
        rows = executor.execute(
            JoinSelect("E", "M", "eid", "eid", columns=("E.name", "M.title"))
        )
        assert rows_equal_unordered(
            rows,
            [
                {"E.name": "ANA", "M.title": "CTO"},
                {"E.name": "CARA", "M.title": "VP"},
            ],
        )

    def test_join_where(self, executor):
        rows = executor.execute(
            JoinSelect(
                "E", "M", "eid", "eid",
                where=Comparison("E.salary", ComparisonOp.GE, 300),
            )
        )
        assert len(rows) == 1 and rows[0]["M.title"] == "VP"

    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinSelect("E", "E", "eid", "eid")


class TestWrites:
    def test_insert(self, executor):
        assert executor.execute(Insert("E", {"eid": 9, "name": "EVE", "salary": 50})) == 1
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.COUNT, None))) == 5

    def test_update(self, executor):
        changed = executor.execute(
            Update("E", {"salary": 999}, Comparison("name", ComparisonOp.EQ, "BOB"))
        )
        assert changed == 1
        assert executor.execute(Select("E", aggregate=Aggregate(AggregateFunc.MAX, "salary"))) == 999

    def test_delete(self, executor):
        removed = executor.execute(Delete("E", Comparison("salary", ComparisonOp.LT, 250)))
        assert removed == 2

    def test_unknown_query_type(self, executor):
        with pytest.raises(QueryError):
            executor.execute(object())


class TestRowsEqualUnordered:
    def test_order_insensitive(self):
        a = [{"x": 1}, {"x": 2}]
        b = [{"x": 2}, {"x": 1}]
        assert rows_equal_unordered(a, b)

    def test_multiset_semantics(self):
        assert not rows_equal_unordered([{"x": 1}], [{"x": 1}, {"x": 1}])

    def test_mixed_types_no_crash(self):
        a = [{"x": None}, {"x": 1}]
        b = [{"x": 1}, {"x": None}]
        assert rows_equal_unordered(a, b)
