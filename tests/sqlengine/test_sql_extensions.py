"""Parser and executor tests for GROUP BY / ORDER BY / LIMIT and the
extended string alphabet."""

import pytest

from repro.core.encoding import EXTENDED_ALPHABET, StringCodec
from repro.errors import EncodingError, ParseError
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, compute_group_aggregate
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.sqlengine.schema import TableSchema, integer_column, string_column
from repro.sqlengine.sqlparser import parse_sql
from repro.sqlengine.table import Table


class TestParserClauses:
    def test_group_by(self):
        q = parse_sql("SELECT department, SUM(salary) FROM E GROUP BY department")
        assert q.group_by == "department"
        assert q.aggregate == Aggregate(AggregateFunc.SUM, "salary")
        assert q.columns == ()

    def test_group_by_without_projection(self):
        q = parse_sql("SELECT COUNT(*) FROM E GROUP BY department")
        assert q.group_by == "department"

    def test_group_projection_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT name, SUM(salary) FROM E GROUP BY department")

    def test_mixed_projection_without_group_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT name, SUM(salary) FROM E")

    def test_two_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT SUM(a), SUM(b) FROM E")

    def test_order_by_variants(self):
        q = parse_sql("SELECT * FROM E ORDER BY salary")
        assert q.order_by == "salary" and not q.descending
        q = parse_sql("SELECT * FROM E ORDER BY salary ASC")
        assert not q.descending
        q = parse_sql("SELECT * FROM E ORDER BY salary DESC")
        assert q.descending

    def test_limit(self):
        q = parse_sql("SELECT * FROM E LIMIT 10")
        assert q.limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM E LIMIT 'ten'")

    def test_full_clause_order(self):
        q = parse_sql(
            "SELECT name FROM E WHERE salary > 5 ORDER BY salary DESC LIMIT 3"
        )
        assert q.order_by == "salary" and q.descending and q.limit == 3

    def test_clauses_on_join_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM A JOIN B ON A.x = B.y LIMIT 3")


class TestExecutorClauses:
    @pytest.fixture
    def executor(self):
        schema = TableSchema(
            "E",
            (
                integer_column("id", 1, 100),
                string_column("dept", 6),
                integer_column("v", 0, 1000, nullable=True),
            ),
            primary_key="id",
        )
        table = Table(
            schema,
            [
                {"id": 1, "dept": "A", "v": 10},
                {"id": 2, "dept": "B", "v": 20},
                {"id": 3, "dept": "A", "v": 30},
                {"id": 4, "dept": "B", "v": None},
                {"id": 5, "dept": "C", "v": 5},
            ],
        )
        catalog = Catalog()
        catalog.add_table(table)
        return PlaintextExecutor(catalog)

    def test_group_sum(self, executor):
        out = executor.execute(parse_sql("SELECT dept, SUM(v) FROM E GROUP BY dept"))
        assert out == [
            {"dept": "A", "sum": 40},
            {"dept": "B", "sum": 20},
            {"dept": "C", "sum": 5},
        ]

    def test_group_count_star_vs_column(self, executor):
        star = executor.execute(parse_sql("SELECT COUNT(*) FROM E GROUP BY dept"))
        col = executor.execute(parse_sql("SELECT COUNT(v) FROM E GROUP BY dept"))
        assert star[1] == {"dept": "B", "count": 2}
        assert col[1] == {"dept": "B", "count": 1}  # NULL skipped

    def test_group_null_keys_excluded(self):
        rows = [{"g": None, "v": 1}, {"g": 2, "v": 3}]
        out = compute_group_aggregate(
            Aggregate(AggregateFunc.SUM, "v"), "g", rows
        )
        assert out == [{"g": 2, "sum": 3}]

    def test_order_by_asc_nulls_first(self, executor):
        out = executor.execute(parse_sql("SELECT id FROM E ORDER BY v"))
        assert [r["id"] for r in out] == [4, 5, 1, 2, 3]

    def test_order_by_desc(self, executor):
        out = executor.execute(parse_sql("SELECT id FROM E ORDER BY v DESC"))
        assert [r["id"] for r in out] == [3, 2, 1, 5, 4]

    def test_limit(self, executor):
        out = executor.execute(parse_sql("SELECT id FROM E ORDER BY v DESC LIMIT 2"))
        assert [r["id"] for r in out] == [3, 2]

    def test_limit_zero(self, executor):
        assert executor.execute(parse_sql("SELECT * FROM E LIMIT 0")) == []


class TestExtendedAlphabet:
    codec = StringCodec(width=6, alphabet=EXTENDED_ALPHABET)

    def test_digits_roundtrip(self):
        for s in ("A1", "42", "USER7", "2B"):
            assert self.codec.decode(self.codec.encode(s)) == s

    def test_digits_sort_before_letters(self):
        assert self.codec.encode("1") < self.codec.encode("A")
        assert self.codec.encode("A1") < self.codec.encode("AA")

    def test_order_matches_padded_comparison(self):
        words = ["", "0", "99", "A", "A0", "USER1", "USER2", "Z"]
        encoded = [self.codec.encode(w) for w in words]
        assert encoded == sorted(encoded)

    def test_prefix_range(self):
        low, high = self.codec.prefix_range("USER")
        assert low <= self.codec.encode("USER1") <= high
        assert not low <= self.codec.encode("VSER1") <= high

    def test_default_alphabet_still_rejects_digits(self):
        with pytest.raises(EncodingError):
            StringCodec(width=5).encode("A1")

    def test_bad_alphabets_rejected(self):
        with pytest.raises(EncodingError):
            StringCodec(width=3, alphabet="ABC")  # no pad char first
        with pytest.raises(EncodingError):
            StringCodec(width=3, alphabet="*AA")  # duplicates

    def test_column_integration(self):
        from repro import DataSource, ProviderCluster

        schema = TableSchema(
            "Users",
            (
                integer_column("uid", 1, 100),
                string_column("handle", 8, alphabet=EXTENDED_ALPHABET),
            ),
            primary_key="uid",
        )
        table = Table(
            schema,
            [
                {"uid": 1, "handle": "ALICE99"},
                {"uid": 2, "handle": "BOB7"},
                {"uid": 3, "handle": "ALICE01"},
            ],
        )
        source = DataSource(ProviderCluster(3, 2), seed=5)
        source.outsource_table(table)
        rows = source.sql("SELECT uid FROM Users WHERE handle LIKE 'ALICE%'")
        assert sorted(r["uid"] for r in rows) == [1, 3]
        rows = source.sql("SELECT * FROM Users WHERE handle = 'BOB7'")
        assert rows[0]["uid"] == 2
