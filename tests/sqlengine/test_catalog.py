"""Unit tests for the table catalog."""

import pytest

from repro.errors import SchemaError
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.schema import TableSchema, integer_column
from repro.sqlengine.table import Table

SCHEMA = TableSchema("T", (integer_column("x", 0, 10),))


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        table = catalog.create_table(SCHEMA)
        assert catalog.table("T") is table
        assert catalog.schema("T") is SCHEMA
        assert catalog.has_table("T")
        assert catalog.table_names() == ["T"]
        assert len(catalog) == 1

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table(SCHEMA)
        with pytest.raises(SchemaError):
            catalog.create_table(SCHEMA)

    def test_add_existing_table(self):
        catalog = Catalog()
        table = Table(SCHEMA, [{"x": 1}])
        catalog.add_table(table)
        assert len(catalog.table("T").rows()) == 1
        with pytest.raises(SchemaError):
            catalog.add_table(Table(SCHEMA))

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(SCHEMA)
        catalog.drop_table("T")
        assert not catalog.has_table("T")
        with pytest.raises(SchemaError):
            catalog.drop_table("T")

    def test_missing_lookup(self):
        with pytest.raises(SchemaError):
            Catalog().table("nope")

    def test_iteration(self):
        catalog = Catalog()
        catalog.create_table(SCHEMA)
        assert [t.name for t in catalog] == ["T"]
