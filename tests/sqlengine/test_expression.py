"""Unit tests for predicate expressions and pushdown classification."""


from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    IsNull,
    Not,
    Or,
    StartsWith,
    TruePredicate,
    classify_pushdown,
    conjunction,
    flip_comparison,
    split_conjunction,
)
from repro.sqlengine.schema import TableSchema, integer_column, string_column

SCHEMA = TableSchema(
    "T",
    (
        integer_column("a", 0, 100),
        string_column("s", 6),
        integer_column("hidden", 0, 100, searchable=False),
        integer_column("n", 0, 100, nullable=True),
    ),
)

ROW = {"a": 50, "s": "HELLO", "hidden": 7, "n": None}


class TestComparison:
    def test_eq(self):
        assert Comparison("a", ComparisonOp.EQ, 50).matches(ROW)
        assert not Comparison("a", ComparisonOp.EQ, 51).matches(ROW)

    def test_ordering_ops(self):
        assert Comparison("a", ComparisonOp.LT, 51).matches(ROW)
        assert Comparison("a", ComparisonOp.LE, 50).matches(ROW)
        assert Comparison("a", ComparisonOp.GT, 49).matches(ROW)
        assert Comparison("a", ComparisonOp.GE, 50).matches(ROW)
        assert Comparison("a", ComparisonOp.NE, 49).matches(ROW)

    def test_null_comparisons_false(self):
        for op in ComparisonOp:
            assert not Comparison("n", op, 5).matches(ROW)

    def test_string_case_insensitive(self):
        assert Comparison("s", ComparisonOp.EQ, "hello").matches(ROW)

    def test_bind_coerces(self):
        bound = Comparison("a", ComparisonOp.EQ, 50).bind(SCHEMA)
        assert bound.value == 50

    def test_referenced_columns(self):
        assert Comparison("a", ComparisonOp.EQ, 1).referenced_columns() == {"a"}


class TestBetween:
    def test_inclusive(self):
        assert Between("a", 50, 60).matches(ROW)
        assert Between("a", 40, 50).matches(ROW)
        assert not Between("a", 51, 60).matches(ROW)

    def test_null_false(self):
        assert not Between("n", 0, 100).matches(ROW)

    def test_string_bounds_folded(self):
        assert Between("s", "ha", "hz").matches(ROW)


class TestStartsWith:
    def test_prefix(self):
        assert StartsWith("s", "HE").matches(ROW)
        assert StartsWith("s", "he").matches(ROW)
        assert not StartsWith("s", "EL").matches(ROW)

    def test_null_false(self):
        assert not StartsWith("n", "X").matches({"n": None})


class TestNullAndLogic:
    def test_is_null(self):
        assert IsNull("n").matches(ROW)
        assert not IsNull("a").matches(ROW)
        assert IsNull("a", negated=True).matches(ROW)

    def test_and_or_not(self):
        t = Comparison("a", ComparisonOp.EQ, 50)
        f = Comparison("a", ComparisonOp.EQ, 0)
        assert And((t, t)).matches(ROW)
        assert not And((t, f)).matches(ROW)
        assert Or((f, t)).matches(ROW)
        assert not Or((f, f)).matches(ROW)
        assert Not(f).matches(ROW)

    def test_true_predicate(self):
        assert TruePredicate().matches({})
        assert TruePredicate().referenced_columns() == frozenset()


class TestConjunctionHelpers:
    def test_conjunction_flattens(self):
        a = Comparison("a", ComparisonOp.EQ, 1)
        b = Comparison("a", ComparisonOp.EQ, 2)
        c = Comparison("a", ComparisonOp.EQ, 3)
        merged = conjunction([And((a, b)), c, TruePredicate()])
        assert isinstance(merged, And)
        assert len(merged.parts) == 3

    def test_conjunction_empty(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_conjunction_single(self):
        a = Comparison("a", ComparisonOp.EQ, 1)
        assert conjunction([a]) is a

    def test_split_roundtrip(self):
        a = Comparison("a", ComparisonOp.EQ, 1)
        b = Between("a", 1, 2)
        assert split_conjunction(conjunction([a, b])) == [a, b]
        assert split_conjunction(TruePredicate()) == []


class TestPushdownClassification:
    def test_searchable_comparison_pushed(self):
        push, residual = classify_pushdown(
            Comparison("a", ComparisonOp.EQ, 5), SCHEMA
        )
        assert len(push) == 1 and not residual

    def test_ne_not_pushed(self):
        push, residual = classify_pushdown(
            Comparison("a", ComparisonOp.NE, 5), SCHEMA
        )
        assert not push and len(residual) == 1

    def test_non_searchable_not_pushed(self):
        push, residual = classify_pushdown(
            Comparison("hidden", ComparisonOp.EQ, 5), SCHEMA
        )
        assert not push and len(residual) == 1

    def test_or_not_pushed(self):
        pred = Or(
            (
                Comparison("a", ComparisonOp.EQ, 1),
                Comparison("a", ComparisonOp.EQ, 2),
            )
        )
        push, residual = classify_pushdown(pred, SCHEMA)
        assert not push and residual == [pred]

    def test_mixed_conjunction_splits(self):
        pred = And(
            (
                Between("a", 1, 10),
                IsNull("n"),
                StartsWith("s", "H"),
            )
        )
        push, residual = classify_pushdown(pred, SCHEMA)
        assert len(push) == 2
        assert len(residual) == 1
        assert isinstance(residual[0], IsNull)


class TestFlip:
    def test_flip_ops(self):
        assert flip_comparison(ComparisonOp.LT) is ComparisonOp.GT
        assert flip_comparison(ComparisonOp.GE) is ComparisonOp.LE
        assert flip_comparison(ComparisonOp.EQ) is ComparisonOp.EQ
