"""Unit tests for table schemas and columns."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import SchemaError
from repro.sqlengine.schema import (
    Column,
    ColumnType,
    ForeignKey,
    TableSchema,
    boolean_column,
    coerce_literal,
    date_column,
    decimal_column,
    integer_column,
    python_value_sort_key,
    string_column,
)


class TestColumnValidation:
    def test_integer_requires_bounds(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INTEGER)

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            integer_column("x", 10, 5)

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            integer_column("bad name", 0, 1)
        with pytest.raises(SchemaError):
            integer_column("", 0, 1)

    def test_underscore_names_allowed(self):
        assert integer_column("my_col_2", 0, 1).name == "my_col_2"

    def test_string_width_validation(self):
        with pytest.raises(SchemaError):
            string_column("s", 0)

    def test_value_validation(self):
        col = integer_column("x", 0, 10)
        col.validate_value(5)
        with pytest.raises(SchemaError):
            col.validate_value(11)
        with pytest.raises(SchemaError):
            col.validate_value("five")

    def test_null_validation(self):
        not_null = integer_column("x", 0, 10)
        with pytest.raises(SchemaError):
            not_null.validate_value(None)
        nullable = integer_column("x", 0, 10, nullable=True)
        nullable.validate_value(None)

    def test_is_numeric(self):
        assert integer_column("x", 0, 1).is_numeric()
        assert decimal_column("d", 0, 1).is_numeric()
        assert not string_column("s", 5).is_numeric()
        assert not date_column("t").is_numeric()
        assert not boolean_column("b").is_numeric()

    def test_effective_domain_label(self):
        col = integer_column("eid", 0, 9, domain_label="dom/eid")
        assert col.effective_domain_label("T") == "dom/eid"
        plain = integer_column("eid", 0, 9)
        assert plain.effective_domain_label("T") == "T.eid"


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", (integer_column("x", 0, 1), integer_column("x", 0, 1)))

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", ())

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", (integer_column("x", 0, 1),), primary_key="y")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "T",
                (integer_column("x", 0, 1),),
                foreign_keys=(ForeignKey("y", "U", "y"),),
            )

    def test_column_lookup(self):
        schema = TableSchema("T", (integer_column("x", 0, 1),))
        assert schema.column("x").name == "x"
        assert schema.has_column("x")
        assert not schema.has_column("y")
        with pytest.raises(SchemaError):
            schema.column("y")

    def test_validate_row_unknown_column(self):
        schema = TableSchema("T", (integer_column("x", 0, 1),))
        with pytest.raises(SchemaError):
            schema.validate_row({"x": 0, "z": 1})

    def test_validate_row_missing_not_null(self):
        schema = TableSchema("T", (integer_column("x", 0, 1),))
        with pytest.raises(SchemaError):
            schema.validate_row({})

    def test_validate_row_fills_nullable(self):
        schema = TableSchema(
            "T",
            (
                integer_column("x", 0, 1),
                integer_column("y", 0, 1, nullable=True),
            ),
        )
        row = schema.validate_row({"x": 1})
        assert row == {"x": 1, "y": None}


class TestLiteralCoercion:
    def test_date_string_coerced(self):
        col = date_column("d")
        assert coerce_literal(col, "2020-01-15") == datetime.date(2020, 1, 15)

    def test_bad_date_string_raises(self):
        with pytest.raises(SchemaError):
            coerce_literal(date_column("d"), "not-a-date")

    def test_decimal_coercion(self):
        col = decimal_column("p", 0, 10)
        assert coerce_literal(col, 5) == Decimal(5)
        assert coerce_literal(col, "2.5") == Decimal("2.5")

    def test_integer_from_whole_decimal(self):
        col = integer_column("x", 0, 10)
        assert coerce_literal(col, Decimal("5")) == 5

    def test_integer_from_fractional_decimal_raises(self):
        with pytest.raises(SchemaError):
            coerce_literal(integer_column("x", 0, 10), Decimal("5.5"))

    def test_boolean_from_int(self):
        assert coerce_literal(boolean_column("b"), 1) is True

    def test_none_passthrough(self):
        assert coerce_literal(integer_column("x", 0, 1), None) is None


class TestSortKey:
    def test_nulls_first(self):
        col = integer_column("x", 0, 10, nullable=True)
        assert python_value_sort_key(col, None) < python_value_sort_key(col, 0)

    def test_value_order(self):
        col = integer_column("x", 0, 10)
        assert python_value_sort_key(col, 3) < python_value_sort_key(col, 7)
