"""Unit tests for the SQL front end."""

import pytest
from decimal import Decimal

from repro.errors import ParseError
from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    IsNull,
    Not,
    Or,
    StartsWith,
    TruePredicate,
)
from repro.sqlengine.query import (
    Aggregate,
    AggregateFunc,
    Delete,
    Insert,
    JoinSelect,
    Select,
    Update,
)
from repro.sqlengine.sqlparser import parse_sql, tokenize


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''BRIEN'")
        assert tokens[0].value == "'O''BRIEN'"

    def test_junk_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT #")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"


class TestSelect:
    def test_star(self):
        q = parse_sql("SELECT * FROM Employees")
        assert q == Select("Employees")

    def test_projection(self):
        q = parse_sql("SELECT name, salary FROM Employees")
        assert q.columns == ("name", "salary")

    def test_where_equality(self):
        q = parse_sql("SELECT * FROM T WHERE name = 'John'")
        assert q.where == Comparison("name", ComparisonOp.EQ, "John")

    def test_where_between(self):
        q = parse_sql("SELECT * FROM T WHERE salary BETWEEN 10 AND 40")
        assert q.where == Between("salary", 10, 40)

    def test_where_and_or_precedence(self):
        q = parse_sql("SELECT * FROM T WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.parts[1], And)

    def test_parentheses(self):
        q = parse_sql("SELECT * FROM T WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.parts[0], Or)

    def test_not(self):
        q = parse_sql("SELECT * FROM T WHERE NOT a = 1")
        assert isinstance(q.where, Not)

    def test_comparison_operators(self):
        for text, op in [
            ("<", ComparisonOp.LT),
            ("<=", ComparisonOp.LE),
            (">", ComparisonOp.GT),
            (">=", ComparisonOp.GE),
            ("!=", ComparisonOp.NE),
            ("<>", ComparisonOp.NE),
        ]:
            q = parse_sql(f"SELECT * FROM T WHERE a {text} 5")
            assert q.where == Comparison("a", op, 5)

    def test_like_prefix(self):
        q = parse_sql("SELECT * FROM T WHERE name LIKE 'AB%'")
        assert q.where == StartsWith("name", "AB")

    def test_like_exact(self):
        q = parse_sql("SELECT * FROM T WHERE name LIKE 'ABC'")
        assert q.where == Comparison("name", ComparisonOp.EQ, "ABC")

    def test_like_infix_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM T WHERE name LIKE '%AB%'")

    def test_is_null(self):
        q = parse_sql("SELECT * FROM T WHERE x IS NULL")
        assert q.where == IsNull("x")
        q = parse_sql("SELECT * FROM T WHERE x IS NOT NULL")
        assert q.where == IsNull("x", negated=True)

    def test_decimal_literal(self):
        q = parse_sql("SELECT * FROM T WHERE p = 3.5")
        assert q.where.value == Decimal("3.5")

    def test_boolean_literals(self):
        q = parse_sql("SELECT * FROM T WHERE b = TRUE")
        assert q.where.value is True

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT * FROM T;") == Select("T")

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM T garbage")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("   ")


class TestAggregates:
    def test_count_star(self):
        q = parse_sql("SELECT COUNT(*) FROM T")
        assert q.aggregate == Aggregate(AggregateFunc.COUNT, None)

    def test_all_functions(self):
        for name, func in [
            ("SUM", AggregateFunc.SUM),
            ("AVG", AggregateFunc.AVG),
            ("MIN", AggregateFunc.MIN),
            ("MAX", AggregateFunc.MAX),
            ("MEDIAN", AggregateFunc.MEDIAN),
            ("COUNT", AggregateFunc.COUNT),
        ]:
            q = parse_sql(f"SELECT {name}(salary) FROM T")
            assert q.aggregate == Aggregate(func, "salary")

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT SUM(*) FROM T")

    def test_aggregate_with_where(self):
        q = parse_sql("SELECT SUM(salary) FROM T WHERE name = 'John'")
        assert q.is_aggregate
        assert isinstance(q.where, Comparison)


class TestJoin:
    def test_basic_join(self):
        q = parse_sql(
            "SELECT Employees.name FROM Employees JOIN Managers "
            "ON Employees.eid = Managers.eid"
        )
        assert q == JoinSelect(
            "Employees", "Managers", "eid", "eid",
            columns=("Employees.name",),
        )

    def test_join_reversed_on_order(self):
        q = parse_sql(
            "SELECT * FROM A JOIN B ON B.y = A.x"
        )
        assert (q.left_column, q.right_column) == ("x", "y")

    def test_join_with_where(self):
        q = parse_sql(
            "SELECT * FROM A JOIN B ON A.x = B.y WHERE A.z = 5"
        )
        assert q.where == Comparison("A.z", ComparisonOp.EQ, 5)

    def test_join_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT SUM(A.x) FROM A JOIN B ON A.x = B.y")

    def test_bad_on_clause(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM A JOIN B ON C.x = D.y")


class TestWrites:
    def test_insert(self):
        q = parse_sql("INSERT INTO T (a, b) VALUES (1, 'X')")
        assert q == Insert("T", {"a": 1, "b": "X"})

    def test_insert_null(self):
        q = parse_sql("INSERT INTO T (a) VALUES (NULL)")
        assert q.row == {"a": None}

    def test_insert_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_sql("INSERT INTO T (a, b) VALUES (1)")

    def test_update(self):
        q = parse_sql("UPDATE T SET a = 1, b = 'X' WHERE c = 2")
        assert q == Update(
            "T", {"a": 1, "b": "X"}, Comparison("c", ComparisonOp.EQ, 2)
        )

    def test_update_no_where(self):
        q = parse_sql("UPDATE T SET a = 1")
        assert isinstance(q.where, TruePredicate)

    def test_delete(self):
        q = parse_sql("DELETE FROM T WHERE a = 1")
        assert q == Delete("T", Comparison("a", ComparisonOp.EQ, 1))

    def test_delete_all(self):
        q = parse_sql("DELETE FROM T")
        assert isinstance(q.where, TruePredicate)

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse_sql("DROP TABLE T")
