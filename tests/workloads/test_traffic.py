"""Open-loop traffic generation: determinism, tails, skew, churn."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.employees import EID_HI, employees_table
from repro.workloads.traffic import (
    KIND_AGGREGATE,
    KIND_INSERT,
    KIND_POINT,
    KIND_RANGE,
    KIND_UPDATE,
    TrafficProfile,
    generate_traffic,
)


@pytest.fixture(scope="module")
def eids():
    table = employees_table(50, seed=3)
    return sorted(row["eid"] for row in table.rows())


class TestProfileValidation:
    def test_defaults_are_valid(self):
        TrafficProfile()

    def test_alpha_must_have_finite_mean(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile(pareto_alpha=1.0)

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TrafficProfile(mean_interarrival=0)
        with pytest.raises(ConfigurationError):
            TrafficProfile(mix=(1.0, 0.0, 0.0, 0.0))  # 4 weights
        with pytest.raises(ConfigurationError):
            TrafficProfile(mix=(0.0, 0.0, 0.0, 0.0, 0.0))  # zero sum
        with pytest.raises(ConfigurationError):
            TrafficProfile(zipf_skew=-0.1)
        with pytest.raises(ConfigurationError):
            TrafficProfile(session_mean_queries=0.5)
        with pytest.raises(ConfigurationError):
            TrafficProfile(priority_weights=(0.0, 0.0, 0.0))

    def test_scaled_multiplies_rate_only(self):
        profile = TrafficProfile(mean_interarrival=0.2)
        flooded = profile.scaled(4.0)
        assert flooded.mean_interarrival == pytest.approx(0.05)
        assert flooded.mix == profile.mix
        with pytest.raises(ConfigurationError):
            profile.scaled(0)


class TestDeterminism:
    def test_same_seed_identical_events(self, eids):
        a = generate_traffic(eids, 200, seed=42)
        b = generate_traffic(eids, 200, seed=42)
        assert a == b

    def test_different_seed_differs(self, eids):
        a = generate_traffic(eids, 200, seed=42)
        b = generate_traffic(eids, 200, seed=43)
        assert a != b

    def test_prefix_stability(self, eids):
        """A longer run begins with exactly the shorter run's events."""
        short = generate_traffic(eids, 50, seed=9)
        long = generate_traffic(eids, 200, seed=9)
        assert long[:50] == short


class TestArrivalProcess:
    def test_arrivals_strictly_increase(self, eids):
        events = generate_traffic(eids, 300, seed=5)
        arrivals = [e.arrival for e in events]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_mean_rate_near_target(self, eids):
        profile = TrafficProfile(mean_interarrival=0.1, pareto_alpha=2.5)
        events = generate_traffic(eids, 2000, seed=5, profile=profile)
        mean_gap = events[-1].arrival / len(events)
        assert mean_gap == pytest.approx(0.1, rel=0.25)

    def test_heavy_tail_bursts(self, eids):
        """Pareto gaps are heavy-tailed: most gaps sit near the scale
        x_m (bursts), financed by rare gaps many times the mean."""
        profile = TrafficProfile(mean_interarrival=0.1, pareto_alpha=1.3)
        events = generate_traffic(eids, 1000, seed=5, profile=profile)
        gaps = [
            b.arrival - a.arrival for a, b in zip(events, events[1:])
        ]
        mean_gap = sum(gaps) / len(gaps)
        assert max(gaps) > 5 * mean_gap
        below_mean = sum(1 for g in gaps if g < mean_gap)
        assert below_mean / len(gaps) > 0.7


class TestStatementShape:
    def test_kinds_follow_mix(self, eids):
        events = generate_traffic(eids, 2000, seed=11)
        counts = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        # default mix (0.50, 0.15, 0.10, 0.15, 0.10): loose bounds
        assert counts[KIND_POINT] > counts[KIND_RANGE]
        assert counts[KIND_POINT] > counts[KIND_UPDATE]
        assert set(counts) == {
            KIND_POINT, KIND_RANGE, KIND_AGGREGATE, KIND_UPDATE, KIND_INSERT,
        }

    def test_zipf_concentrates_point_keys(self, eids):
        """The hottest key absorbs far more than a uniform share."""
        events = generate_traffic(eids, 2000, seed=11)
        hits = {}
        for event in events:
            if event.kind == KIND_POINT:
                (eid,) = event.params
                hits[eid] = hits.get(eid, 0) + 1
        total = sum(hits.values())
        assert max(hits.values()) / total > 3.0 / len(eids)

    def test_params_match_sql(self, eids):
        for event in generate_traffic(eids, 300, seed=13):
            for param in event.params:
                assert str(param) in event.sql
            assert event.is_write == (
                event.kind in (KIND_UPDATE, KIND_INSERT)
            )

    def test_insert_eids_fresh_and_descending(self, eids):
        events = generate_traffic(eids, 500, seed=17)
        inserted = [
            e.params[0] for e in events if e.kind == KIND_INSERT
        ]
        assert inserted  # the default mix produces inserts
        assert inserted == list(
            range(EID_HI, EID_HI - len(inserted), -1)
        )
        assert not set(inserted) & set(eids)

    def test_priorities_cover_all_classes(self, eids):
        events = generate_traffic(eids, 1000, seed=19)
        levels = {e.priority for e in events}
        assert levels == {0, 1, 2}
        counts = [0, 0, 0]
        for event in events:
            counts[event.priority] += 1
        # default weights (0.6, 0.25, 0.15) are strictly ordered
        assert counts[0] > counts[1] > counts[2]


class TestSessionChurn:
    def test_sessions_churn_through_the_pool(self, eids):
        events = generate_traffic(eids, 1000, seed=23)
        distinct = {e.session_id for e in events}
        # 8 initial sessions plus geometric retirements: far more than
        # the pool, far fewer than one per query
        assert 8 < len(distinct) < len(events)

    def test_generator_input_validation(self):
        with pytest.raises(ConfigurationError):
            generate_traffic([], 10)
        with pytest.raises(ConfigurationError):
            generate_traffic([1], -1)
        assert generate_traffic([1], 0) == []
