"""Tests for the e-commerce click-log workload."""

import datetime

import pytest

from repro import DataSource, ProviderCluster
from repro.workloads.ecommerce import (
    AMOUNT_HI,
    EVENT_TYPES,
    clicklog_schema,
    clicklog_table,
)


class TestGeneration:
    def test_deterministic(self):
        assert clicklog_table(50, seed=3).rows() == clicklog_table(50, seed=3).rows()

    def test_row_shape(self):
        table = clicklog_table(100, seed=4)
        assert len(table) == 100
        for row in table:
            assert row["action"] in EVENT_TYPES
            assert 0 <= row["amount_cents"] <= AMOUNT_HI
            assert isinstance(row["day"], datetime.date)

    def test_view_events_carry_no_amount(self):
        table = clicklog_table(200, seed=5)
        for row in table:
            if row["action"] in ("VIEW", "CART"):
                assert row["amount_cents"] == 0
            else:
                assert row["amount_cents"] > 0

    def test_zipf_concentration(self):
        table = clicklog_table(1000, seed=6, n_users=50)
        counts = {}
        for row in table:
            counts[row["user"]] = counts.get(row["user"], 0) + 1
        hottest = max(counts.values())
        assert hottest > 2 * (1000 / 50)  # far above the uniform share

    def test_validation(self):
        with pytest.raises(ValueError):
            clicklog_table(0)

    def test_amount_column_randomly_shared(self):
        schema = clicklog_schema()
        assert not schema.column("amount_cents").searchable
        assert schema.column("user").searchable


class TestOutsourcedAnalytics:
    @pytest.fixture(scope="class")
    def source(self):
        source = DataSource(ProviderCluster(4, 2), seed=7)
        source.outsource_table(clicklog_table(400, seed=7))
        return source

    def test_grouped_revenue(self, source):
        rows = source.sql(
            "SELECT action, SUM(amount_cents) FROM Events GROUP BY action"
        )
        by_action = {row["action"]: row["sum"] for row in rows}
        assert set(by_action) == set(EVENT_TYPES)
        assert by_action["VIEW"] == 0
        assert by_action["BUY"] > 0

    def test_date_range_counts(self, source):
        total = source.sql("SELECT COUNT(*) FROM Events")
        windowed = source.sql(
            "SELECT COUNT(*) FROM Events "
            "WHERE day BETWEEN '2008-11-10' AND '2008-11-20'"
        )
        assert 0 < windowed < total

    def test_topk_by_day(self, source):
        rows = source.sql(
            "SELECT event_id, day FROM Events ORDER BY day DESC LIMIT 5"
        )
        days = [row["day"] for row in rows]
        assert days == sorted(days, reverse=True)
        assert len(rows) == 5

    def test_user_prefix_query(self, source):
        rows = source.sql("SELECT * FROM Events WHERE user LIKE 'U00%'")
        assert all(row["user"].startswith("U00") for row in rows)
        assert rows
