"""Unit tests for the synthetic workload generators."""

import pytest

from repro.sim.rng import DeterministicRNG
from repro.workloads.distributions import (
    clamped_normal_int,
    distinct_ints,
    uniform_int,
    zipf_choice,
)
from repro.workloads.documents import (
    PAPER_SITE_A_DOCS,
    PAPER_SITE_B_DOCS,
    PAPER_WORDS_PER_DOC,
    flatten_words,
    generate_corpus,
    paper_corpora,
)
from repro.workloads.employees import (
    employees_table,
    managers_table,
    paper_salary_table,
)
from repro.workloads.medical import (
    medical_table,
    overlapping_patient_ids,
)


class TestDistributions:
    rng = DeterministicRNG(3)

    def test_uniform_bounds(self):
        draw = uniform_int(self.rng, 5, 10)
        assert all(5 <= draw() <= 10 for _ in range(100))

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            uniform_int(self.rng, 10, 5)

    def test_clamped_normal(self):
        draw = clamped_normal_int(self.rng, 50, 10, 0, 100)
        values = [draw() for _ in range(500)]
        assert all(0 <= v <= 100 for v in values)
        assert 40 < sum(values) / len(values) < 60

    def test_clamped_normal_validation(self):
        with pytest.raises(ValueError):
            clamped_normal_int(self.rng, 0, -1, 0, 10)

    def test_zipf_choice(self):
        draw = zipf_choice(self.rng, ["hot", "warm", "cold"], skew=2.0)
        picks = [draw() for _ in range(500)]
        assert picks.count("hot") > picks.count("cold")

    def test_zipf_choice_empty(self):
        with pytest.raises(ValueError):
            zipf_choice(self.rng, [])

    def test_distinct_ints(self):
        values = distinct_ints(self.rng, 50, 0, 59)
        assert len(set(values)) == 50
        with pytest.raises(ValueError):
            distinct_ints(self.rng, 100, 0, 50)


class TestEmployees:
    def test_deterministic(self):
        a = employees_table(20, seed=9).rows()
        b = employees_table(20, seed=9).rows()
        assert a == b

    def test_distinct_eids(self):
        rows = employees_table(200, seed=9).rows()
        assert len({r["eid"] for r in rows}) == 200

    def test_managers_reference_employees(self):
        employees = employees_table(50, seed=9)
        managers = managers_table(employees, fraction=0.2, seed=9)
        eids = {r["eid"] for r in employees}
        assert all(m["eid"] in eids for m in managers)
        assert len(managers) == 10

    def test_manager_fraction_validation(self):
        employees = employees_table(10, seed=9)
        with pytest.raises(ValueError):
            managers_table(employees, fraction=0.0)

    def test_paper_salary_table(self):
        table = paper_salary_table()
        assert [r["salary"] for r in table] == [10, 20, 40, 60, 80]


class TestDocuments:
    def test_paper_sizes(self):
        site_a, site_b = paper_corpora(seed=1)
        assert len(site_a) == PAPER_SITE_A_DOCS
        assert len(site_b) == PAPER_SITE_B_DOCS
        assert all(len(d) == PAPER_WORDS_PER_DOC for d in site_a)

    def test_distinct_words_per_document(self):
        corpus = generate_corpus(5, words_per_doc=200, seed=2)
        for document in corpus:
            assert len(document.words) == 200

    def test_sites_differ(self):
        a = generate_corpus(3, 50, seed=3, site="A")
        b = generate_corpus(3, 50, seed=3, site="B")
        assert a[0].words != b[0].words

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_corpus(0)
        with pytest.raises(ValueError):
            generate_corpus(1, words_per_doc=100, vocabulary_size=50)

    def test_flatten(self):
        corpus = generate_corpus(3, 50, seed=4)
        words = flatten_words(corpus)
        assert words == sorted(set(words))


class TestMedical:
    def test_table_shape(self):
        table = medical_table(100, seed=5)
        assert len(table) == 100
        assert len({r["pid"] for r in table}) == 100

    def test_overlap_control(self):
        a, b = overlapping_patient_ids(100, 200, overlap=0.5, seed=6)
        assert len(a) == 100 and len(b) == 200
        shared = set(a) & set(b)
        assert len(shared) == 50

    def test_zero_overlap(self):
        a, b = overlapping_patient_ids(50, 50, overlap=0.0, seed=7)
        assert not (set(a) & set(b))

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            overlapping_patient_ids(10, 10, overlap=1.5)
