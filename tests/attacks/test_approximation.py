"""Tests for the normalization (approximate-recovery) attack."""

import pytest

from repro.attacks.approximation import (
    attack_op_scheme,
    attack_random_shares,
    evaluate_attack,
    normalization_attack,
)
from repro.core.order_preserving import (
    IntegerDomain,
    MonotoneStrawmanScheme,
    OrderPreservingScheme,
)
from repro.core.secrets import generate_client_secrets
from repro.core.shamir import ShamirScheme
from repro.errors import ShareError
from repro.sim.rng import DeterministicRNG

DOMAIN = IntegerDomain(0, 100_000)
SECRETS = generate_client_secrets(5, seed=73)
VALUES = list(range(0, 100_001, 397))  # ~250 values across the domain


class TestMechanics:
    def test_needs_two_shares(self):
        with pytest.raises(ShareError):
            normalization_attack([5], DOMAIN)

    def test_constant_shares(self):
        estimates = normalization_attack([7, 7, 7], DOMAIN)
        assert estimates == [0.0, 0.0, 0.0]

    def test_extremes_map_to_domain_edges(self):
        estimates = normalization_attack([10, 20, 30], DOMAIN)
        assert estimates[0] == DOMAIN.lo
        assert estimates[2] == DOMAIN.hi

    def test_evaluation_validation(self):
        with pytest.raises(ShareError):
            evaluate_attack([1.0], [1, 2], DOMAIN)
        with pytest.raises(ShareError):
            evaluate_attack([], [], DOMAIN)


class TestSlotSchemeLeaksMagnitude:
    """The honest finding: order preservation leaks approximate values."""

    scheme = OrderPreservingScheme(SECRETS, DOMAIN, threshold=4, label="leak")

    def test_estimates_land_close(self):
        outcome = attack_op_scheme(self.scheme, VALUES, 0)
        assert outcome.leaks_magnitude
        assert outcome.mean_relative_error < 0.02
        assert outcome.within_10_percent > 0.95

    def test_every_provider_leaks(self):
        for provider in range(5):
            outcome = attack_op_scheme(self.scheme, VALUES, provider)
            assert outcome.leaks_magnitude, provider

    def test_strawman_and_slot_leak_comparably(self):
        """Against the *approximate* estimator the keyed slots buy nothing:
        both constructions leak magnitude to within a fraction of a
        percent (contrast with ABL-2, where exact recovery is 100% vs 0%)."""
        strawman = MonotoneStrawmanScheme(SECRETS, DOMAIN)
        slot = attack_op_scheme(self.scheme, VALUES, 0)
        straw = attack_op_scheme(strawman, VALUES, 0)
        assert slot.mean_relative_error == pytest.approx(
            straw.mean_relative_error, rel=0.5
        )


class TestRandomSharesDoNotLeak:
    def test_estimates_no_better_than_guessing(self):
        scheme = ShamirScheme(SECRETS, threshold=3)
        rng = DeterministicRNG(4, "leak")
        shares_per_value = [
            dict(enumerate(scheme.split(value, rng))) for value in VALUES
        ]
        outcome = attack_random_shares(shares_per_value, VALUES, DOMAIN, 0)
        # uniform shares carry no signal: estimates track the share order,
        # which is independent of value order
        assert not outcome.leaks_magnitude
        assert outcome.mean_relative_error > 0.2

    def test_contrast_is_stark(self):
        op = OrderPreservingScheme(SECRETS, DOMAIN, threshold=4, label="c")
        random_scheme = ShamirScheme(SECRETS, threshold=3)
        rng = DeterministicRNG(5, "leak2")
        shares_per_value = [
            dict(enumerate(random_scheme.split(v, rng))) for v in VALUES
        ]
        op_outcome = attack_op_scheme(op, VALUES, 0)
        random_outcome = attack_random_shares(
            shares_per_value, VALUES, DOMAIN, 0
        )
        assert (
            random_outcome.mean_relative_error
            > 10 * op_outcome.mean_relative_error
        )
