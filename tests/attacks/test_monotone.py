"""Unit tests for the strawman attack (ABL-2)."""

import pytest

from repro.attacks.monotone import (
    attack_slot_scheme,
    attack_strawman_scheme,
    break_strawman,
    recover_affine_map,
)
from repro.core.order_preserving import (
    IntegerDomain,
    MonotoneStrawmanScheme,
    OrderPreservingScheme,
)
from repro.core.secrets import generate_client_secrets
from repro.errors import ShareError

DOMAIN = IntegerDomain(0, 50_000)
SECRETS = generate_client_secrets(5, seed=71)
VALUES = list(range(0, 50_001, 97))


class TestAffineRecovery:
    def test_recover_from_two_points(self):
        mapping = recover_affine_map([(1, 10), (3, 16)])
        assert mapping.slope == 3 and mapping.intercept == 7
        assert mapping.invert(10) == 1

    def test_extra_consistent_points_ok(self):
        recover_affine_map([(1, 10), (3, 16), (5, 22)])

    def test_inconsistent_points_rejected(self):
        with pytest.raises(ShareError):
            recover_affine_map([(1, 10), (3, 16), (5, 99)])

    def test_too_few_points(self):
        with pytest.raises(ShareError):
            recover_affine_map([(1, 10)])

    def test_duplicate_values_rejected(self):
        with pytest.raises(ShareError):
            recover_affine_map([(1, 10), (1, 12)])


class TestStrawmanBreak:
    def test_full_recovery(self):
        """The paper's claim: break one (well, two) → break everything."""
        scheme = MonotoneStrawmanScheme(SECRETS, DOMAIN)
        outcome = attack_strawman_scheme(scheme, VALUES, 0, [0, 50_000])
        assert outcome.success_rate == 1.0
        assert outcome.recovered == len(VALUES)

    def test_any_provider_works(self):
        scheme = MonotoneStrawmanScheme(SECRETS, DOMAIN)
        for provider in range(5):
            outcome = attack_strawman_scheme(
                scheme, VALUES[:50], provider, [VALUES[0], VALUES[10]]
            )
            assert outcome.success_rate == 1.0

    def test_break_strawman_inverts_exactly(self):
        scheme = MonotoneStrawmanScheme(SECRETS, DOMAIN)
        observed = [scheme.share(v, 2) for v in (5, 500, 49_999)]
        known = [(0, scheme.share(0, 2)), (100, scheme.share(100, 2))]
        assert break_strawman(observed, known) == [5, 500, 49_999]


class TestSlotSchemeResists:
    def test_attack_fails(self):
        scheme = OrderPreservingScheme(SECRETS, DOMAIN, threshold=4, label="r")
        outcome = attack_slot_scheme(scheme, VALUES, 0, [0, 50_000])
        # keyed slots destroy the affine structure: essentially nothing
        # beyond the known points can be recovered
        assert outcome.success_rate < 0.01

    def test_attack_fails_with_close_known_points(self):
        scheme = OrderPreservingScheme(SECRETS, DOMAIN, threshold=4, label="r")
        outcome = attack_slot_scheme(scheme, VALUES, 1, [100, 101])
        assert outcome.success_rate < 0.01

    def test_outcome_scorecard(self):
        scheme = MonotoneStrawmanScheme(SECRETS, DOMAIN)
        outcome = attack_strawman_scheme(scheme, [0, 1, 2], 0, [0, 2])
        assert outcome.total == 3
        assert outcome.correct == 3
