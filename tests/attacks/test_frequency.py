"""Tests for frequency analysis against deterministic shares."""

import pytest

from repro.attacks.frequency import attack_column, frequency_match
from repro.core.encoding import StringCodec
from repro.core.order_preserving import OrderPreservingScheme
from repro.core.secrets import generate_client_secrets
from repro.errors import ShareError
from repro.sim.rng import DeterministicRNG

SECRETS = generate_client_secrets(4, seed=83)
CODEC = StringCodec(width=8)
DOMAIN = CODEC.domain()
SCHEME = OrderPreservingScheme(SECRETS, DOMAIN, threshold=3, label="freq")

DEPARTMENTS = ["ENG"] * 40 + ["SALES"] * 25 + ["HR"] * 10 + ["LEGAL"] * 5


class TestMechanics:
    def test_empty_inputs_rejected(self):
        with pytest.raises(ShareError):
            frequency_match([], {"A": 1})
        with pytest.raises(ShareError):
            frequency_match([1], {})

    def test_rank_alignment(self):
        # shares in value order; assumed values sorted → positional match
        mapping = frequency_match([100, 200, 300], {"A": 1, "B": 1, "C": 1})
        assert mapping == {100: "A", 200: "B", 300: "C"}

    def test_excess_shares_reuse_top(self):
        mapping = frequency_match([1, 2, 3], {"A": 1, "B": 1})
        assert mapping[3] == "B"


class TestDeterministicSharesLeakFrequency:
    def test_full_recovery_with_exact_auxiliary(self):
        """Order + exact distribution knowledge ⇒ total recovery."""
        rng = DeterministicRNG(7, "shuffle")
        values = rng.shuffled(DEPARTMENTS)
        outcome = attack_column(SCHEME, values, CODEC.encode, 0)
        assert outcome.row_recovery_rate == 1.0
        assert outcome.distinct_values == 4

    def test_recovery_survives_skewed_distributions(self):
        values = ["A"] * 99 + ["B"]
        outcome = attack_column(SCHEME, values, CODEC.encode, 1)
        assert outcome.row_recovery_rate == 1.0

    def test_single_value_column(self):
        outcome = attack_column(SCHEME, ["ENG"] * 10, CODEC.encode, 0)
        assert outcome.row_recovery_rate == 1.0


class TestRandomSharesResist:
    def test_random_shares_break_the_rank_alignment(self):
        """Randomized sharing hides both equality and order: the same
        attack mapping is garbage."""
        from repro.core.shamir import ShamirScheme

        scheme = ShamirScheme(SECRETS, threshold=3)
        rng = DeterministicRNG(11, "rand")
        values = DeterministicRNG(12, "v").shuffled(DEPARTMENTS)
        shares = [
            scheme.split(CODEC.encode(value), rng)[0] for value in values
        ]
        from collections import Counter

        mapping = frequency_match(shares, dict(Counter(values)))
        correct = sum(
            1 for value, share in zip(values, shares)
            if mapping[share] == value
        )
        # every share is distinct and uniformly ordered → matching one of
        # four labels by rank is near-chance, far below deterministic's 100%
        assert correct / len(values) < 0.8
