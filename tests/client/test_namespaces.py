"""Multi-tenancy tests: namespaced clients sharing one provider cluster."""

import pytest

from repro import DataSource, ProviderCluster, Select
from repro.errors import ReconstructionError, SchemaError
from repro.sqlengine.expression import Between
from repro.trust.auditing import AuditRegistry
from repro.workloads.employees import employees_table


@pytest.fixture
def tenants():
    cluster = ProviderCluster(4, 2)
    acme = DataSource(cluster, seed=101, namespace="acme")
    globex = DataSource(cluster, seed=202, namespace="globex")
    acme.outsource_table(employees_table(20, seed=101))
    globex.outsource_table(employees_table(30, seed=202))
    return cluster, acme, globex


class TestIsolation:
    def test_same_table_name_coexists(self, tenants):
        cluster, acme, globex = tenants
        assert acme.sql("SELECT COUNT(*) FROM Employees") == 20
        assert globex.sql("SELECT COUNT(*) FROM Employees") == 30

    def test_provider_stores_both_physical_tables(self, tenants):
        cluster, _, _ = tenants
        names = cluster.providers[0].store.table_names()
        assert names == ["acme::Employees", "globex::Employees"]

    def test_writes_do_not_cross(self, tenants):
        _, acme, globex = tenants
        acme.sql("DELETE FROM Employees WHERE salary >= 0")
        assert acme.sql("SELECT COUNT(*) FROM Employees") == 0
        assert globex.sql("SELECT COUNT(*) FROM Employees") == 30

    def test_queries_work_per_tenant(self, tenants):
        _, acme, globex = tenants
        a = acme.sql("SELECT SUM(salary) FROM Employees")
        g = globex.sql("SELECT SUM(salary) FROM Employees")
        assert a != g  # different workloads

    def test_foreign_shares_unreadable(self, tenants):
        """A tenant cannot decode another tenant's shares: even if it
        addressed the other physical table, its secret evaluation points
        and hash keys differ, so reconstruction fails or yields garbage."""
        cluster, acme, globex = tenants
        globex_table = cluster.providers[0].store.table("globex::Employees")
        rid = globex_table.all_row_ids()[0]
        foreign_shares = {
            i: cluster.providers[i].store.table("globex::Employees").get(rid)
            for i in range(2)
        }
        acme_sharing = acme.sharing("Employees")
        truth = None
        for row in employees_table(30, seed=202):
            truth = row  # any real row; we only check acme can't get one
            break
        with pytest.raises(ReconstructionError):
            # acme's OP scheme rejects the foreign shares (out-of-domain /
            # non-integer interpolation under the wrong points)
            acme_sharing.reconstruct_row(foreign_shares)


class TestValidationAndCompat:
    def test_invalid_namespace_rejected(self, cluster):
        with pytest.raises(SchemaError):
            DataSource(cluster, namespace="bad namespace!")

    def test_hyphen_underscore_allowed(self, cluster):
        DataSource(cluster, namespace="tenant-a_1")

    def test_empty_namespace_is_plain(self, cluster):
        source = DataSource(cluster, seed=1)
        assert source.physical_name("T") == "T"

    def test_audit_in_namespace(self):
        cluster = ProviderCluster(3, 2)
        registry = AuditRegistry(3)
        source = DataSource(cluster, seed=7, audit=registry, namespace="acme")
        source.outsource_table(employees_table(10, seed=7))
        assert registry.namespace == "acme"
        assert all(registry.audit_roots(cluster, "Employees").values())
        rows = source.select_verified(
            Select("Employees", where=Between("salary", 0, 10**6))
        )
        assert len(rows) == 10

    def test_persistence_of_namespace(self, tmp_path):
        from repro.persistence import load_deployment, save_deployment

        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=9, namespace="acme")
        source.outsource_table(employees_table(5, seed=9))
        save_deployment(source, str(tmp_path))
        restored = load_deployment(str(tmp_path))
        assert restored.namespace == "acme"
        assert restored.sql("SELECT COUNT(*) FROM Employees") == 5

    def test_extensions_respect_namespace(self, tenants):
        _, acme, _ = tenants
        assert acme.sql(
            "SELECT department, COUNT(*) FROM Employees GROUP BY department"
        )
        assert acme.resync_table("Employees") == 20
        acme.rotate_secrets(new_seed=303)
        assert acme.sql("SELECT COUNT(*) FROM Employees") == 20
