"""End-to-end tests for verified-read mode (blame, quarantine, re-issue)."""

import pytest

from repro import DataSource, ProviderCluster, telemetry
from repro.errors import SchemaError
from repro.providers.failures import Fault, FailureMode
from repro.sqlengine.executor import rows_equal_unordered
from repro.workloads.employees import employees_table, managers_table

QUERIES = [
    "SELECT * FROM Employees WHERE eid = 7",
    "SELECT name, salary FROM Employees WHERE salary BETWEEN 20000 AND 60000",
    "SELECT SUM(salary) FROM Employees WHERE department = 'Sales'",
    "SELECT AVG(salary) FROM Employees",
    "SELECT COUNT(*) FROM Employees WHERE salary >= 30000",
    "SELECT department, COUNT(*) FROM Employees GROUP BY department",
]


def build_pair(rows=30, seed=11, **kwargs):
    """An oracle (fault-free) source and a verified source, same data."""
    oracle = DataSource(ProviderCluster(5, 3), seed=seed)
    verified = DataSource(
        ProviderCluster(5, 3), seed=seed, verified_reads=True, **kwargs
    )
    employees = employees_table(rows, seed=seed)
    for source in (oracle, verified):
        source.outsource_table(employees)
        source.outsource_table(managers_table(employees, 0.2, seed=seed))
    return oracle, verified


def same_result(expected, actual):
    if isinstance(expected, list):
        return rows_equal_unordered(expected, actual)
    return expected == actual


class TestConfig:
    def test_zero_redundancy_rejected(self):
        with pytest.raises(SchemaError):
            DataSource(ProviderCluster(5, 3), seed=1, read_redundancy=0)


class TestVerifiedAgainstTamper:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_exact_results_with_one_tamperer(self, sql):
        oracle, verified = build_pair()
        verified.cluster.inject_fault(2, Fault(FailureMode.TAMPER, seed=5))
        assert same_result(oracle.sql(sql), verified.sql(sql))

    def test_blamed_provider_quarantined_and_reissued(self):
        oracle, verified = build_pair()
        verified.cluster.inject_fault(2, Fault(FailureMode.TAMPER, seed=5))
        with telemetry.session() as hub:
            sql = "SELECT * FROM Employees WHERE salary >= 10000"
            assert rows_equal_unordered(oracle.sql(sql), verified.sql(sql))
            assert hub.registry.counter_total("verified.reissued") >= 1
        assert verified.cluster.health.is_quarantined(2)
        snapshot = verified.cluster.health.snapshot()["DAS3"]
        assert snapshot["quarantine_reason"] == "blamed"

    def test_later_queries_avoid_the_quarantined_tamperer(self):
        oracle, verified = build_pair()
        verified.cluster.inject_fault(2, Fault(FailureMode.TAMPER, seed=5))
        verified.sql("SELECT * FROM Employees WHERE salary >= 10000")
        with telemetry.session() as hub:
            verified.sql("SELECT * FROM Employees WHERE salary >= 10000")
            # quarantined tamperer sorts out of the quorum: nothing to blame
            assert hub.registry.counter_total("verified.reissued") == 0

    def test_verified_join_with_tamperer(self):
        oracle, verified = build_pair()
        verified.cluster.inject_fault(1, Fault(FailureMode.TAMPER, seed=6))
        sql = (
            "SELECT * FROM Employees JOIN Managers "
            "ON Employees.eid = Managers.eid"
        )
        assert rows_equal_unordered(oracle.sql(sql), verified.sql(sql))
        assert verified.cluster.health.is_quarantined(1)

    def test_omission_detected_and_masked(self):
        oracle, verified = build_pair()
        verified.cluster.inject_fault(
            3, Fault(FailureMode.OMIT, rate=0.5, seed=8)
        )
        sql = "SELECT name FROM Employees WHERE salary >= 10000"
        with telemetry.session() as hub:
            assert rows_equal_unordered(oracle.sql(sql), verified.sql(sql))
            assert (
                hub.registry.counter_value(
                    "faults.detected", kind="omission", provider="3"
                )
                >= 1
            )

    def test_crash_plus_tamper_together(self):
        # n - k failures total, split across both failure classes: the
        # acceptance scenario the robust vote alone cannot decode
        oracle, verified = build_pair()
        verified.cluster.inject_fault(4, Fault(FailureMode.CRASH))
        verified.cluster.inject_fault(2, Fault(FailureMode.TAMPER, seed=5))
        for sql in QUERIES:
            assert same_result(oracle.sql(sql), verified.sql(sql)), sql

    def test_explicit_redundancy_respected(self):
        oracle, verified = build_pair(read_redundancy=2)
        verified.cluster.inject_fault(0, Fault(FailureMode.TAMPER, seed=9))
        sql = "SELECT * FROM Employees WHERE salary >= 10000"
        assert rows_equal_unordered(oracle.sql(sql), verified.sql(sql))


class TestVerifiedCleanPath:
    def test_clean_cluster_matches_oracle(self):
        oracle, verified = build_pair()
        for sql in QUERIES:
            assert same_result(oracle.sql(sql), verified.sql(sql)), sql

    def test_clean_cluster_never_reissues(self):
        _, verified = build_pair()
        with telemetry.session() as hub:
            for sql in QUERIES:
                verified.sql(sql)
            assert hub.registry.counter_total("verified.reissued") == 0
