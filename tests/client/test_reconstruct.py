"""Unit tests for result reconstruction and alignment."""

import pytest

from repro.client.reconstruct import (
    align_by_row_id,
    consistent_scalar,
    reconstruct_rows,
    reconstruct_single_rows,
    rows_from_responses,
)
from repro.core.scheme import TableSharing
from repro.core.secrets import generate_client_secrets
from repro.errors import IntegrityError, ReconstructionError
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import Comparison, ComparisonOp
from repro.sqlengine.schema import TableSchema, integer_column


@pytest.fixture
def sharing():
    schema = TableSchema(
        "T", (integer_column("k", 0, 1000), integer_column("v", 0, 1000))
    )
    return TableSharing(
        schema, generate_client_secrets(4, seed=8), 3, DeterministicRNG(8)
    )


def make_responses(sharing, rows):
    """Simulate honest provider responses for given plaintext rows."""
    responses = {i: {"rows": []} for i in range(4)}
    for rid, row in rows:
        share_rows = sharing.share_row(row)
        for i in range(4):
            responses[i]["rows"].append([rid, share_rows[i]])
    return responses


class TestAlignment:
    def test_rows_from_responses(self, sharing):
        responses = make_responses(sharing, [(0, {"k": 1, "v": 2})])
        provider_rows = rows_from_responses(responses)
        assert set(provider_rows) == {0, 1, 2, 3}

    def test_align_by_row_id_sorted(self, sharing):
        responses = make_responses(
            sharing, [(5, {"k": 1, "v": 1}), (2, {"k": 2, "v": 2})]
        )
        aligned = align_by_row_id(rows_from_responses(responses))
        assert list(aligned) == [2, 5]
        assert set(aligned[2]) == {0, 1, 2, 3}


class TestReconstruct:
    def test_roundtrip(self, sharing):
        rows = [(0, {"k": 10, "v": 20}), (1, {"k": 30, "v": 40})]
        responses = make_responses(sharing, rows)
        out = reconstruct_rows(sharing, responses)
        assert out == [{"k": 10, "v": 20}, {"k": 30, "v": 40}]

    def test_projection(self, sharing):
        responses = make_responses(sharing, [(0, {"k": 10, "v": 20})])
        out = reconstruct_rows(sharing, responses, columns=["v"])
        assert out == [{"v": 20}]

    def test_residual_filters(self, sharing):
        rows = [(0, {"k": 10, "v": 20}), (1, {"k": 30, "v": 40})]
        responses = make_responses(sharing, rows)
        out = reconstruct_rows(
            sharing, responses, residual=Comparison("v", ComparisonOp.GT, 25)
        )
        assert out == [{"k": 30, "v": 40}]

    def test_underquorum_rows_dropped_silently(self, sharing):
        responses = make_responses(sharing, [(0, {"k": 1, "v": 2})])
        # provider 3 omits the row; 3 ≥ k=3 still → kept.  Then drop from
        # provider 2 as well → only 2 copies → dropped.
        responses[3]["rows"] = []
        assert len(reconstruct_rows(sharing, responses)) == 1
        responses[2]["rows"] = []
        assert reconstruct_rows(sharing, responses) == []

    def test_strict_mode_raises_on_omission(self, sharing):
        responses = make_responses(sharing, [(0, {"k": 1, "v": 2})])
        responses[3]["rows"] = []
        with pytest.raises(IntegrityError):
            reconstruct_rows(sharing, responses, strict=True)


class TestSingleRowAggregates:
    def test_agreeing_nominations(self, sharing):
        share_rows = sharing.share_row({"k": 5, "v": 6})
        responses = {
            i: {"row": [7, share_rows[i]], "count": 3} for i in range(4)
        }
        row = reconstruct_single_rows(sharing, responses)
        assert row == {"k": 5, "v": 6}

    def test_disagreeing_nominations_detected(self, sharing):
        share_rows = sharing.share_row({"k": 5, "v": 6})
        responses = {
            i: {"row": [7, share_rows[i]], "count": 3} for i in range(4)
        }
        responses[2]["row"][0] = 8  # different row id
        with pytest.raises(IntegrityError):
            reconstruct_single_rows(sharing, responses)

    def test_empty_everywhere(self, sharing):
        responses = {i: {"row": None, "count": 0} for i in range(4)}
        assert reconstruct_single_rows(sharing, responses) is None

    def test_partial_emptiness_detected(self, sharing):
        share_rows = sharing.share_row({"k": 5, "v": 6})
        responses = {i: {"row": [7, share_rows[i]], "count": 3} for i in range(4)}
        responses[1]["row"] = None
        with pytest.raises(IntegrityError):
            reconstruct_single_rows(sharing, responses)


class TestConsistentScalar:
    def test_agreement(self):
        responses = {0: {"count": 5}, 1: {"count": 5}}
        assert consistent_scalar(responses, "count") == 5

    def test_disagreement(self):
        responses = {0: {"count": 5}, 1: {"count": 6}}
        with pytest.raises(IntegrityError):
            consistent_scalar(responses, "count")

    def test_empty_responses_raise_reconstruction_error(self):
        """An empty quorum surfaces as ReconstructionError, not a bare
        StopIteration escaping from ``next(iter(...))``."""
        with pytest.raises(
            ReconstructionError, match="no provider responses to agree on"
        ):
            consistent_scalar({}, "count")
