"""Tests for error-correcting reconstruction, robust reads, and key rotation."""

import pytest

from repro import DataSource, ProviderCluster, Select
from repro.core.order_preserving import IntegerDomain, OrderPreservingScheme
from repro.core.secrets import generate_client_secrets
from repro.core.shamir import ShamirScheme
from repro.errors import QueryError, QuorumError, ReconstructionError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.executor import rows_equal_unordered
from repro.sqlengine.expression import Between
from repro.workloads.employees import employees_table

SECRETS = generate_client_secrets(7, seed=55)


class TestRobustShamir:
    scheme = ShamirScheme(SECRETS, threshold=3)

    def shares_of(self, secret, seed=1):
        return dict(enumerate(self.scheme.split(secret, DeterministicRNG(seed, "r"))))

    def test_clean_shares_decode(self):
        shares = self.shares_of(12345)
        assert self.scheme.reconstruct_robust(shares) == 12345

    @pytest.mark.parametrize("n_bad", [1, 2])
    def test_minority_corruption_corrected(self, n_bad):
        # n=7, k=3: unique decoding corrects ⌊(7-3)/2⌋ = 2 bad shares
        shares = self.shares_of(98765)
        for index in range(n_bad):
            shares[index] = (shares[index] + 7 + index) % self.scheme.field.modulus
        assert self.scheme.reconstruct_robust(shares) == 98765

    def test_majority_corruption_raises(self):
        shares = self.shares_of(5)
        for index in range(4):  # 4 of 7 corrupted
            shares[index] = (shares[index] + 99 + index) % self.scheme.field.modulus
        with pytest.raises(ReconstructionError):
            self.scheme.reconstruct_robust(shares)

    def test_too_few_shares(self):
        shares = self.shares_of(5)
        with pytest.raises(ReconstructionError):
            self.scheme.reconstruct_robust({0: shares[0], 1: shares[1]})

    def test_exactly_k_shares_clean(self):
        shares = self.shares_of(444)
        subset = {i: shares[i] for i in (1, 3, 5)}
        assert self.scheme.reconstruct_robust(subset) == 444


class TestRobustOrderPreserving:
    scheme = OrderPreservingScheme(
        SECRETS, IntegerDomain(0, 100_000), threshold=3, label="robust"
    )

    def test_clean(self):
        shares = dict(enumerate(self.scheme.split(777)))
        assert self.scheme.reconstruct_robust(shares) == 777

    @pytest.mark.parametrize("n_bad", [1, 2])
    def test_minority_corruption_corrected(self, n_bad):
        shares = dict(enumerate(self.scheme.split(50_000)))
        for index in range(n_bad):
            shares[index] += 1_000 + index
        assert self.scheme.reconstruct_robust(shares) == 50_000

    def test_majority_corruption_raises(self):
        shares = dict(enumerate(self.scheme.split(5)))
        for index in range(5):
            shares[index] += 123 + index
        with pytest.raises(ReconstructionError):
            self.scheme.reconstruct_robust(shares)


class TestSelectRobust:
    @pytest.fixture
    def source(self):
        source = DataSource(ProviderCluster(5, 2), seed=57)
        source.outsource_table(employees_table(50, seed=57))
        return source

    def test_clean_matches_plain_select(self, source):
        query = Select("Employees", where=Between("salary", 20_000, 80_000))
        assert rows_equal_unordered(
            source.select_robust(query), source.select(query)
        )

    def test_tolerates_tampering_provider(self, source):
        truth = source.select(
            Select("Employees", where=Between("salary", 0, 10**6))
        )
        source.cluster.inject_fault(
            0, Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "t"))
        )
        robust = source.select_robust(
            Select("Employees", where=Between("salary", 0, 10**6))
        )
        assert rows_equal_unordered(robust, truth)

    def test_plain_select_poisoned_by_same_fault(self, source):
        """The contrast: the quorum read either errors or needs luck."""
        source.cluster.inject_fault(
            0, Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(2, "t"))
        )
        with pytest.raises(ReconstructionError):
            source.select(Select("Employees", where=Between("salary", 0, 10**6)))

    def test_tolerates_two_tamperers_of_five(self, source):
        truth_count = 50
        for index in (0, 1):
            source.cluster.inject_fault(
                index,
                Fault(FailureMode.TAMPER, rate=1.0,
                      rng=DeterministicRNG(3 + index, "t")),
            )
        rows = source.select_robust(
            Select("Employees", where=Between("salary", 0, 10**6))
        )
        assert len(rows) == truth_count

    def test_projection_order_limit(self, source):
        rows = source.select_robust(
            Select(
                "Employees",
                columns=("name", "salary"),
                order_by="salary",
                descending=True,
                limit=5,
            )
        )
        salaries = [r["salary"] for r in rows]
        assert salaries == sorted(salaries, reverse=True)
        assert len(rows) == 5

    def test_aggregates_rejected(self, source):
        from repro.sqlengine.query import Aggregate, AggregateFunc

        with pytest.raises(QueryError):
            source.select_robust(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )

    def test_quorum_still_required(self, source):
        for index in range(4):
            source.cluster.inject_fault(index, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError):
            source.select_robust(Select("Employees"))


class TestKeyRotation:
    def test_rotation_preserves_data(self):
        source = DataSource(ProviderCluster(4, 2), seed=59)
        source.outsource_table(employees_table(30, seed=59))
        before = source.sql("SELECT * FROM Employees")
        old_points = source.secrets.evaluation_points
        counts = source.rotate_secrets(new_seed=60)
        assert counts == {"Employees": 30}
        assert source.secrets.evaluation_points != old_points
        after = source.sql("SELECT * FROM Employees")
        assert rows_equal_unordered(before, after)

    def test_rotation_changes_stored_shares(self):
        source = DataSource(ProviderCluster(4, 2), seed=59)
        source.outsource_table(employees_table(10, seed=59))
        provider = source.cluster.providers[0]
        before = {
            rid: dict(provider.store.table("Employees").get(rid))
            for rid in provider.store.table("Employees").all_row_ids()
        }
        source.rotate_secrets(new_seed=61)
        after_table = provider.store.table("Employees")
        changed = sum(
            1 for rid in after_table.all_row_ids()
            if after_table.get(rid) != before[rid]
        )
        assert changed == len(before)

    def test_writes_work_after_rotation(self):
        source = DataSource(ProviderCluster(4, 2), seed=59)
        source.outsource_table(employees_table(10, seed=59))
        source.rotate_secrets(new_seed=62)
        source.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (999999, 'NEW', 'KEY', 'ENG', 42)"
        )
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 42") == 1
        assert source.sql(
            "SELECT department, COUNT(*) FROM Employees GROUP BY department"
        )

    def test_rotation_maintains_audit(self):
        from repro.trust.auditing import AuditRegistry

        registry = AuditRegistry(3)
        source = DataSource(ProviderCluster(3, 2), seed=63, audit=registry)
        source.outsource_table(employees_table(15, seed=63))
        source.rotate_secrets(new_seed=64)
        assert all(registry.audit_roots(source.cluster, "Employees").values())
