"""Tests for extension features: GROUP BY, ORDER BY/LIMIT, increment,
resync, and explain."""

import pytest

from repro import (
    DataSource,
    JoinSelect,
    ProviderCluster,
    Select,
    Table,
    TableSchema,
    integer_column,
    parse_sql,
    string_column,
)
from repro.errors import (
    IntegrityError,
    QueryError,
    UnsupportedQueryError,
)
from repro.providers.failures import Fault, FailureMode
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor
from repro.sqlengine.expression import Between, Comparison, ComparisonOp, Or
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.trust.auditing import AuditRegistry
from repro.workloads.employees import employees_table


@pytest.fixture
def system():
    employees = employees_table(120, seed=19)
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    oracle = PlaintextExecutor(catalog)
    source = DataSource(ProviderCluster(5, 3), seed=19)
    source.outsource_table(employees)
    return source, oracle


GROUPED = [
    "SELECT department, SUM(salary) FROM Employees GROUP BY department",
    "SELECT department, AVG(salary) FROM Employees GROUP BY department",
    "SELECT department, COUNT(*) FROM Employees WHERE salary > 40000 GROUP BY department",
    "SELECT department, MIN(salary) FROM Employees GROUP BY department",
    "SELECT department, MAX(salary) FROM Employees WHERE salary BETWEEN 20000 AND 90000 GROUP BY department",
    "SELECT department, MEDIAN(salary) FROM Employees GROUP BY department",
    "SELECT name, COUNT(salary) FROM Employees GROUP BY name",
    # residual → client-side grouping fallback
    "SELECT department, SUM(salary) FROM Employees WHERE salary < 20000 OR salary > 90000 GROUP BY department",
]


class TestGroupBy:
    @pytest.mark.parametrize("sql", GROUPED)
    def test_matches_oracle(self, system, sql):
        source, oracle = system
        query = parse_sql(sql)
        assert source.select(query) == oracle.execute(query)

    def test_grouped_pushdown_is_cheap(self, system):
        """Provider-side grouping ships partials, not rows."""
        source, _ = system
        query = parse_sql(
            "SELECT department, SUM(salary) FROM Employees GROUP BY department"
        )
        source.reset_accounting()
        source.select(query)
        grouped_bytes = source.cluster.network.total_bytes
        source.reset_accounting()
        source.select(Select("Employees"))
        fetch_bytes = source.cluster.network.total_bytes
        assert grouped_bytes < fetch_bytes / 5

    def test_group_count_mismatch_detected(self, system):
        source, _ = system
        from repro.sim.rng import DeterministicRNG

        source.cluster.inject_fault(
            0, Fault(FailureMode.OMIT, rate=0.9, rng=DeterministicRNG(1, "o"))
        )
        query = parse_sql(
            "SELECT department, SUM(salary) FROM Employees GROUP BY department"
        )
        with pytest.raises(IntegrityError):
            source.select(query)

    def test_group_by_requires_aggregate(self):
        with pytest.raises(QueryError):
            Select("Employees", group_by="department")

    def test_group_by_string_aggregate_rejected(self, system):
        source, _ = system
        with pytest.raises(QueryError):
            source.select(
                Select(
                    "Employees",
                    aggregate=Aggregate(AggregateFunc.SUM, "name"),
                    group_by="department",
                )
            )


ORDERED = [
    "SELECT name, salary FROM Employees ORDER BY salary DESC LIMIT 5",
    "SELECT name, salary FROM Employees ORDER BY salary ASC LIMIT 10",
    "SELECT * FROM Employees WHERE salary > 50000 ORDER BY salary LIMIT 7",
    "SELECT * FROM Employees ORDER BY name LIMIT 3",
    "SELECT * FROM Employees WHERE department = 'ENG' ORDER BY salary DESC",
    # residual predicate → limit applied client-side
    "SELECT * FROM Employees WHERE salary < 20000 OR salary > 90000 ORDER BY salary LIMIT 4",
]


class TestOrderLimit:
    @pytest.mark.parametrize("sql", ORDERED)
    def test_matches_oracle_exactly_ordered(self, system, sql):
        source, oracle = system
        query = parse_sql(sql)
        assert source.select(query) == oracle.execute(query)

    def test_bare_limit_counts(self, system):
        source, oracle = system
        query = parse_sql("SELECT * FROM Employees LIMIT 7")
        assert len(source.select(query)) == 7

    def test_limit_pushdown_reduces_bytes(self, system):
        source, _ = system
        source.reset_accounting()
        source.sql("SELECT * FROM Employees ORDER BY salary DESC LIMIT 3")
        limited = source.cluster.network.total_bytes
        source.reset_accounting()
        source.sql("SELECT * FROM Employees ORDER BY salary DESC")
        full = source.cluster.network.total_bytes
        assert limited < full / 5

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            Select("Employees", limit=-1)

    DUPLICATE_HEAVY = [
        # names/departments repeat heavily: ties must break identically to
        # the oracle's stable sort in BOTH directions (regression for the
        # provider-side reversed-list bug)
        "SELECT eid, name FROM Employees ORDER BY name DESC LIMIT 7",
        "SELECT eid, name FROM Employees ORDER BY name ASC LIMIT 7",
        "SELECT eid, department FROM Employees ORDER BY department DESC LIMIT 10",
        "SELECT eid FROM Employees WHERE salary > 40000 "
        "ORDER BY department DESC LIMIT 5",
    ]

    @pytest.mark.parametrize("sql", DUPLICATE_HEAVY)
    def test_tie_breaking_matches_oracle(self, system, sql):
        source, oracle = system
        query = parse_sql(sql)
        assert source.select(query) == oracle.execute(query)


class TestIncrement:
    @pytest.fixture
    def accounts(self):
        schema = TableSchema(
            "Accounts",
            (
                integer_column("aid", 1, 10_000),
                integer_column("balance", -(10**9), 10**9, searchable=False),
                integer_column("branch", 1, 100),
            ),
            primary_key="aid",
        )
        rows = [
            {"aid": i, "branch": i % 5 + 1, "balance": 1000 * i}
            for i in range(1, 41)
        ]
        source = DataSource(ProviderCluster(5, 3), seed=23)
        source.outsource_table(Table(schema, rows))
        return source

    def test_increment_applies(self, accounts):
        n = accounts.increment(
            "Accounts", "balance", 500, Comparison("branch", ComparisonOp.EQ, 3)
        )
        assert n == 8
        rows = accounts.sql("SELECT * FROM Accounts WHERE branch = 3")
        assert all(r["balance"] % 1000 == 500 for r in rows)

    def test_negative_delta(self, accounts):
        accounts.increment("Accounts", "balance", -250, Between("branch", 1, 5))
        row = accounts.sql("SELECT * FROM Accounts WHERE aid = 3")[0]
        assert row["balance"] == 2750

    def test_untouched_rows_unchanged(self, accounts):
        accounts.increment(
            "Accounts", "balance", 500, Comparison("branch", ComparisonOp.EQ, 3)
        )
        rows = accounts.sql("SELECT * FROM Accounts WHERE branch = 1")
        assert all(r["balance"] % 1000 == 0 for r in rows)

    def test_cheaper_than_eager_update(self, accounts):
        accounts.reset_accounting()
        accounts.increment(
            "Accounts", "balance", 1, Comparison("branch", ComparisonOp.EQ, 2)
        )
        increment_bytes = accounts.cluster.network.total_bytes
        accounts.reset_accounting()
        accounts.sql("UPDATE Accounts SET branch = 2 WHERE branch = 2")
        update_bytes = accounts.cluster.network.total_bytes
        assert increment_bytes < update_bytes

    def test_searchable_column_rejected(self, accounts):
        with pytest.raises(UnsupportedQueryError):
            accounts.increment("Accounts", "branch", 1, Between("branch", 1, 5))

    def test_residual_predicate_rejected(self, accounts):
        predicate = Or(
            (
                Comparison("branch", ComparisonOp.EQ, 1),
                Comparison("branch", ComparisonOp.EQ, 2),
            )
        )
        with pytest.raises(UnsupportedQueryError):
            accounts.increment("Accounts", "balance", 1, predicate)

    def test_empty_predicate_noop(self, accounts):
        assert accounts.increment(
            "Accounts", "balance", 1, Comparison("branch", ComparisonOp.EQ, 999)
        ) == 0

    def test_audited_source_rejected(self):
        registry = AuditRegistry(3)
        source = DataSource(ProviderCluster(3, 2), seed=1, audit=registry)
        source.outsource_table(employees_table(5, seed=1))
        with pytest.raises(QueryError):
            source.increment("Employees", "salary", 1, Between("salary", 0, 1))


class TestResync:
    def test_heals_stale_provider(self):
        source = DataSource(ProviderCluster(4, 2), seed=29)
        source.outsource_table(employees_table(30, seed=29))
        source.cluster.inject_fault(3, Fault(FailureMode.CRASH))
        source.sql("UPDATE Employees SET salary = 777 WHERE salary >= 0")
        source.cluster.clear_faults()
        assert source.resync_table("Employees") == 30
        # query through the previously stale provider only
        source.cluster.inject_fault(0, Fault(FailureMode.CRASH))
        source.cluster.inject_fault(1, Fault(FailureMode.CRASH))
        assert source.sql(
            "SELECT COUNT(*) FROM Employees WHERE salary = 777"
        ) == 30

    def test_resync_preserves_content(self, system):
        source, oracle = system
        before = source.sql("SELECT * FROM Employees")
        source.resync_table("Employees")
        after = source.sql("SELECT * FROM Employees")
        from repro.sqlengine.executor import rows_equal_unordered

        assert rows_equal_unordered(before, after)

    def test_resync_maintains_audit(self):
        registry = AuditRegistry(3)
        source = DataSource(ProviderCluster(3, 2), seed=31, audit=registry)
        source.outsource_table(employees_table(20, seed=31))
        source.resync_table("Employees")
        assert all(registry.audit_roots(source.cluster, "Employees").values())
        source.select_verified(Select("Employees", where=Between("salary", 0, 10**6)))


class TestExplain:
    def test_pushdown_plan(self, system):
        source, _ = system
        plan = source.explain(
            "SELECT * FROM Employees WHERE salary BETWEEN 10000 AND 40000"
        )
        assert plan["pushdown"] == [
            {"column": "salary", "low": 10000, "high": 40000}
        ]
        assert plan["residual"] is None
        assert "share-index filter" in plan["strategy"]

    def test_residual_plan(self, system):
        source, _ = system
        plan = source.explain(
            "SELECT * FROM Employees WHERE salary < 10 OR salary > 90"
        )
        assert plan["pushdown"] == []
        assert plan["residual"] is not None
        assert "full scan" in plan["strategy"]

    def test_aggregate_plans(self, system):
        source, _ = system
        pushed = source.explain("SELECT SUM(salary) FROM Employees")
        assert pushed["strategy"] == "provider-side partial aggregation"
        grouped = source.explain(
            "SELECT department, SUM(salary) FROM Employees GROUP BY department"
        )
        assert grouped["strategy"] == "provider-grouped partial aggregation"

    def test_topk_plan(self, system):
        source, _ = system
        plan = source.explain(
            "SELECT * FROM Employees ORDER BY salary DESC LIMIT 5"
        )
        assert "share-order sort" in plan["strategy"]
        assert "limit 5 at providers" in plan["strategy"]

    def test_join_plans(self, system):
        source, _ = system
        source.outsource_table(
            Table(
                TableSchema(
                    "Other",
                    (integer_column("x", 0, 9), string_column("s", 4)),
                )
            )
        )
        plan = source.explain(
            JoinSelect("Employees", "Other", "name", "s")
        )
        assert not plan["domain_compatible"]
        assert "UNSUPPORTED" in plan["strategy"]

    def test_write_plans(self, system):
        source, _ = system
        plan = source.explain("UPDATE Employees SET salary = 1 WHERE salary = 2")
        assert "re-share" in plan["strategy"]
        plan = source.explain("DELETE FROM Employees WHERE salary = 2")
        assert "delete" in plan["strategy"]

    def test_unknown_query_rejected(self, system):
        source, _ = system
        with pytest.raises(QueryError):
            source.explain(3)

    def test_selectivity_estimate(self, system):
        source, _ = system
        full = source.explain("SELECT * FROM Employees")
        assert full["estimated_selectivity"] == 1.0
        ranged = source.explain(
            "SELECT * FROM Employees WHERE salary BETWEEN 0 AND 99999"
        )
        assert 0.05 < ranged["estimated_selectivity"] < 0.15
        empty = source.explain("SELECT * FROM Employees WHERE salary = -5")
        assert empty["estimated_selectivity"] == 0.0
        point = source.explain("SELECT * FROM Employees WHERE salary = 5")
        assert point["estimated_selectivity"] < 1e-5
