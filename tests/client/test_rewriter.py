"""Unit tests for query rewriting into share-space conditions."""

import pytest
from decimal import Decimal

from repro.client.rewriter import rewrite_predicate, split_join_predicate
from repro.core.scheme import TableSharing
from repro.core.secrets import generate_client_secrets
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    IsNull,
    Or,
    StartsWith,
    TruePredicate,
)
from repro.sqlengine.schema import (
    TableSchema,
    decimal_column,
    integer_column,
    string_column,
)


@pytest.fixture
def sharing():
    schema = TableSchema(
        "T",
        (
            integer_column("a", 0, 1000),
            string_column("s", 5),
            decimal_column("p", 0, 100, scale=2),
            integer_column("hidden", 0, 10, searchable=False),
        ),
    )
    return TableSharing(
        schema, generate_client_secrets(4, seed=6), 3, DeterministicRNG(6)
    )


def interval_for(sharing, pred):
    rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
    assert len(rewritten.intervals) == 1
    return rewritten.intervals[0]


class TestIntervalLowering:
    def test_equality(self, sharing):
        interval = interval_for(sharing, Comparison("a", ComparisonOp.EQ, 42))
        assert (interval.low, interval.high) == (42, 42)

    def test_between(self, sharing):
        interval = interval_for(sharing, Between("a", 10, 20))
        assert (interval.low, interval.high) == (10, 20)

    def test_lt_le(self, sharing):
        assert interval_for(sharing, Comparison("a", ComparisonOp.LT, 10)).high == 9
        assert interval_for(sharing, Comparison("a", ComparisonOp.LE, 10)).high == 10

    def test_gt_ge(self, sharing):
        assert interval_for(sharing, Comparison("a", ComparisonOp.GT, 10)).low == 11
        assert interval_for(sharing, Comparison("a", ComparisonOp.GE, 10)).low == 10

    def test_prefix(self, sharing):
        interval = interval_for(sharing, StartsWith("s", "AB"))
        codec = sharing.codec("s")
        assert interval.low == codec.encode("AB")
        assert interval.high == codec.encode("AB") + 27**3 - 1

    def test_multiple_conditions_intersected(self, sharing):
        pred = And(
            (
                Comparison("a", ComparisonOp.GE, 10),
                Comparison("a", ComparisonOp.LE, 20),
                Between("a", 15, 30),
            )
        )
        interval = interval_for(sharing, pred)
        assert (interval.low, interval.high) == (15, 20)


class TestOutOfDomainLiterals:
    def test_equality_out_of_domain_provably_empty(self, sharing):
        rewritten = rewrite_predicate(
            Comparison("a", ComparisonOp.EQ, 5000).bind(sharing.schema), sharing
        )
        assert rewritten.provably_empty

    def test_range_clamps(self, sharing):
        interval = interval_for(sharing, Between("a", -50, 99999))
        assert (interval.low, interval.high) == (0, 1000)

    def test_lt_beyond_domain_full_scan(self, sharing):
        interval = interval_for(sharing, Comparison("a", ComparisonOp.LT, 99999))
        assert (interval.low, interval.high) == (0, 1000)

    def test_gt_beyond_domain_empty(self, sharing):
        rewritten = rewrite_predicate(
            Comparison("a", ComparisonOp.GT, 99999).bind(sharing.schema), sharing
        )
        assert rewritten.provably_empty

    def test_lt_below_domain_empty(self, sharing):
        rewritten = rewrite_predicate(
            Comparison("a", ComparisonOp.LT, -5).bind(sharing.schema), sharing
        )
        assert rewritten.provably_empty

    def test_unrepresentable_decimal_goes_residual(self, sharing):
        pred = Comparison("p", ComparisonOp.LE, Decimal("5.005"))
        rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
        # no exact interval is possible; must be evaluated client-side
        assert not rewritten.intervals
        assert rewritten.has_residual

    def test_unrepresentable_decimal_equality_empty(self, sharing):
        pred = Comparison("p", ComparisonOp.EQ, Decimal("5.005"))
        rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
        assert rewritten.provably_empty


class TestResidual:
    def test_or_goes_residual(self, sharing):
        pred = Or(
            (
                Comparison("a", ComparisonOp.EQ, 1),
                Comparison("a", ComparisonOp.EQ, 2),
            )
        )
        rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
        assert not rewritten.intervals and rewritten.has_residual

    def test_hidden_column_goes_residual(self, sharing):
        pred = Comparison("hidden", ComparisonOp.EQ, 5)
        rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
        assert not rewritten.intervals and rewritten.has_residual

    def test_mixed_predicate_splits(self, sharing):
        pred = And(
            (
                Between("a", 1, 10),
                IsNull("hidden"),
            )
        )
        rewritten = rewrite_predicate(pred.bind(sharing.schema), sharing)
        assert len(rewritten.intervals) == 1
        assert rewritten.has_residual

    def test_true_predicate_no_conditions(self, sharing):
        rewritten = rewrite_predicate(TruePredicate(), sharing)
        assert not rewritten.intervals and not rewritten.has_residual
        assert not rewritten.provably_empty


class TestShareConditions:
    def test_conditions_use_op_shares(self, sharing):
        rewritten = rewrite_predicate(
            Between("a", 10, 20).bind(sharing.schema), sharing
        )
        conditions = rewritten.conditions_for(sharing, 0)
        assert conditions == [
            {
                "column": "a",
                "op": "range",
                "low": sharing.query_share("a", 10, 0),
                "high": sharing.query_share("a", 20, 0),
            }
        ]

    def test_conditions_differ_per_provider(self, sharing):
        rewritten = rewrite_predicate(
            Comparison("a", ComparisonOp.EQ, 5).bind(sharing.schema), sharing
        )
        c0 = rewritten.conditions_for(sharing, 0)
        c1 = rewritten.conditions_for(sharing, 1)
        assert c0 != c1  # per-provider rewriting (Sec. V-A)


class TestJoinPredicateSplit:
    def test_partition(self):
        pred = And(
            (
                Comparison("L.a", ComparisonOp.EQ, 1),
                Comparison("R.b", ComparisonOp.EQ, 2),
                Comparison("c", ComparisonOp.EQ, 3),  # unqualified → residual
            )
        )
        left, right, residual = split_join_predicate(pred, "L", "R")
        assert left == Comparison("a", ComparisonOp.EQ, 1)
        assert right == Comparison("b", ComparisonOp.EQ, 2)
        assert residual == Comparison("c", ComparisonOp.EQ, 3)

    def test_cross_table_or_residual(self):
        pred = Or(
            (
                Comparison("L.a", ComparisonOp.EQ, 1),
                Comparison("R.b", ComparisonOp.EQ, 2),
            )
        )
        left, right, residual = split_join_predicate(pred, "L", "R")
        assert isinstance(left, TruePredicate)
        assert isinstance(right, TruePredicate)
        assert residual == pred

    def test_true_predicate(self):
        left, right, residual = split_join_predicate(TruePredicate(), "L", "R")
        assert all(
            isinstance(p, TruePredicate) for p in (left, right, residual)
        )

    def test_strip_nested(self):
        pred = And(
            (
                Between("L.a", 1, 5),
                StartsWith("L.s", "X"),
            )
        )
        left, _, _ = split_join_predicate(pred, "L", "R")
        assert left == And((Between("a", 1, 5), StartsWith("s", "X")))
