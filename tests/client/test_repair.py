"""Tests for provider repair (share-column rebuild from k live peers)."""

import pytest

from repro import DataSource, ProviderCluster
from repro.client.repair import repair_provider, verify_repair
from repro.errors import ProviderUnavailableError, QuorumError
from repro.providers.failures import Fault, FailureMode
from repro.sqlengine.executor import rows_equal_unordered
from repro.workloads.employees import employees_table, managers_table


def build_source(rows=40, seed=13):
    source = DataSource(ProviderCluster(5, 3), seed=seed)
    employees = employees_table(rows, seed=seed)
    source.outsource_table(employees)
    source.outsource_table(managers_table(employees, 0.2, seed=seed))
    return source


def stored_tables(source, provider_index):
    """physical table name → {row_id: share_row} for one provider."""
    provider = source.cluster.providers[provider_index]
    out = {}
    for table_name in source.table_names():
        physical = source.physical_name(table_name)
        rows = provider.handle(
            "scan", {"table": table_name, "projection": None}
        )["rows"]
        out[physical] = {row_id: dict(values) for row_id, values in rows}
    return out


class TestRepairRebuild:
    def test_repaired_shares_identical_to_originals(self):
        """Share extension evaluates the *same* polynomial, so a repaired
        provider ends up byte-identical to its pre-loss state — no other
        provider's shares change and recorded audit hashes stay valid."""
        source = build_source()
        originals = stored_tables(source, 2)
        # lose the provider's storage outright
        provider = source.cluster.providers[2]
        for table_name in source.table_names():
            provider.store.drop_table(source.physical_name(table_name))
        counts = repair_provider(source, 2)
        assert counts == {"Employees": 40, "Managers": 8}
        assert stored_tables(source, 2) == originals

    def test_other_providers_untouched(self):
        source = build_source()
        before = {i: stored_tables(source, i) for i in (0, 1, 3, 4)}
        repair_provider(source, 2)
        assert {i: stored_tables(source, i) for i in (0, 1, 3, 4)} == before

    def test_repair_after_missed_writes(self):
        """A provider that crashed through INSERTs is stale; repair
        re-syncs it to the quorum state."""
        source = build_source()
        source.cluster.inject_fault(3, Fault(FailureMode.CRASH))
        source.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (9001, 'NEW', 'HIRE', 'Sales', 50000)"
        )
        source.cluster.clear_faults()
        repair_provider(source, 3, tables=["Employees"])
        report = verify_repair(source, 3)
        assert report["Employees"]["consistent"] == 1
        assert report["Employees"]["rows"] == report["Employees"]["quorum_rows"]
        # the repaired provider serves reads again: rotate it into a quorum
        rows = source.sql("SELECT name FROM Employees WHERE eid = 9001")
        assert rows == [{"name": "NEW"}]

    def test_repair_tolerates_tampering_source(self):
        """Rebuilt shares come from the majority polynomial, not any single
        source provider, so a tampering member of the source quorum does
        not poison the repair."""
        source = build_source()
        originals = stored_tables(source, 2)
        provider = source.cluster.providers[2]
        for table_name in source.table_names():
            provider.store.drop_table(source.physical_name(table_name))
        source.cluster.inject_fault(0, Fault(FailureMode.TAMPER, seed=4))
        repair_provider(source, 2)
        source.cluster.clear_faults()
        assert stored_tables(source, 2) == originals

    def test_queries_correct_after_repair(self):
        source = build_source()
        oracle = source.sql("SELECT * FROM Employees WHERE salary >= 10000")
        provider = source.cluster.providers[1]
        for table_name in source.table_names():
            provider.store.drop_table(source.physical_name(table_name))
        repair_provider(source, 1)
        assert rows_equal_unordered(
            source.sql("SELECT * FROM Employees WHERE salary >= 10000"), oracle
        )


class TestRepairGuards:
    def test_bad_index_rejected(self):
        source = build_source(rows=10)
        with pytest.raises(QuorumError):
            repair_provider(source, 7)

    def test_still_crashed_target_rejected(self):
        source = build_source(rows=10)
        source.cluster.inject_fault(2, Fault(FailureMode.CRASH))
        with pytest.raises(ProviderUnavailableError):
            repair_provider(source, 2)

    def test_repair_releases_quarantine(self):
        source = build_source(rows=10)
        source.cluster.health.quarantine(2, reason="blamed")
        repair_provider(source, 2)
        assert not source.cluster.health.is_quarantined(2)

    def test_verify_flags_inconsistent_provider(self):
        source = build_source(rows=10)
        provider = source.cluster.providers[2]
        physical = source.physical_name("Employees")
        table = provider.store.table(physical)
        row_id = table.all_row_ids()[0]
        table.update(row_id, {"salary": table.rows[row_id]["salary"] + 1})
        report = verify_repair(source, 2)
        assert report["Employees"]["consistent"] == 0
