"""The epoch-keyed reconstructed-row cache: hits, invalidation, safety.

The cache's contract is asymmetric: it may serve *stale performance*
(fall through to the wire when entries are gone) but never *stale data*
(serve plaintext from before a write or a re-keying).  These tests pin
both halves — the zero-RPC replay on a repeated read, and the
stale-then-invalid lifecycle of a cached row across an epoch bump.
"""

import pytest

from repro import telemetry
from repro.client.datasource import DataSource
from repro.client.rowcache import RowCache
from repro.providers.cluster import ProviderCluster
from repro.workloads.employees import employees_table


def _source(n=5, k=3, rows=30, seed=3):
    cluster = ProviderCluster(n_providers=n, threshold=k)
    source = DataSource(cluster, seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    return cluster, source


QUERY = "SELECT eid, name, salary FROM Employees WHERE salary >= 3000"


def _served(cluster):
    return sum(p.requests_served for p in cluster.providers)


class TestUnitRowCache:
    def test_row_roundtrip_returns_copies(self):
        cache = RowCache()
        row = {"a": 1}
        cache.put_row("t", 1, 0, row)
        row["a"] = 999  # caller mutates after store
        got = cache.get_row("t", 1, 0)
        assert got == {"a": 1}
        got["a"] = 5  # caller mutates the served copy
        assert cache.get_row("t", 1, 0) == {"a": 1}

    def test_epoch_is_part_of_the_key(self):
        cache = RowCache()
        cache.put_row("t", 1, 0, {"a": 1})
        assert cache.get_row("t", 1, 1) is None
        assert cache.get_row("t", 1, 0) == {"a": 1}

    def test_query_replay_and_member_eviction(self):
        cache = RowCache(row_capacity=2, query_capacity=4)
        cache.store_query("t", ("sig",), 0, [(1, {"a": 1}), (2, {"a": 2})])
        assert cache.lookup_query("t", ("sig",), 0) == [{"a": 1}, {"a": 2}]
        # a third row evicts the LRU member; the query can no longer be
        # served whole and must fall through
        cache.put_row("t", 3, 0, {"a": 3})
        assert cache.lookup_query("t", ("sig",), 0) is None

    def test_invalidate_purges_only_that_table(self):
        cache = RowCache()
        cache.put_row("t", 1, 0, {"a": 1})
        cache.put_row("u", 1, 0, {"b": 2})
        cache.store_query("t", ("s",), 0, [(1, {"a": 1})])
        purged = cache.invalidate("t")
        assert purged == 2
        assert cache.get_row("t", 1, 0) is None
        assert cache.get_row("u", 1, 0) == {"b": 2}

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            RowCache(row_capacity=0)


class TestCachedReread:
    def test_identical_select_skips_all_provider_rpcs(self):
        cluster, source = _source()
        first = source.sql(QUERY)
        before = _served(cluster)
        bytes_before = cluster.network.total_bytes
        second = source.sql(QUERY)
        assert second == first
        assert _served(cluster) == before, "cached re-read hit providers"
        assert cluster.network.total_bytes == bytes_before
        assert source.row_cache.stats.query_hits >= 1

    def test_different_projection_same_predicate_shares_row_entries(self):
        cluster, source = _source()
        source.sql(QUERY)
        before = _served(cluster)
        rows = source.sql("SELECT name FROM Employees WHERE salary >= 3000")
        assert _served(cluster) == before
        assert rows and set(rows[0]) == {"name"}

    def test_result_mutation_does_not_poison_the_cache(self):
        _, source = _source()
        first = source.sql(QUERY)
        first[0]["salary"] = -1
        second = source.sql(QUERY)
        assert second[0]["salary"] != -1

    def test_hit_miss_counters_exposed_via_telemetry(self):
        _, source = _source()
        with telemetry.session() as hub:
            source.sql(QUERY)
            source.sql(QUERY)
            assert hub.registry.counter_total("rowcache.query_misses") == 1
            assert hub.registry.counter_total("rowcache.query_hits") == 1
            assert hub.registry.counter_total("rowcache.row_misses") > 0


class TestStaleThenInvalid:
    def test_cached_row_goes_stale_then_invalid_on_epoch_bump(self):
        """Regression (ISSUE 6 satellite): a cached row survives exactly
        until its table's epoch moves, then is both unreachable (new
        epoch key) and physically purged."""
        _, source = _source()
        rows = source.sql(QUERY)
        eid = rows[0]["eid"]
        epoch = source.table_epoch("Employees")
        cached_ids = [
            rid for (tbl, rid, ep) in source.row_cache._rows
            if tbl == "Employees" and ep == epoch
        ]
        assert cached_ids, "first read cached nothing"
        probe = (
            "Employees", cached_ids[0], epoch,
        )
        assert source.row_cache._rows.get(probe) is not None
        # the write makes every cached entry stale...
        n = source.sql(
            f"UPDATE Employees SET salary = 123456 WHERE eid = {eid}"
        )
        assert n == 1
        new_epoch = source.table_epoch("Employees")
        assert new_epoch == epoch + 1
        # ...and invalid: purged from the store, not just unreachable
        assert source.row_cache._rows.get(probe) is None
        assert len(source.row_cache) == 0
        assert source.row_cache.stats.invalidated > 0
        # the next read goes back to the wire and sees the new value
        fresh = source.sql(QUERY)
        assert any(r["salary"] == 123456 for r in fresh)

    def test_lazy_update_flush_invalidates(self):
        from repro.client.updates import LazyUpdateBuffer

        _, source = _source()
        source.sql(QUERY)
        assert len(source.row_cache) > 0
        buffer = LazyUpdateBuffer(source)
        rows = source.sql(QUERY)  # replay, still cached
        eid = rows[0]["eid"]
        from repro.sqlengine.sqlparser import parse_sql

        buffer.enqueue(
            parse_sql(f"UPDATE Employees SET salary = 7777 WHERE eid = {eid}")
        )
        buffer.flush()
        assert len(source.row_cache) == 0
        fresh = source.sql(QUERY)
        assert any(r["salary"] == 7777 for r in fresh)

    def test_rotation_clears_everything(self):
        from repro.core import kernels

        _, source = _source()
        source.sql(QUERY)
        assert len(source.row_cache) > 0
        source.rotate_secrets(new_seed=99)
        # rotation re-keys all plaintext: the cache must be empty, and the
        # kernel caches (keyed on the old evaluation points) must be too
        stats = kernels.kernel_stats()
        assert stats.weight_hits + stats.weight_misses >= 0
        rows = source.sql(QUERY)
        assert rows  # readable under the new secrets

    def test_verified_reads_bypass_the_cache(self):
        from repro.trust.auditing import AuditRegistry

        cluster = ProviderCluster(n_providers=5, threshold=3)
        source = DataSource(
            cluster, seed=3, audit=AuditRegistry(5), read_redundancy=1
        )
        source.outsource_table(employees_table(20, seed=3))
        from repro.sqlengine.sqlparser import parse_sql

        query = parse_sql("SELECT * FROM Employees WHERE salary >= 0")
        source.select(query)
        before = _served(cluster)
        source.select_verified(query)
        assert _served(cluster) > before, "verified read was served from cache"
