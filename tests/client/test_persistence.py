"""Tests for deployment snapshots (save/restore)."""

import json

import pytest

from repro import DataSource, ProviderCluster
from repro.errors import ConfigurationError
from repro.persistence import (
    client_from_dict,
    client_to_dict,
    load_deployment,
    provider_from_dict,
    provider_to_dict,
    save_deployment,
    schema_from_dict,
    schema_to_dict,
)
from repro.sqlengine.executor import rows_equal_unordered
from repro.workloads.employees import employees_schema, employees_table


@pytest.fixture
def deployment(tmp_path):
    source = DataSource(ProviderCluster(4, 2), seed=37)
    source.outsource_table(employees_table(40, seed=37))
    return source, str(tmp_path / "snap")


class TestSchemaRoundtrip:
    def test_roundtrip(self):
        schema = employees_schema()
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored == schema

    def test_extended_alphabet_survives(self):
        from repro.core.encoding import EXTENDED_ALPHABET
        from repro.sqlengine.schema import TableSchema, string_column

        schema = TableSchema(
            "U", (string_column("h", 6, alphabet=EXTENDED_ALPHABET),)
        )
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.column("h").alphabet == EXTENDED_ALPHABET


class TestProviderRoundtrip:
    def test_store_and_indexes_restored(self, deployment):
        source, _ = deployment
        provider = source.cluster.providers[0]
        restored = provider_from_dict(provider_to_dict(provider))
        original_table = provider.store.table("Employees")
        restored_table = restored.store.table("Employees")
        assert restored_table.all_row_ids() == original_table.all_row_ids()
        for rid in original_table.all_row_ids():
            assert restored_table.get(rid) == original_table.get(rid)
        # sorted index rebuilt: range queries behave identically
        index_a = original_table.index_for("salary").entries_in_order()
        index_b = restored_table.index_for("salary").entries_in_order()
        assert index_a == index_b

    def test_json_serialisable(self, deployment):
        source, _ = deployment
        text = json.dumps(provider_to_dict(source.cluster.providers[0]))
        assert "Employees" in text

    def test_version_check(self):
        with pytest.raises(ConfigurationError):
            provider_from_dict({"version": 99, "name": "X", "tables": {}})


class TestDeploymentRoundtrip:
    def test_full_cycle_preserves_answers(self, deployment):
        source, directory = deployment
        expected_rows = source.sql(
            "SELECT name, salary FROM Employees WHERE salary BETWEEN 30000 AND 70000"
        )
        expected_sum = source.sql("SELECT SUM(salary) FROM Employees")
        paths = save_deployment(source, directory)
        assert len(paths) == 6  # client + 4 providers + manifest
        restored = load_deployment(directory)
        assert rows_equal_unordered(
            restored.sql(
                "SELECT name, salary FROM Employees WHERE salary BETWEEN 30000 AND 70000"
            ),
            expected_rows,
        )
        assert restored.sql("SELECT SUM(salary) FROM Employees") == expected_sum

    def test_writes_continue_after_restore(self, deployment):
        source, directory = deployment
        save_deployment(source, directory)
        restored = load_deployment(directory)
        restored.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (999999, 'POST', 'RESTORE', 'ENG', 1234)"
        )
        assert restored.sql(
            "SELECT COUNT(*) FROM Employees WHERE salary = 1234"
        ) == 1
        assert restored.sql("SELECT COUNT(*) FROM Employees") == 41

    def test_row_id_counter_restored(self, deployment):
        source, directory = deployment
        save_deployment(source, directory)
        restored = load_deployment(directory)
        assert restored._next_row_id["Employees"] == 40

    def test_restore_uses_fresh_randomness_epoch(self, deployment):
        """Replaying sharing randomness after restore would leak value
        differences; the restored client must draw different coefficients
        than the original would for the same insert."""
        source, directory = deployment
        save_deployment(source, directory)
        restored = load_deployment(directory)
        row = {
            "eid": 999_999, "name": "SAME", "lastname": "ROW",
            "department": "ENG", "salary": 50_000,
        }
        original_shares = source.sharing("Employees").share_row(row)
        restored_shares = restored.sharing("Employees").share_row(row)
        # order-preserving (deterministic) columns must agree ...
        assert [s["salary"] for s in original_shares] == [
            s["salary"] for s in restored_shares
        ]
        # ... while the random scheme's polynomials must differ — compare
        # random shares of a second value drawn from each stream
        a = source.sharing("Employees").random_scheme.split(
            123, source._rng.substream("probe")
        )
        b = restored.sharing("Employees").random_scheme.split(
            123, restored._rng.substream("probe")
        )
        assert a != b

    def test_double_restore_epochs_differ(self, deployment):
        source, directory = deployment
        save_deployment(source, directory)
        first = load_deployment(directory)
        save_deployment(first, directory)
        second = load_deployment(directory)
        assert second._restore_epoch == first._restore_epoch + 1

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_deployment(str(tmp_path))


class TestTornSnapshots:
    """Crash-safety: load must reject anything but a complete, coherent save."""

    def test_save_is_atomic_no_temp_files_left(self, deployment, tmp_path):
        source, directory = deployment
        save_deployment(source, directory)
        import os

        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []

    def test_missing_manifest_rejected(self, deployment):
        """A save interrupted before the manifest (written last) is torn."""
        import os

        source, directory = deployment
        save_deployment(source, directory)
        os.unlink(os.path.join(directory, "manifest.json"))
        with pytest.raises(ConfigurationError, match="manifest"):
            load_deployment(directory)

    def test_missing_provider_file_rejected(self, deployment):
        import os

        source, directory = deployment
        save_deployment(source, directory)
        os.unlink(os.path.join(directory, "provider_2.json"))
        with pytest.raises(ConfigurationError, match="provider_2"):
            load_deployment(directory)

    def test_truncated_provider_file_rejected(self, deployment):
        """A torn write (partial JSON) fails the digest check, not json.load."""
        import os

        source, directory = deployment
        save_deployment(source, directory)
        path = os.path.join(directory, "provider_1.json")
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(100)
        with pytest.raises(ConfigurationError, match="digest"):
            load_deployment(directory)

    def test_mixed_generation_snapshot_rejected(self, deployment, tmp_path):
        """A provider file from a *different* save must not restore silently
        (shares from different generations reconstruct garbage)."""
        import os
        import shutil

        source, directory = deployment
        save_deployment(source, directory)
        other = DataSource(ProviderCluster(4, 2), seed=99)
        other.outsource_table(employees_table(40, seed=99))
        other_dir = str(tmp_path / "other")
        save_deployment(other, other_dir)
        shutil.copy(
            os.path.join(other_dir, "provider_0.json"),
            os.path.join(directory, "provider_0.json"),
        )
        with pytest.raises(ConfigurationError, match="digest"):
            load_deployment(directory)

    def test_corrupt_manifest_rejected(self, deployment):
        import os

        source, directory = deployment
        save_deployment(source, directory)
        with open(
            os.path.join(directory, "manifest.json"), "w", encoding="utf-8"
        ) as handle:
            handle.write("{not json")
        with pytest.raises(ConfigurationError, match="JSON"):
            load_deployment(directory)

    def test_cluster_mismatch_rejected(self, deployment):
        source, _ = deployment
        data = client_to_dict(source)
        with pytest.raises(ConfigurationError):
            client_from_dict(data, ProviderCluster(3, 2))
        with pytest.raises(ConfigurationError):
            client_from_dict(data, ProviderCluster(4, 3))
