"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, build_source, cmd_sql, main, render_result
from repro.errors import ReproError


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDemo:
    def test_demo_runs(self):
        code, text = run(["demo", "--rows", "60"])
        assert code == 0
        assert "outsourced Employees(60)" in text
        assert "GROUP BY department" in text
        assert "messages:" in text

    def test_custom_cluster_shape(self):
        code, text = run(["demo", "--rows", "30", "--providers", "3",
                          "--threshold", "2"])
        assert code == 0
        assert "3 providers (threshold 2)" in text


class TestFigure1:
    def test_prints_share_table(self):
        code, text = run(["figure1"])
        assert code == 0
        assert "210" in text and "410" in text
        assert "[10, 20, 40, 60, 80]" in text


class TestSqlBatch:
    def test_execute_statements(self):
        code, text = run([
            "sql", "--rows", "40",
            "-e", "SELECT COUNT(*) FROM Employees",
            "-e", "SELECT MAX(salary) FROM Employees",
        ])
        assert code == 0
        assert "40" in text

    def test_parse_error_reported_not_fatal(self):
        code, text = run([
            "sql", "--rows", "10",
            "-e", "SELEKT broken",
            "-e", "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        assert "error:" in text
        assert "10" in text

    def test_ecommerce_workload(self):
        code, text = run([
            "sql", "--workload", "ecommerce", "--rows", "50",
            "-e", "SELECT action, COUNT(*) FROM Events GROUP BY action",
        ])
        assert code == 0
        assert "action" in text

    def test_snapshot_roundtrip(self, tmp_path):
        directory = str(tmp_path / "snap")
        code, _ = run([
            "sql", "--rows", "15", "--save", directory,
            "-e", "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        code, text = run([
            "sql", "--snapshot", directory,
            "-e", "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        assert "15" in text


class TestInteractiveShell:
    def drive(self, lines, rows=20):
        out = io.StringIO()
        parser = build_parser()
        args = parser.parse_args(["sql", "--rows", str(rows)])
        cmd_sql(args, out, input_lines=lines)
        return out.getvalue()

    def test_meta_tables(self):
        text = self.drive(["\\tables", "\\quit"])
        assert "Employees" in text and "(random)" in text

    def test_meta_stats(self):
        text = self.drive(["SELECT COUNT(*) FROM Employees", "\\stats"])
        assert "messages:" in text

    def test_meta_explain(self):
        text = self.drive(
            ["\\explain SELECT * FROM Employees WHERE salary BETWEEN 1 AND 2"]
        )
        assert "pushdown" in text

    def test_meta_explain_usage(self):
        text = self.drive(["\\explain"])
        assert "usage" in text

    def test_unknown_meta_shows_help(self):
        text = self.drive(["\\bogus"])
        assert "meta-commands" in text

    def test_quit_stops(self):
        text = self.drive(["\\quit", "SELECT COUNT(*) FROM Employees"])
        # the post-quit statement never executes: no standalone scalar line
        assert "20" not in [line.strip() for line in text.splitlines()]

    def test_empty_lines_ignored(self):
        text = self.drive(["", "   ", "\\quit"])
        assert "error" not in text

    def test_save_meta(self, tmp_path):
        directory = str(tmp_path / "metasnap")
        text = self.drive([f"\\save {directory}", "\\quit"])
        assert "saved" in text


class TestTrace:
    STATEMENT = (
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 10000 AND 50000 ORDER BY salary LIMIT 5"
    )

    def test_prints_span_tree_and_counters(self):
        code, text = run(["trace", "--rows", "40", self.STATEMENT])
        assert code == 0
        for span_name in ("query", "select", "rewrite", "fan_out", "rpc",
                          "reconstruct"):
            assert span_name in text
        assert "counters:" in text
        assert "net.bytes{dst=DAS1,src=client}" in text
        assert "modelled" in text

    def test_trace_is_deterministic(self):
        outputs = [run(["trace", "--rows", "40", self.STATEMENT])
                   for _ in range(2)]
        assert outputs[0] == outputs[1]

    def test_json_export_parses_and_matches_network(self):
        code, text = run(["trace", "--rows", "40", "--json", self.STATEMENT])
        assert code == 0
        export = json.loads(text)
        assert sorted(export) == [
            "dropped_traces", "kernel_backend", "kernels", "metrics",
            "network", "traces",
        ]
        assert export["kernel_backend"] in ("scalar", "numpy")
        counters = export["metrics"]["counters"]
        telemetry_bytes = sum(
            value for key, value in counters.items()
            if key.startswith("net.bytes{")
        )
        assert telemetry_bytes == export["network"]["bytes"]
        telemetry_messages = sum(
            value for key, value in counters.items()
            if key.startswith("net.messages{")
        )
        assert telemetry_messages == export["network"]["messages"]
        (trace,) = export["traces"]
        assert trace["name"] == "query"
        assert trace["end"] == export["network"]["modelled_seconds"]

    def test_trace_restores_prior_telemetry_state(self):
        from repro import telemetry

        before = telemetry.hub()
        run(["trace", "--rows", "20", "SELECT COUNT(*) FROM Employees"])
        assert telemetry.hub() is before

    def test_trace_query_error_is_reported(self):
        code, text = run(["trace", "--rows", "10", "SELEKT broken"])
        assert code == 1
        assert "error:" in text

    def test_trace_ecommerce_workload(self):
        code, text = run([
            "trace", "--workload", "ecommerce", "--rows", "30",
            "SELECT COUNT(*) FROM Events",
        ])
        assert code == 0
        assert "fan_out" in text

    def test_trace_against_snapshot(self, tmp_path):
        directory = str(tmp_path / "snap")
        code, _ = run([
            "sql", "--rows", "15", "--save", directory,
            "-e", "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        code, text = run([
            "trace", "--snapshot", directory,
            "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        assert "15" in text and "fan_out" in text

    def test_trace_bad_snapshot_path_exits_nonzero(self, tmp_path):
        """A missing deployment is a one-line error, never a traceback."""
        code, text = run([
            "trace", "--snapshot", str(tmp_path / "no-such-dir"),
            "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 1
        assert text.startswith("error:")
        assert "Traceback" not in text

    def test_trace_output_writes_export(self, tmp_path):
        target = tmp_path / "trace.json"
        code, text = run([
            "trace", "--rows", "20", "--output", str(target),
            "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 0
        assert "wrote trace export" in text
        export = json.loads(target.read_text())
        assert export["network"]["messages"] > 0

    def test_trace_unwritable_output_exits_nonzero(self, tmp_path):
        code, text = run([
            "trace", "--rows", "20",
            "--output", str(tmp_path / "missing-dir" / "trace.json"),
            "SELECT COUNT(*) FROM Employees",
        ])
        assert code == 1
        assert text.startswith("error: cannot write trace export")


class TestServeSim:
    def test_pretty_report(self):
        code, text = run([
            "serve-sim", "--rows", "30", "--clients", "3",
            "--statements", "4",
        ])
        assert code == 0
        assert "serve-sim: 3 clients x 4 statements" in text
        assert "completed:" in text
        assert "throughput" in text
        assert "admission:" in text
        assert "batching:" in text
        assert "plan cache:" in text

    def test_json_report_parses(self):
        code, text = run([
            "serve-sim", "--rows", "30", "--clients", "3",
            "--statements", "4", "--json",
        ])
        assert code == 0
        report = json.loads(text)
        assert report["completed"] == 3 * 4
        assert report["failed"] == 0
        assert report["admission"]["rejected_total"] >= 0

    def test_deterministic_per_seed(self):
        args = [
            "serve-sim", "--rows", "30", "--clients", "2",
            "--statements", "3", "--seed", "5", "--json",
        ]
        a = json.loads(run(args)[1])
        b = json.loads(run(args)[1])
        # wall-clock timings (and thread-schedule-dependent batching) vary;
        # the generated workload and its outcome must not
        for key in ("workload", "completed", "failed"):
            assert a[key] == b[key]


class TestHelpers:
    def test_render_scalar(self):
        assert render_result(42) == "42"

    def test_render_empty(self):
        assert render_result([]) == "(0 rows)"

    def test_render_rows(self):
        text = render_result([{"a": 1}, {"a": 2}])
        assert "(2 rows)" in text

    def test_unknown_workload(self):
        with pytest.raises(ReproError):
            build_source("nope", 10, 3, 2, 1)


class TestSubprocess:
    def test_module_entrypoint(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "figure1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "210" in completed.stdout
