"""Integration-grade unit tests for the DataSource client."""

import pytest

from repro import (
    DataSource,
    Select,
    JoinSelect,
    Insert,
    Update,
    Delete,
    Aggregate,
    AggregateFunc,
)
from repro.errors import (
    QueryError,
    SchemaError,
    UnsupportedQueryError,
)
from repro.providers.failures import Fault, FailureMode
from repro.sqlengine.executor import rows_equal_unordered
from repro.sqlengine.expression import Between, Comparison, ComparisonOp


class TestOutsourcing:
    def test_outsource_counts(self, outsourced, employees, managers):
        assert outsourced.sql("SELECT COUNT(*) FROM Employees") == len(employees)
        assert outsourced.sql("SELECT COUNT(*) FROM Managers") == len(managers)

    def test_duplicate_table_rejected(self, outsourced, employees):
        with pytest.raises(SchemaError):
            outsourced.outsource_table(employees)

    def test_unknown_table_rejected(self, outsourced):
        with pytest.raises(SchemaError):
            outsourced.select(Select("Nope"))

    def test_secrets_provider_mismatch(self, cluster):
        from repro.core.secrets import generate_client_secrets

        with pytest.raises(SchemaError):
            DataSource(cluster, secrets=generate_client_secrets(3, 0))

    def test_providers_store_only_shares(self, outsourced, employees):
        """No provider's storage contains any plaintext salary value."""
        salaries = {row["salary"] for row in employees}
        for provider in outsourced.cluster.providers:
            table = provider.store.table("Employees")
            stored = {row["salary"] for row in table.rows.values()}
            assert not (stored & salaries) or all(
                s > 10**6 for s in stored & salaries
            )


class TestSelectVsOracle:
    QUERIES = [
        "SELECT * FROM Employees WHERE salary = 60000",
        "SELECT name FROM Employees WHERE salary BETWEEN 30000 AND 70000",
        "SELECT name, salary FROM Employees WHERE department = 'ENG'",
        "SELECT * FROM Employees WHERE name LIKE 'J%'",
        "SELECT * FROM Employees WHERE salary > 50000 AND department = 'HR'",
        "SELECT * FROM Employees WHERE salary < 20000 OR salary > 90000",
        "SELECT * FROM Employees WHERE name != 'JOHN' AND salary >= 95000",
        "SELECT * FROM Employees WHERE salary >= 0",
        "SELECT * FROM Employees WHERE salary BETWEEN 70000 AND 60000",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_oracle(self, outsourced, oracle, sql):
        from repro import parse_sql

        mine = outsourced.sql(sql)
        truth = oracle.execute(parse_sql(sql))
        assert rows_equal_unordered(mine, truth)


class TestAggregatesVsOracle:
    QUERIES = [
        "SELECT COUNT(*) FROM Employees WHERE salary > 50000",
        "SELECT COUNT(salary) FROM Employees",
        "SELECT SUM(salary) FROM Employees WHERE salary BETWEEN 20000 AND 80000",
        "SELECT AVG(salary) FROM Employees WHERE department = 'SALES'",
        "SELECT MIN(salary) FROM Employees",
        "SELECT MAX(salary) FROM Employees WHERE name LIKE 'M%'",
        "SELECT MEDIAN(salary) FROM Employees WHERE salary > 30000",
        # with residual → client-side fallback
        "SELECT SUM(salary) FROM Employees WHERE salary < 20000 OR salary > 90000",
        "SELECT MIN(salary) FROM Employees WHERE name != 'JOHN'",
        # empty input
        "SELECT SUM(salary) FROM Employees WHERE salary = 123",
        "SELECT COUNT(*) FROM Employees WHERE salary = 123",
        "SELECT MEDIAN(salary) FROM Employees WHERE salary = 123",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_oracle(self, outsourced, oracle, sql):
        from repro import parse_sql

        assert outsourced.sql(sql) == oracle.execute(parse_sql(sql))

    def test_sum_on_string_rejected(self, outsourced):
        with pytest.raises(QueryError):
            outsourced.sql("SELECT SUM(name) FROM Employees")


class TestJoins:
    def test_provider_side_join_matches_oracle(self, outsourced, oracle):
        query = JoinSelect(
            "Employees", "Managers", "eid", "eid",
            columns=("Employees.name", "Employees.salary", "Managers.manager_username"),
        )
        assert rows_equal_unordered(
            outsourced.join(query), oracle.execute(query)
        )

    def test_join_with_side_predicates(self, outsourced, oracle):
        query = JoinSelect(
            "Employees", "Managers", "eid", "eid",
            where=Comparison("Employees.salary", ComparisonOp.GE, 50000),
        )
        assert rows_equal_unordered(
            outsourced.join(query), oracle.execute(query)
        )

    def test_incompatible_join_raises(self, outsourced):
        query = JoinSelect(
            "Employees", "Managers", "name", "manager_username"
        )
        with pytest.raises(UnsupportedQueryError):
            outsourced.join(query)

    def test_client_fallback_join(self, cluster, employees, managers, oracle):
        source = DataSource(cluster, seed=42, client_join_fallback=True)
        source.outsource_table(employees)
        source.outsource_table(managers)
        # name vs manager_username: different domains → client-side join
        query = JoinSelect("Employees", "Managers", "eid", "manager_id")
        result = source.join(query)
        assert rows_equal_unordered(result, oracle.execute(query))

    def test_join_on_password_rejected_even_with_fallback(self, outsourced):
        """Randomly-shared columns can still be joined at the client after
        reconstruction when fallback is on — but never provider-side."""
        query = JoinSelect("Employees", "Managers", "name", "password")
        with pytest.raises(UnsupportedQueryError):
            outsourced.join(query)


class TestWrites:
    def test_insert_visible(self, outsourced):
        outsourced.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (999999, 'NEW', 'HIRE', 'ENG', 12345)"
        )
        rows = outsourced.sql("SELECT name FROM Employees WHERE salary = 12345")
        assert rows == [{"name": "NEW"}]

    def test_insert_validates(self, outsourced):
        with pytest.raises(SchemaError):
            outsourced.insert("Employees", {"eid": 1})

    def test_update_and_read_back(self, outsourced, oracle):
        sql = "UPDATE Employees SET department = 'OPS' WHERE salary > 80000"
        from repro import parse_sql

        assert outsourced.sql(sql) == oracle.execute(parse_sql(sql))
        check = "SELECT COUNT(*) FROM Employees WHERE department = 'OPS'"
        assert outsourced.sql(check) == oracle.execute(parse_sql(check))

    def test_update_no_match(self, outsourced):
        assert outsourced.sql("UPDATE Employees SET salary = 1 WHERE salary = 123") == 0

    def test_update_pk_rejected(self, outsourced):
        with pytest.raises(SchemaError):
            outsourced.sql("UPDATE Employees SET eid = 5 WHERE salary > 0")

    def test_delete(self, outsourced, oracle):
        from repro import parse_sql

        sql = "DELETE FROM Employees WHERE department = 'HR'"
        assert outsourced.sql(sql) == oracle.execute(parse_sql(sql))
        count = "SELECT COUNT(*) FROM Employees"
        assert outsourced.sql(count) == oracle.execute(parse_sql(count))

    def test_delete_with_residual_predicate(self, outsourced, oracle):
        from repro import parse_sql

        sql = "DELETE FROM Employees WHERE salary < 15000 OR salary > 95000"
        assert outsourced.sql(sql) == oracle.execute(parse_sql(sql))


class TestFaultTolerance:
    def test_reads_survive_n_minus_k_crashes(self, outsourced, oracle):
        from repro import parse_sql

        outsourced.cluster.inject_fault(0, Fault(FailureMode.CRASH))
        outsourced.cluster.inject_fault(3, Fault(FailureMode.CRASH))
        sql = "SELECT name FROM Employees WHERE salary BETWEEN 30000 AND 70000"
        assert rows_equal_unordered(
            outsourced.sql(sql), oracle.execute(parse_sql(sql))
        )

    def test_reads_fail_below_threshold(self, outsourced):
        for i in range(3):
            outsourced.cluster.inject_fault(i, Fault(FailureMode.CRASH))
        from repro.errors import QuorumError

        with pytest.raises(QuorumError):
            outsourced.sql("SELECT * FROM Employees WHERE salary = 1")

    def test_aggregates_survive_crashes(self, outsourced, oracle):
        from repro import parse_sql

        outsourced.cluster.inject_fault(1, Fault(FailureMode.CRASH))
        sql = "SELECT SUM(salary) FROM Employees"
        assert outsourced.sql(sql) == oracle.execute(parse_sql(sql))


class TestDispatch:
    def test_execute_ast_nodes(self, outsourced):
        assert outsourced.execute(
            Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
        ) > 0
        assert outsourced.execute(
            Insert("Employees", {
                "eid": 999998, "name": "X", "lastname": "Y",
                "department": "IT", "salary": 1,
            })
        ) == 1
        assert isinstance(
            outsourced.execute(Update("Employees", {"salary": 2}, Comparison("eid", ComparisonOp.EQ, 999998))),
            int,
        )
        assert outsourced.execute(Delete("Employees", Comparison("eid", ComparisonOp.EQ, 999998))) == 1

    def test_unknown_query_object(self, outsourced):
        with pytest.raises(QueryError):
            outsourced.execute(3.14)

    def test_select_with_ids(self, outsourced):
        pairs = outsourced.select_with_ids(
            Select("Employees", where=Between("salary", 40000, 60000))
        )
        assert all(isinstance(rid, int) for rid, _ in pairs)
        ids = [rid for rid, _ in pairs]
        assert len(set(ids)) == len(ids)

    def test_select_with_ids_rejects_aggregates(self, outsourced):
        with pytest.raises(QueryError):
            outsourced.select_with_ids(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )
