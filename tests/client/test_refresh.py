"""Tests for proactive share refresh (mobile-adversary defence)."""

import pytest

from repro import DataSource, ProviderCluster, Table, TableSchema, integer_column
from repro.errors import QueryError
from repro.trust.auditing import AuditRegistry
from repro.workloads.employees import employees_table


@pytest.fixture
def source():
    source = DataSource(ProviderCluster(4, 2), seed=67)
    source.outsource_table(employees_table(25, seed=67))
    return source


def random_column_shares(source, table, column):
    """Snapshot every provider's shares of one column."""
    return {
        index: {
            rid: provider.store.table(table).get(rid)[column]
            for rid in provider.store.table(table).all_row_ids()
        }
        for index, provider in enumerate(source.cluster.providers)
    }


class TestRefresh:
    def test_values_unchanged(self, source):
        before = source.sql("SELECT * FROM Employees")
        schema_table = TableSchema(
            "Accounts",
            (
                integer_column("aid", 1, 100),
                integer_column("balance", 0, 10**6, searchable=False),
            ),
            primary_key="aid",
        )
        accounts = Table(
            schema_table, [{"aid": i, "balance": 100 * i} for i in range(1, 11)]
        )
        source.outsource_table(accounts)
        before_accounts = source.sql("SELECT * FROM Accounts")
        assert source.refresh_table_shares("Accounts") == 10
        after_accounts = source.sql("SELECT * FROM Accounts")
        from repro.sqlengine.executor import rows_equal_unordered

        assert rows_equal_unordered(before_accounts, after_accounts)
        # the original (OP-only Employees columns + password-free schema)
        from repro.sqlengine.executor import rows_equal_unordered as req

        assert req(source.sql("SELECT * FROM Employees"), before)

    def test_shares_actually_change(self, source):
        schema_table = TableSchema(
            "Accounts",
            (
                integer_column("aid", 1, 100),
                integer_column("balance", 0, 10**6, searchable=False),
            ),
            primary_key="aid",
        )
        accounts = Table(
            schema_table, [{"aid": i, "balance": 100 * i} for i in range(1, 11)]
        )
        source.outsource_table(accounts)
        before = random_column_shares(source, "Accounts", "balance")
        source.refresh_table_shares("Accounts")
        after = random_column_shares(source, "Accounts", "balance")
        for index in before:
            assert before[index] != after[index], index

    def test_epoch_mixing_fails(self, source):
        """Shares from different refresh epochs cannot be combined — the
        proactive-security property."""
        schema_table = TableSchema(
            "Accounts",
            (
                integer_column("aid", 1, 100),
                integer_column("balance", 0, 10**6, searchable=False),
            ),
            primary_key="aid",
        )
        accounts = Table(schema_table, [{"aid": 1, "balance": 777}])
        source.outsource_table(accounts)
        sharing = source.sharing("Accounts")
        old = random_column_shares(source, "Accounts", "balance")
        source.refresh_table_shares("Accounts")
        new = random_column_shares(source, "Accounts", "balance")
        rid = next(iter(old[0]))
        mixed = {0: old[0][rid], 1: new[1][rid]}
        decoded = sharing.random_scheme.reconstruct(
            {i: s % sharing.random_scheme.field.modulus for i, s in mixed.items()}
        )
        assert sharing.random_scheme.field.decode_signed(decoded) != 777

    def test_op_only_table_is_noop(self, source):
        # Employees has no non-searchable columns in the fixture schema
        searchables = [
            c.searchable for c in source.sharing("Employees").schema.columns
        ]
        if all(searchables):
            assert source.refresh_table_shares("Employees") == 0

    def test_shares_stay_bounded(self, source):
        """Modular reduction at the providers keeps magnitudes bounded
        across many refresh epochs."""
        schema_table = TableSchema(
            "Accounts",
            (
                integer_column("aid", 1, 100),
                integer_column("balance", 0, 10**6, searchable=False),
            ),
            primary_key="aid",
        )
        source.outsource_table(Table(schema_table, [{"aid": 1, "balance": 5}]))
        modulus = source.secrets.field.modulus
        for _ in range(5):
            source.refresh_table_shares("Accounts")
        shares = random_column_shares(source, "Accounts", "balance")
        for per_provider in shares.values():
            for share in per_provider.values():
                assert 0 <= share < modulus
        assert source.sql("SELECT * FROM Accounts")[0]["balance"] == 5

    def test_audited_source_rejected(self):
        registry = AuditRegistry(3)
        source = DataSource(ProviderCluster(3, 2), seed=68, audit=registry)
        source.outsource_table(employees_table(5, seed=68))
        with pytest.raises(QueryError):
            source.refresh_table_shares("Employees")
