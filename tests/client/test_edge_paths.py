"""Edge-path tests filling coverage gaps across modules."""

import pytest

from repro import (
    DataSource,
    JoinSelect,
    ProviderCluster,
    Select,
    Table,
    TableSchema,
    integer_column,
    string_column,
)
from repro.errors import ProviderError, QueryError, ReconstructionError
from repro.sqlengine.expression import Comparison, ComparisonOp, StartsWith
from repro.workloads.employees import employees_table


class TestExplainFallbackJoin:
    def test_fallback_join_plan(self):
        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=1, client_join_fallback=True)
        source.outsource_table(employees_table(5, seed=1))
        source.outsource_table(
            Table(
                TableSchema(
                    "Other", (integer_column("x", 0, 9), string_column("s", 4))
                )
            )
        )
        plan = source.explain(JoinSelect("Employees", "Other", "name", "s"))
        assert "client" in plan["strategy"]


class TestRewriterEdges:
    def test_startswith_on_integer_column_goes_residual(self):
        """StartsWith on a non-string column has no prefix_range; the
        conjunct must fall back to client-side evaluation, not crash."""
        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=2)
        source.outsource_table(employees_table(10, seed=2))
        rows = source.select(
            Select("Employees", where=StartsWith("salary", "1"))
        )
        # plaintext semantics: str(value).startswith — evaluated client-side
        expected = [
            r for r in employees_table(10, seed=2).rows()
            if str(r["salary"]).startswith("1")
        ]
        assert len(rows) == len(expected)

    def test_string_equality_with_overlong_literal_empty(self):
        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=3)
        source.outsource_table(employees_table(10, seed=3))
        rows = source.sql(
            "SELECT * FROM Employees WHERE name = 'WAYTOOLONGFORWIDTH'"
        )
        assert rows == []

    def test_wrong_type_literal_residual(self):
        cluster = ProviderCluster(3, 2)
        source = DataSource(cluster, seed=4)
        source.outsource_table(employees_table(10, seed=4))
        # integer literal against a string column: unencodable → residual
        rows = source.select(
            Select("Employees", where=Comparison("name", ComparisonOp.EQ, 5))
        )
        assert rows == []


class TestProviderEdges:
    def test_merkle_proof_missing_row(self):
        from repro.providers.provider import ShareProvider

        provider = ShareProvider("X")
        provider.handle(
            "create_table", {"table": "T", "columns": ["a"], "searchable": []}
        )
        with pytest.raises(ProviderError):
            provider.handle("merkle_proof", {"table": "T", "row_id": 9})

    def test_drop_table_rpc(self):
        from repro.providers.provider import ShareProvider

        provider = ShareProvider("X")
        provider.handle(
            "create_table", {"table": "T", "columns": ["a"], "searchable": []}
        )
        provider.handle("drop_table", {"table": "T"})
        with pytest.raises(ProviderError):
            provider.handle("row_count", {"table": "T"})

    def test_merkle_tree_cache_by_version(self):
        from repro.providers.provider import ShareProvider

        provider = ShareProvider("X")
        provider.handle(
            "create_table", {"table": "T", "columns": ["a"], "searchable": []}
        )
        provider.handle("insert_many", {"table": "T", "rows": [[0, {"a": 1}]]})
        root_one = provider.handle("merkle_root", {"table": "T"})["root"]
        assert provider.handle("merkle_root", {"table": "T"})["root"] == root_one
        provider.handle("insert_many", {"table": "T", "rows": [[1, {"a": 2}]]})
        assert provider.handle("merkle_root", {"table": "T"})["root"] != root_one


class TestExecutorEdges:
    def test_join_projection_validation(self):
        from repro.sqlengine.catalog import Catalog
        from repro.sqlengine.executor import PlaintextExecutor

        catalog = Catalog()
        catalog.add_table(
            Table(
                TableSchema("A", (integer_column("x", 0, 9),)),
                [{"x": 1}],
            )
        )
        catalog.add_table(
            Table(
                TableSchema("B", (integer_column("x", 0, 9),)),
                [{"x": 1}],
            )
        )
        executor = PlaintextExecutor(catalog)
        with pytest.raises(QueryError):
            executor.execute(
                JoinSelect("A", "B", "x", "x", columns=("A.zzz",))
            )

    def test_join_null_keys_never_match(self):
        from repro.sqlengine.catalog import Catalog
        from repro.sqlengine.executor import PlaintextExecutor

        schema = TableSchema(
            "N", (integer_column("x", 0, 9, nullable=True),)
        )
        catalog = Catalog()
        catalog.add_table(Table(schema, [{"x": None}, {"x": 1}]))
        catalog.add_table(
            Table(
                TableSchema("M", (integer_column("x", 0, 9, nullable=True),)),
                [{"x": None}, {"x": 1}],
            )
        )
        executor = PlaintextExecutor(catalog)
        rows = executor.execute(JoinSelect("N", "M", "x", "x"))
        assert len(rows) == 1  # only the 1-1 pair; NULLs never join


class TestNetworkEdges:
    def test_wire_size_protocol(self):
        from repro.sim.network import measure_bytes

        class Sized:
            def wire_size(self):
                return 77

        assert measure_bytes(Sized()) == 77


class TestReconstructEdges:
    def test_single_row_aggregate_threshold_shortfall(self):
        from repro.client.reconstruct import reconstruct_single_rows
        from repro.core.scheme import TableSharing
        from repro.core.secrets import generate_client_secrets
        from repro.sim.rng import DeterministicRNG

        schema = TableSchema("T", (integer_column("k", 0, 9),))
        sharing = TableSharing(
            schema, generate_client_secrets(4, seed=5), 3, DeterministicRNG(5)
        )
        share_rows = sharing.share_row({"k": 3})
        responses = {0: {"row": [1, share_rows[0]], "count": 1},
                     1: {"row": [1, share_rows[1]], "count": 1}}
        with pytest.raises(ReconstructionError):
            reconstruct_single_rows(sharing, responses)
