"""Unit tests for the lazy-update buffer (Sec. V-C)."""

import pytest

from repro import DataSource, ProviderCluster, Select, Update
from repro.client.updates import LazyUpdateBuffer
from repro.errors import QueryError
from repro.sqlengine.expression import Between, Comparison, ComparisonOp
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.workloads.employees import employees_table


@pytest.fixture
def source():
    cluster = ProviderCluster(4, 2)
    source = DataSource(cluster, seed=11)
    source.outsource_table(employees_table(60, seed=11))
    return source


@pytest.fixture
def buffer(source):
    return LazyUpdateBuffer(source, auto_flush_threshold=100)


class TestEnqueueFlush:
    def test_enqueue_defers_provider_writes(self, source, buffer):
        source.cluster.network.reset()
        buffer.enqueue(Update("Employees", {"salary": 1}, Between("salary", 0, 10_000)))
        assert source.cluster.network.total_messages == 0
        assert buffer.pending_count == 1

    def test_flush_applies(self, source, buffer):
        before = source.sql("SELECT COUNT(*) FROM Employees WHERE salary > 90000")
        buffer.enqueue(
            Update("Employees", {"salary": 95000},
                   Comparison("salary", ComparisonOp.GT, 90000))
        )
        changed = buffer.flush()
        assert changed == before
        assert buffer.pending_count == 0
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 95000") >= before

    def test_flush_empty_is_noop(self, buffer):
        assert buffer.flush() == 0

    def test_statements_compose_in_order(self, source, buffer):
        # raise low salaries to 50k, then raise 50k to 60k: both apply
        buffer.enqueue(
            Update("Employees", {"salary": 50000},
                   Comparison("salary", ComparisonOp.LT, 20000))
        )
        buffer.enqueue(
            Update("Employees", {"salary": 60000},
                   Comparison("salary", ComparisonOp.EQ, 50000))
        )
        buffer.flush()
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 50000") == 0

    def test_auto_flush_threshold(self, source):
        buffer = LazyUpdateBuffer(source, auto_flush_threshold=2)
        buffer.enqueue(Update("Employees", {"salary": 1}, Between("salary", 0, 1)))
        assert buffer.pending_count == 1
        buffer.enqueue(Update("Employees", {"salary": 2}, Between("salary", 0, 1)))
        assert buffer.pending_count == 0  # flushed
        assert buffer.flush_count == 1

    def test_bad_threshold(self, source):
        with pytest.raises(QueryError):
            LazyUpdateBuffer(source, auto_flush_threshold=0)

    def test_enqueue_validates_columns(self, buffer):
        with pytest.raises(Exception):
            buffer.enqueue(Update("Employees", {"zzz": 1}))

    def test_batching_saves_messages(self, source):
        """The paper's motivation: one batched round beats per-statement."""
        eager_source = source
        lazy = LazyUpdateBuffer(source, auto_flush_threshold=1000)
        statements = [
            Update("Employees", {"department": "OPS"},
                   Between("salary", lo, lo + 5000))
            for lo in range(30000, 60000, 5000)
        ]
        source.cluster.network.reset()
        for statement in statements:
            lazy.enqueue(statement)
        lazy.flush()
        lazy_msgs = source.cluster.network.total_messages
        source.cluster.network.reset()
        for statement in statements:
            eager_source.update(statement)
        eager_msgs = source.cluster.network.total_messages
        assert lazy_msgs < eager_msgs


class TestReadThrough:
    def test_reads_see_pending_updates(self, source, buffer):
        buffer.enqueue(
            Update("Employees", {"salary": 77777},
                   Comparison("salary", ComparisonOp.GT, 90000))
        )
        rows = buffer.read_through(
            Select("Employees", where=Comparison("salary", ComparisonOp.EQ, 77777))
        )
        stale = source.sql("SELECT * FROM Employees WHERE salary = 77777")
        assert len(rows) >= len(stale)

    def test_projection_applied(self, source, buffer):
        buffer.enqueue(
            Update("Employees", {"salary": 5},
                   Comparison("salary", ComparisonOp.LT, 20000))
        )
        rows = buffer.read_through(
            Select("Employees", columns=("name",),
                   where=Comparison("salary", ComparisonOp.EQ, 5))
        )
        assert all(set(r) == {"name"} for r in rows)

    def test_no_pending_delegates(self, source, buffer):
        rows = buffer.read_through(Select("Employees"))
        assert len(rows) == 60

    def test_aggregate_requires_flush(self, buffer):
        with pytest.raises(QueryError):
            buffer.read_through(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )
