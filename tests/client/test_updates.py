"""Unit tests for the lazy-update buffer (Sec. V-C)."""

import pytest

from repro import DataSource, ProviderCluster, Select, Update
from repro.client.updates import LazyUpdateBuffer
from repro.errors import QueryError
from repro.sqlengine.expression import Between, Comparison, ComparisonOp
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.workloads.employees import employees_table


@pytest.fixture
def source():
    cluster = ProviderCluster(4, 2)
    source = DataSource(cluster, seed=11)
    source.outsource_table(employees_table(60, seed=11))
    return source


@pytest.fixture
def buffer(source):
    return LazyUpdateBuffer(source, auto_flush_threshold=100)


class TestEnqueueFlush:
    def test_enqueue_defers_provider_writes(self, source, buffer):
        source.cluster.network.reset()
        buffer.enqueue(Update("Employees", {"salary": 1}, Between("salary", 0, 10_000)))
        assert source.cluster.network.total_messages == 0
        assert buffer.pending_count == 1

    def test_flush_applies(self, source, buffer):
        before = source.sql("SELECT COUNT(*) FROM Employees WHERE salary > 90000")
        buffer.enqueue(
            Update("Employees", {"salary": 95000},
                   Comparison("salary", ComparisonOp.GT, 90000))
        )
        changed = buffer.flush()
        assert changed == before
        assert buffer.pending_count == 0
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 95000") >= before

    def test_flush_empty_is_noop(self, buffer):
        assert buffer.flush() == 0

    def test_statements_compose_in_order(self, source, buffer):
        # raise low salaries to 50k, then raise 50k to 60k: both apply
        buffer.enqueue(
            Update("Employees", {"salary": 50000},
                   Comparison("salary", ComparisonOp.LT, 20000))
        )
        buffer.enqueue(
            Update("Employees", {"salary": 60000},
                   Comparison("salary", ComparisonOp.EQ, 50000))
        )
        buffer.flush()
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 50000") == 0

    def test_auto_flush_threshold(self, source):
        buffer = LazyUpdateBuffer(source, auto_flush_threshold=2)
        buffer.enqueue(Update("Employees", {"salary": 1}, Between("salary", 0, 1)))
        assert buffer.pending_count == 1
        buffer.enqueue(Update("Employees", {"salary": 2}, Between("salary", 0, 1)))
        assert buffer.pending_count == 0  # flushed
        assert buffer.flush_count == 1

    def test_bad_threshold(self, source):
        with pytest.raises(QueryError):
            LazyUpdateBuffer(source, auto_flush_threshold=0)

    def test_enqueue_validates_columns(self, buffer):
        with pytest.raises(Exception):
            buffer.enqueue(Update("Employees", {"zzz": 1}))

    def test_batching_saves_messages(self, source):
        """The paper's motivation: one batched round beats per-statement."""
        eager_source = source
        lazy = LazyUpdateBuffer(source, auto_flush_threshold=1000)
        statements = [
            Update("Employees", {"department": "OPS"},
                   Between("salary", lo, lo + 5000))
            for lo in range(30000, 60000, 5000)
        ]
        source.cluster.network.reset()
        for statement in statements:
            lazy.enqueue(statement)
        lazy.flush()
        lazy_msgs = source.cluster.network.total_messages
        source.cluster.network.reset()
        for statement in statements:
            eager_source.update(statement)
        eager_msgs = source.cluster.network.total_messages
        assert lazy_msgs < eager_msgs


class TestReadThrough:
    def test_reads_see_pending_updates(self, source, buffer):
        buffer.enqueue(
            Update("Employees", {"salary": 77777},
                   Comparison("salary", ComparisonOp.GT, 90000))
        )
        rows = buffer.read_through(
            Select("Employees", where=Comparison("salary", ComparisonOp.EQ, 77777))
        )
        stale = source.sql("SELECT * FROM Employees WHERE salary = 77777")
        assert len(rows) >= len(stale)

    def test_projection_applied(self, source, buffer):
        buffer.enqueue(
            Update("Employees", {"salary": 5},
                   Comparison("salary", ComparisonOp.LT, 20000))
        )
        rows = buffer.read_through(
            Select("Employees", columns=("name",),
                   where=Comparison("salary", ComparisonOp.EQ, 5))
        )
        assert all(set(r) == {"name"} for r in rows)

    def test_no_pending_delegates(self, source, buffer):
        rows = buffer.read_through(Select("Employees"))
        assert len(rows) == 60

    def test_aggregate_requires_flush(self, buffer):
        with pytest.raises(QueryError):
            buffer.read_through(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )


class TestEpochChokePoint:
    """ISSUE-8 satellite: no write path may bypass bump_table_epoch."""

    def test_direct_mutating_rpc_is_refused(self, source):
        # a write that skips the choke point would leave stale entries in
        # the epoch-keyed plan/row caches; the source refuses it outright
        with pytest.raises(QueryError):
            source._broadcast(
                "delete_rows",
                lambda i: {"table": "Employees", "row_ids": [0]},
            )

    def test_lazy_flush_bumps_the_epoch(self, source, buffer):
        before = source.table_epoch("Employees")
        buffer.enqueue(
            Update("Employees", {"salary": 12345},
                   Between("salary", 0, 200_000))
        )
        buffer.flush()
        assert source.table_epoch("Employees") > before

    def test_lazy_flush_poisons_neither_cache(self, source, buffer):
        # warm the row cache, write through the lazy buffer, read again:
        # a stale cache would resurrect the old salary
        query = "SELECT salary FROM Employees WHERE eid >= 0"
        first = source.sql(query)
        buffer.enqueue(
            Update("Employees", {"salary": 54321},
                   Between("salary", 0, 200_000))
        )
        buffer.flush()
        after = source.sql(query)
        assert all(r["salary"] == 54321 for r in after)
        assert first != after


class TestRandomShareUpdates:
    """Regression: updating a randomly-shared column must re-share it
    with ONE polynomial per (row, column).

    The old per-provider loop called share_value once per provider,
    handing each provider a share of a *different* fresh polynomial —
    unreconstructable garbage.  Only non-searchable columns are
    affected (order-preserving shares are deterministic), which is why
    salary-only tests never caught it.
    """

    @staticmethod
    def _managers_source():
        from repro.workloads.employees import managers_table

        source = DataSource(ProviderCluster(4, 2), seed=3)
        employees = employees_table(40, seed=3)
        managers = managers_table(employees, fraction=0.2, seed=3)
        source.outsource_table(managers)
        eid = sorted(row["eid"] for row in managers.rows())[0]
        return source, eid

    def test_eager_update_of_random_column(self):
        source, eid = self._managers_source()
        source.sql(
            f"UPDATE Managers SET password = 'SECRETPW' WHERE eid = {eid}"
        )
        rows = source.sql(f"SELECT * FROM Managers WHERE eid = {eid}")
        assert rows[0]["password"] == "SECRETPW"

    def test_lazy_update_of_random_column(self):
        source, eid = self._managers_source()
        buffer = LazyUpdateBuffer(source, auto_flush_threshold=100)
        buffer.enqueue(
            Update("Managers", {"password": "SWORDFISH"},
                   Comparison("eid", ComparisonOp.EQ, eid))
        )
        buffer.flush()
        rows = source.sql(f"SELECT * FROM Managers WHERE eid = {eid}")
        assert rows[0]["password"] == "SWORDFISH"
