"""A full application scenario exercising the public API end to end:
outsource → query (all classes) → join → update (eager + lazy) → delete →
verify, mirroring the README quickstart and the paper's Sec. III workload.
"""


from repro import (
    DataSource,
    JoinSelect,
    ProviderCluster,
    Select,
    Update,
)
from repro.client.updates import LazyUpdateBuffer
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, rows_equal_unordered
from repro.sqlengine.expression import Between, Comparison, ComparisonOp
from repro.sqlengine.table import Table
from repro.trust.auditing import AuditRegistry
from repro.workloads.employees import employees_table, managers_table


def test_full_lifecycle():
    # ------------------------------------------------ setup: two engines --
    employees = employees_table(150, seed=91)
    managers = managers_table(employees, fraction=0.15, seed=91)
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    oracle = PlaintextExecutor(catalog)

    cluster = ProviderCluster(5, 3)
    audit = AuditRegistry(5)
    source = DataSource(cluster, seed=91, audit=audit)
    source.outsource_table(employees)
    source.outsource_table(managers)

    def check(sql_text):
        from repro import parse_sql

        query = parse_sql(sql_text)
        mine = source.execute(query)
        truth = oracle.execute(query)
        if isinstance(truth, list):
            assert rows_equal_unordered(mine, truth), sql_text
        else:
            assert mine == truth, sql_text

    # ------------------------------------------------------- read phase --
    check("SELECT name, salary FROM Employees WHERE salary BETWEEN 30000 AND 70000")
    check("SELECT * FROM Employees WHERE department = 'ENG'")
    check("SELECT COUNT(*) FROM Employees WHERE name LIKE 'A%'")
    check("SELECT SUM(salary) FROM Employees WHERE department = 'SALES'")
    check("SELECT MEDIAN(salary) FROM Employees")

    # ---------------------------------------------------------- join ------
    join = JoinSelect(
        "Employees", "Managers", "eid", "eid",
        columns=("Employees.name", "Employees.salary"),
    )
    assert rows_equal_unordered(source.join(join), oracle.execute(join))

    # -------------------------------------------------------- writes ------
    check("UPDATE Employees SET salary = 90000 WHERE salary > 85000")
    check("DELETE FROM Employees WHERE department = 'LEGAL'")
    check("INSERT INTO Employees (eid, name, lastname, department, salary) "
          "VALUES (999001, 'ZANE', 'DOE', 'ENG', 45000)")
    check("SELECT COUNT(*) FROM Employees")
    check("SELECT AVG(salary) FROM Employees WHERE department = 'ENG'")

    # -------------------------------------------------- lazy update phase --
    buffer = LazyUpdateBuffer(source)
    buffer.enqueue(
        Update("Employees", {"department": "RND"},
               Between("salary", 40000, 50000))
    )
    preview = buffer.read_through(
        Select("Employees", where=Comparison("department", ComparisonOp.EQ, "RND"))
    )
    buffer.flush()
    oracle.execute(
        Update("Employees", {"department": "RND"},
               Between("salary", 40000, 50000))
    )
    check("SELECT COUNT(*) FROM Employees WHERE department = 'RND'")
    committed = source.sql("SELECT * FROM Employees WHERE department = 'RND'")
    assert len(preview) == len(committed)

    # ----------------------------------------------------- trust phase ----
    verified = source.select_verified(
        Select("Employees", where=Between("salary", 0, 10**6))
    )
    assert len(verified) == source.sql("SELECT COUNT(*) FROM Employees")
    assert all(audit.audit_roots(cluster, "Employees").values())

    # ------------------------------------------------- accounting sanity --
    assert cluster.network.total_messages > 0
    assert cluster.network.total_bytes > 0
    assert source.cost.count("poly_eval") > 0
    assert source.cost.count("interpolate") > 0
