"""Long chaos matrix: every (n−k)-crash pattern × sharded/unsharded.

Exhaustive where the tier-1 fault matrix samples: all C(5, 2) = 10 ways
to crash n−k = 2 of 5 providers, against both an unsharded deployment
and a 2-group range-sharded one (same pattern injected in *both*
groups), across the standard query shapes — results must stay exactly
equal to the plaintext oracle in every cell.

Too slow for every push: CI runs it from the weekly ``chaos-long`` job
(schedule / workflow_dispatch), gated on ``REPRO_CHAOS_LONG=1``.
"""

import itertools
import os

import pytest

from repro.client.datasource import DataSource
from repro.core.secrets import generate_client_secrets
from repro.providers.cluster import ProviderCluster
from repro.providers.failures import Fault, FailureMode
from repro.service.sharding import ShardRouter
from repro.sqlengine.executor import rows_equal_unordered
from repro.workloads.employees import employees_table, managers_table

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS_LONG") != "1",
    reason="long chaos matrix; set REPRO_CHAOS_LONG=1 (CI chaos-long job)",
)

N, K, ROWS, SEED = 5, 3, 30, 17
CRASH_PATTERNS = list(itertools.combinations(range(N), N - K))

QUERY_SHAPES = {
    "point": "SELECT * FROM Employees WHERE eid = {eid}",
    "ordered": (
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 200000 AND 800000 ORDER BY eid"
    ),
    "sum": "SELECT SUM(salary) FROM Employees WHERE salary >= 300000",
    "avg": "SELECT AVG(salary) FROM Employees GROUP BY department",
    "join": (
        "SELECT * FROM Employees JOIN Managers "
        "ON Employees.eid = Managers.eid"
    ),
}


def tables():
    employees = employees_table(ROWS, seed=SEED)
    return employees, managers_table(employees, 0.25, seed=SEED)


def queries():
    employees, _ = tables()
    eid = sorted(row["eid"] for row in employees.rows())[ROWS // 2]
    return {
        label: sql.format(eid=eid) for label, sql in QUERY_SHAPES.items()
    }


def build_unsharded():
    source = DataSource(ProviderCluster(N, K), seed=SEED)
    employees, managers = tables()
    source.outsource_table(employees)
    source.outsource_table(managers)
    return source


def build_sharded():
    secrets = generate_client_secrets(N, SEED)
    sources = [
        DataSource(
            ProviderCluster(N, K, name_prefix=f"g{index}/"),
            seed=SEED + 101 * index,
            secrets=secrets,
        )
        for index in range(2)
    ]
    router = ShardRouter(sources, mode="range")
    employees, managers = tables()
    router.outsource_table(employees, partition_column="eid")
    router.outsource_table(managers, partition_column="eid")
    return router


ORACLE = {}


def oracle_results():
    if not ORACLE:
        source = build_unsharded()
        ORACLE.update(
            {label: source.sql(sql) for label, sql in queries().items()}
        )
    return ORACLE


def assert_same(label, want, got):
    if isinstance(want, list) and label != "ordered":
        assert rows_equal_unordered(want, got), label
    else:
        assert got == want, label


@pytest.mark.parametrize("crashed", CRASH_PATTERNS)
def test_unsharded_rides_out_every_crash_pattern(crashed):
    source = build_unsharded()
    for index in crashed:
        source.cluster.inject_fault(index, Fault(FailureMode.CRASH))
    for label, sql in queries().items():
        assert_same(label, oracle_results()[label], source.sql(sql))


@pytest.mark.parametrize("crashed", CRASH_PATTERNS)
def test_sharded_rides_out_every_crash_pattern(crashed):
    with build_sharded() as router:
        for group in router.groups:
            for index in crashed:
                group.cluster.inject_fault(index, Fault(FailureMode.CRASH))
        for label, sql in queries().items():
            assert_same(label, oracle_results()[label], router.sql(sql))
