"""Tier-1 wiring for ``benchmarks/bench_resilience.py --check``.

The resilience benchmark's smoke mode asserts exact query results under
every (n−k)-crash pattern (including mid-round crashes), under any
⌊(n−k)/2⌋ tamperers with verified reads, and under combined
crash+tamper at the full failure budget; that the fail-fast baseline
*does* fail (so the resilient path is doing real work); and that byte
accounting is deterministic and equal across dispatch modes.  Running
it here keeps the bench honest in CI without paying full benchmark
cost.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_resilience.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_resilience", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_passes():
    """run_check() raises AssertionError on any resilience regression."""
    _load_bench().run_check()


def test_cli_check_flag():
    """The --check CLI entry point exits 0 and reports success."""
    result = subprocess.run(
        [sys.executable, str(BENCH_PATH), "--check"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "exact results under every (n-k)-crash pattern" in result.stdout
