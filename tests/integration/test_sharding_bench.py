"""Tier-1 wiring for ``benchmarks/bench_sharding.py --check``.

The sharding benchmark's smoke mode asserts, on a small range-sharded
deployment, that point and aggregate results equal the plaintext oracle
at 1/2/4 groups, that telemetry byte accounting equals the groups'
network counters exactly, that 4-group modelled throughput is at least
2.5x single-group, and that an online split plus a hash rebalance both
preserve every row.  Running it here keeps the bench honest in CI
without paying full benchmark cost.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_sharding.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_sharding", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_passes():
    """run_check() raises AssertionError on any sharding regression."""
    _load_bench().run_check()


def test_cli_check_flag():
    """The --check CLI entry point exits 0 and reports success."""
    result = subprocess.run(
        [sys.executable, str(BENCH_PATH), "--check"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "speedup >= 2.5x" in result.stdout
