"""Randomized oracle equivalence: the share cluster, all three encryption
baselines, and the plaintext executor must agree on every generated query.

This is the repo's strongest integration net: ~hundreds of random query
shapes over a shared workload, executed on four engines.
"""

import pytest

from repro import DataSource, JoinSelect, ProviderCluster, Select
from repro.baselines.encryption import (
    BucketizationClient,
    OPEClient,
    RowEncryptionClient,
)
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, rows_equal_unordered
from repro.sqlengine.expression import (
    And,
    Between,
    Comparison,
    ComparisonOp,
    Or,
    StartsWith,
)
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.sqlengine.table import Table
from repro.workloads.employees import employees_table, managers_table

N_RANDOM_QUERIES = 60


def random_predicate(rng: DeterministicRNG):
    """Draw a random predicate over the Employees schema."""
    kind = rng.randint(0, 7)
    if kind == 7:
        from repro.sqlengine.expression import Not

        return Not(random_predicate(rng))
    if kind == 0:
        return Comparison("salary", ComparisonOp.EQ, rng.randint(0, 120_000))
    if kind == 1:
        lo = rng.randint(0, 100_000)
        return Between("salary", lo, lo + rng.randint(0, 50_000))
    if kind == 2:
        op = rng.choice(
            [ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE]
        )
        return Comparison("salary", op, rng.randint(0, 120_000))
    if kind == 3:
        return Comparison(
            "department", ComparisonOp.EQ, rng.choice(["ENG", "HR", "NOPE"])
        )
    if kind == 4:
        return StartsWith("name", rng.choice(["A", "J", "ZZ"]))
    if kind == 5:
        return And((random_predicate(rng), random_predicate(rng)))
    return Or((random_predicate(rng), random_predicate(rng)))


def random_query(rng: DeterministicRNG):
    predicate = random_predicate(rng)
    roll = rng.random()
    if roll < 0.3:
        func = rng.choice(list(AggregateFunc))
        column = None if func is AggregateFunc.COUNT and rng.random() < 0.5 else "salary"
        return Select("Employees", where=predicate, aggregate=Aggregate(func, column))
    if roll < 0.45:
        func = rng.choice([AggregateFunc.COUNT, AggregateFunc.SUM,
                           AggregateFunc.MIN, AggregateFunc.MEDIAN])
        column = None if func is AggregateFunc.COUNT else "salary"
        group = rng.choice(["department", "name"])
        return Select(
            "Employees", where=predicate,
            aggregate=Aggregate(func, column), group_by=group,
        )
    if roll < 0.65:
        return Select(
            "Employees",
            where=predicate,
            order_by=rng.choice(["salary", "eid", "name"]),
            descending=rng.random() < 0.5,
            limit=rng.choice([None, 1, 5, 50]),
        )
    columns = () if rng.random() < 0.5 else ("name", "salary")
    return Select("Employees", columns=columns, where=predicate)


@pytest.fixture(scope="module")
def systems():
    employees = employees_table(100, seed=77)
    managers = managers_table(employees, fraction=0.2, seed=77)
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    oracle = PlaintextExecutor(catalog)

    share_source = DataSource(ProviderCluster(5, 3), seed=77)
    share_source.outsource_table(employees)
    share_source.outsource_table(managers)

    clients = {}
    for name, cls in [
        ("row-encryption", RowEncryptionClient),
        ("bucketization", BucketizationClient),
        ("ope", OPEClient),
    ]:
        client = cls()
        client.outsource_table(employees)
        client.outsource_table(managers)
        clients[name] = client
    return oracle, share_source, clients


@pytest.mark.parametrize("query_seed", range(N_RANDOM_QUERIES))
def test_random_query_equivalence(systems, query_seed):
    oracle, share_source, clients = systems
    rng = DeterministicRNG(query_seed, "queries")
    query = random_query(rng)
    truth = oracle.execute(query)
    mine = share_source.select(query)
    _assert_same(mine, truth, "secret-sharing", query)
    for name, client in clients.items():
        _assert_same(client.select(query), truth, name, query)


def test_join_equivalence(systems):
    oracle, share_source, clients = systems
    query = JoinSelect(
        "Employees", "Managers", "eid", "eid",
        columns=("Employees.name", "Employees.salary"),
    )
    truth = oracle.execute(query)
    assert rows_equal_unordered(share_source.join(query), truth)
    for name, client in clients.items():
        assert rows_equal_unordered(client.join(query), truth), name


def _assert_same(result, truth, system, query):
    if isinstance(truth, list):
        assert rows_equal_unordered(result, truth), (system, query)
    elif isinstance(truth, float):
        assert result == pytest.approx(truth), (system, query)
    else:
        assert result == truth, (system, query)
