"""Integration tests for availability under provider failures (EXP-T7)."""

import itertools

import pytest

from repro import DataSource, ProviderCluster
from repro.errors import QuorumError
from repro.providers.failures import Fault, FailureMode
from repro.workloads.employees import employees_table


def build(n, k, rows=30, seed=81):
    cluster = ProviderCluster(n, k)
    source = DataSource(cluster, seed=seed)
    source.outsource_table(employees_table(rows, seed=seed))
    return source


QUERY = "SELECT COUNT(*) FROM Employees WHERE salary BETWEEN 0 AND 1000000"


class TestAvailabilityBoundary:
    @pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (7, 4)])
    def test_survives_exactly_n_minus_k_crashes(self, n, k):
        source = build(n, k)
        for i in range(n - k):
            source.cluster.inject_fault(i, Fault(FailureMode.CRASH))
        assert source.sql(QUERY) == 30

    @pytest.mark.parametrize("n,k", [(3, 2), (5, 3), (7, 4)])
    def test_fails_at_n_minus_k_plus_one_crashes(self, n, k):
        source = build(n, k)
        for i in range(n - k + 1):
            source.cluster.inject_fault(i, Fault(FailureMode.CRASH))
        with pytest.raises(QuorumError):
            source.sql(QUERY)

    def test_any_subset_of_allowed_size_survives(self):
        source = build(5, 3)
        for crashed in itertools.combinations(range(5), 2):
            source.cluster.clear_faults()
            for i in crashed:
                source.cluster.inject_fault(i, Fault(FailureMode.CRASH))
            assert source.sql(QUERY) == 30, crashed


class TestRecovery:
    def test_provider_returns_after_crash(self):
        source = build(4, 2)
        source.cluster.inject_fault(0, Fault(FailureMode.CRASH))
        assert source.sql(QUERY) == 30
        source.cluster.clear_faults()
        assert source.sql(QUERY) == 30

    def test_writes_during_crash_leave_crashed_provider_stale(self):
        """The documented write-availability model: a provider that missed
        a write serves stale data, which the quorum masks as long as k
        up-to-date providers respond."""
        source = build(4, 2)
        source.cluster.inject_fault(3, Fault(FailureMode.CRASH))
        source.sql("UPDATE Employees SET salary = 123 WHERE salary >= 0")
        source.cluster.clear_faults()
        # quorum picks the first k live providers (0, 1) — both fresh
        assert source.sql("SELECT COUNT(*) FROM Employees WHERE salary = 123") == 30
        # provider 3's stale storage is observable directly
        fresh = source.cluster.providers[0].store.table("Employees")
        stale = source.cluster.providers[3].store.table("Employees")
        fresh_salaries = [r["salary"] for r in fresh.rows.values()]
        stale_salaries = [r["salary"] for r in stale.rows.values()]
        assert fresh_salaries != stale_salaries


class TestMixedFaults:
    def test_crash_plus_tamper_outside_quorum_harmless(self):
        source = build(5, 2, seed=82)
        source.cluster.inject_fault(3, Fault(FailureMode.CRASH))
        from repro.sim.rng import DeterministicRNG

        source.cluster.inject_fault(
            4, Fault(FailureMode.TAMPER, rng=DeterministicRNG(1, "t"))
        )
        # quorum = providers 0,1 — both honest
        assert source.sql(QUERY) == 30
