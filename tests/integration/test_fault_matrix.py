"""Parametrised fault matrix: {CRASH, TAMPER, OMIT} × query shapes.

The acceptance grid for the resilient read path: with n=5, k=3 every
query shape must return *exact* plaintext results with k−1 = 2 injected
failures — crashes handled by quorum failover, tampering and omission by
verified reads — without the caller ever touching :class:`QuorumError`.
All faults are seeded; runs are deterministic.
"""

import pytest

from repro import DataSource, ProviderCluster
from repro.providers.failures import Fault, FailureMode
from repro.sqlengine.executor import rows_equal_unordered
from repro.workloads.employees import employees_table, managers_table

N, K, ROWS, SEED = 5, 3, 30, 17
N_FAULTY = K - 1  # = n - k for this shape: the full crash budget

QUERY_SHAPES = {
    "point": "SELECT * FROM Employees WHERE eid = {eid}",
    "range": (
        "SELECT name, salary FROM Employees "
        "WHERE salary BETWEEN 20000 AND 70000 ORDER BY eid"
    ),
    "sum": "SELECT SUM(salary) FROM Employees WHERE salary >= 30000",
    "avg": "SELECT AVG(salary) FROM Employees WHERE department = 'Sales'",
    "join": (
        "SELECT * FROM Employees JOIN Managers "
        "ON Employees.eid = Managers.eid"
    ),
}


def build_source(verified):
    source = DataSource(
        ProviderCluster(N, K), seed=SEED, verified_reads=verified
    )
    employees = employees_table(ROWS, seed=SEED)
    source.outsource_table(employees)
    source.outsource_table(managers_table(employees, 0.25, seed=SEED))
    return source, employees


def queries(employees):
    eid = sorted(row["eid"] for row in employees.rows())[ROWS // 2]
    return {
        label: sql.format(eid=eid) for label, sql in QUERY_SHAPES.items()
    }


def faults_for(mode, indexes):
    if mode is FailureMode.CRASH:
        return [(i, Fault(FailureMode.CRASH)) for i in indexes]
    # tamper/omit rates stay at 1.0: the harshest deterministic setting
    return [(i, Fault(mode, seed=SEED + i)) for i in indexes]


ORACLE = {}


def oracle_results():
    if not ORACLE:
        source, employees = build_source(verified=False)
        ORACLE.update(
            {label: source.sql(sql) for label, sql in queries(employees).items()}
        )
    return ORACLE


def assert_same(label, expected, actual):
    if isinstance(expected, list):
        assert rows_equal_unordered(expected, actual), label
    else:
        assert expected == actual, label


class TestFaultMatrix:
    @pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
    @pytest.mark.parametrize(
        "mode", [FailureMode.CRASH, FailureMode.TAMPER, FailureMode.OMIT]
    )
    def test_exact_results_under_faults(self, mode, shape):
        # CRASH is masked by transparent failover alone; TAMPER/OMIT
        # need the verified-read cross-check to blame and re-issue
        verified = mode is not FailureMode.CRASH
        source, employees = build_source(verified=verified)
        for index, fault in faults_for(mode, range(N_FAULTY)):
            source.cluster.inject_fault(index, fault)
        sql = queries(employees)[shape]
        assert_same(shape, oracle_results()[shape], source.sql(sql))

    @pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
    def test_mid_round_crash(self, shape):
        """One crash lands *between* quorum selection and response
        collection (a delayed CRASH budgeted to die mid-query)."""
        source, employees = build_source(verified=False)
        source.cluster.inject_fault(0, Fault(FailureMode.CRASH))
        source.cluster.inject_fault(
            1, Fault(FailureMode.CRASH, after_requests=1)
        )
        sql = queries(employees)[shape]
        assert_same(shape, oracle_results()[shape], source.sql(sql))

    @pytest.mark.parametrize("crashed", [(0, 1), (1, 3), (2, 4), (3, 4)])
    def test_crash_pairs_with_verified_reads_too(self, crashed):
        """Verified mode also rides out the full crash budget."""
        source, employees = build_source(verified=True)
        for index in crashed:
            source.cluster.inject_fault(index, Fault(FailureMode.CRASH))
        sql = queries(employees)["range"]
        assert_same(crashed, oracle_results()["range"], source.sql(sql))
