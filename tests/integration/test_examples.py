"""Smoke tests: every shipped example must run cleanly end to end.

These guard the documentation — an example that crashes is worse than no
example.  Each runs in a subprocess exactly as a user would invoke it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["outsourced 1000 rows", "total payroll"]),
    ("payroll_analytics.py", ["all answers matched the plaintext oracle"]),
    ("private_public_mashup.py", ["leaked nothing", "LEAKED"]),
    ("fault_tolerance.py", ["UNAVAILABLE", "tamper", "chain verification"]),
    ("pir_demo.py", ["trivial download", "data privacy holds"]),
    ("ecommerce_analytics.py", ["revenue by action type", "adjusted"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in expected:
        assert marker in completed.stdout, (script, marker)
    assert "Traceback" not in completed.stderr
