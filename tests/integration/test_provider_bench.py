"""Tier-1 wiring for ``benchmarks/bench_provider.py --check``.

The provider storage benchmark's smoke mode runs the full read-RPC
result-equality battery against a faithful copy of the pre-overhaul
naive row-store engine, asserts cost-counter parity between bulk- and
incrementally-loaded providers, and gates the columnar engine's two
headline speedups (≥5× bulk load, ≥2× filtered SUM at 50 000 rows).
Running it here keeps the bench honest in CI without paying the full
sweep's cost.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_provider.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_provider", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_passes():
    """run_check() raises AssertionError on any storage-engine regression."""
    _load_bench().run_check()


def test_cli_check_flag():
    """The --check CLI entry point exits 0 and reports success."""
    result = subprocess.run(
        [sys.executable, str(BENCH_PATH), "--check"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "columnar == naive on all read RPCs" in result.stdout
