"""Tier-1 wiring for ``benchmarks/bench_hotpath.py --check``.

The hot-path benchmark ships a smoke mode that asserts the batched
kernels are bit-identical to the naive reference paths at tiny sizes.
Loading the benchmark module from its file path (benchmarks/ is not a
package) and running that mode here keeps the bench honest in CI without
paying full benchmark cost.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_hotpath.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_hotpath", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_passes():
    """run_check() raises AssertionError on any kernel/naive divergence."""
    _load_bench().run_check()


def test_cli_check_flag():
    """The --check CLI entry point exits 0 and reports success."""
    result = subprocess.run(
        [sys.executable, str(BENCH_PATH), "--check"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "bit-identical" in result.stdout
