"""Tier-1 wiring for ``benchmarks/bench_service.py --check``.

The service benchmark's smoke mode asserts, at 16 concurrent point
queries, that batched results match the sequential run and the plaintext
oracle, that telemetry byte accounting equals the network counters
exactly, and that batched modelled-latency throughput is at least 2x
sequential.  Running it here keeps the bench honest in CI without
paying full benchmark cost.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_service.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_service", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_mode_passes():
    """run_check() raises AssertionError on any service-layer regression."""
    _load_bench().run_check()


def test_cli_check_flag():
    """The --check CLI entry point exits 0 and reports success."""
    result = subprocess.run(
        [sys.executable, str(BENCH_PATH), "--check"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "speedup >= 2x" in result.stdout
