"""End-to-end reproduction of the paper's Figure 1 scenario (EXP-F1).

Beyond the unit-level share-column check, this drives the *full stack*
with the figure's parameters: the 5-salary Employees table outsourced to
n=3 providers with threshold k=2, then queried with the paper's Sec. III
example queries.
"""

import pytest

from repro import DataSource, ProviderCluster
from repro.workloads.employees import paper_salary_table


@pytest.fixture
def figure1_source():
    cluster = ProviderCluster(n_providers=3, threshold=2)
    source = DataSource(cluster, seed=1)
    source.outsource_table(paper_salary_table())
    return source


class TestFigure1EndToEnd:
    def test_all_salaries_recoverable(self, figure1_source):
        rows = figure1_source.sql("SELECT salary FROM Employees")
        assert sorted(r["salary"] for r in rows) == [10, 20, 40, 60, 80]

    def test_paper_range_query(self, figure1_source):
        """Sec. III: 'salary is between 10K and 40K' (scaled units)."""
        rows = figure1_source.sql(
            "SELECT salary FROM Employees WHERE salary BETWEEN 10 AND 40"
        )
        assert sorted(r["salary"] for r in rows) == [10, 20, 40]

    def test_paper_exact_match(self, figure1_source):
        """Sec. V-A: 'retrieve employees whose salary is 20'."""
        rows = figure1_source.sql("SELECT * FROM Employees WHERE salary = 20")
        assert len(rows) == 1 and rows[0]["salary"] == 20

    def test_paper_sum_over_range(self, figure1_source):
        """Sec. III: 'sum of the salaries between 10K and 40K'."""
        assert figure1_source.sql(
            "SELECT SUM(salary) FROM Employees WHERE salary BETWEEN 10 AND 40"
        ) == 70

    def test_aggregates(self, figure1_source):
        assert figure1_source.sql("SELECT MIN(salary) FROM Employees") == 10
        assert figure1_source.sql("SELECT MAX(salary) FROM Employees") == 80
        assert figure1_source.sql("SELECT MEDIAN(salary) FROM Employees") == 40
        assert figure1_source.sql("SELECT AVG(salary) FROM Employees") == 42.0

    def test_any_single_provider_crash_tolerated(self, figure1_source):
        from repro.providers.failures import Fault, FailureMode

        for crashed in range(3):
            figure1_source.cluster.clear_faults()
            figure1_source.cluster.inject_fault(crashed, Fault(FailureMode.CRASH))
            rows = figure1_source.sql("SELECT salary FROM Employees")
            assert sorted(r["salary"] for r in rows) == [10, 20, 40, 60, 80]

    def test_no_provider_stores_plaintext_salaries(self, figure1_source):
        plaintext = {10, 20, 40, 60, 80}
        for provider in figure1_source.cluster.providers:
            table = provider.store.table("Employees")
            stored = {
                row["salary"] for row in table.rows.values()
            }
            assert not stored & plaintext
