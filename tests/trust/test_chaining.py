"""Unit tests for completeness chaining."""

import pytest

from repro import DataSource, ProviderCluster
from repro.errors import CompletenessError, ConfigurationError, SchemaError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.schema import TableSchema, integer_column
from repro.sqlengine.table import Table
from repro.trust.chaining import CompletenessGuard
from repro.workloads.employees import employees_table

KEY = b"\x05" * 32


@pytest.fixture
def guarded():
    cluster = ProviderCluster(4, 2)
    source = DataSource(cluster, seed=41)
    guard = CompletenessGuard(source, KEY)
    guard.outsource_protected(employees_table(60, seed=41), "salary")
    return source, guard


class TestSetup:
    def test_key_validation(self, cluster):
        source = DataSource(cluster, seed=1)
        with pytest.raises(ConfigurationError):
            CompletenessGuard(source, b"x")

    def test_aux_columns_added(self, guarded):
        source, _ = guarded
        names = source.sharing("Employees").schema.column_names
        assert "chain_salary_mac" in names
        assert "chain_salary_prev_enc" in names

    def test_aux_columns_not_searchable(self, guarded):
        source, _ = guarded
        sharing = source.sharing("Employees")
        assert not sharing.is_searchable("chain_salary_mac")

    def test_non_searchable_column_rejected(self, cluster):
        source = DataSource(cluster, seed=1)
        guard = CompletenessGuard(source, KEY)
        schema = TableSchema(
            "T",
            (
                integer_column("k", 0, 10),
                integer_column("h", 0, 10, searchable=False),
            ),
        )
        with pytest.raises(SchemaError):
            guard.protected_schema(schema, "h")

    def test_nullable_values_rejected(self, cluster):
        source = DataSource(cluster, seed=1)
        guard = CompletenessGuard(source, KEY)
        schema = TableSchema(
            "T", (integer_column("k", 0, 10, nullable=True),)
        )
        table = Table(schema, [{"k": None}])
        with pytest.raises(SchemaError):
            guard.outsource_protected(table, "k")


class TestHonestVerification:
    def test_range_verifies_and_strips_aux(self, guarded):
        _, guard = guarded
        rows = guard.verified_range("Employees", "salary", 30000, 70000)
        assert rows
        assert all("chain_salary_mac" not in row for row in rows)
        assert all(30000 <= row["salary"] <= 70000 for row in rows)

    def test_rows_sorted_by_value(self, guarded):
        _, guard = guarded
        rows = guard.verified_range("Employees", "salary", 0, 10**6)
        salaries = [row["salary"] for row in rows]
        assert salaries == sorted(salaries)

    def test_full_domain_range(self, guarded):
        _, guard = guarded
        rows = guard.verified_range("Employees", "salary", 0, 10**6)
        assert len(rows) == 60

    def test_column_projection(self, guarded):
        _, guard = guarded
        rows = guard.verified_range(
            "Employees", "salary", 0, 10**6, columns=["name"]
        )
        assert all(set(row) == {"name"} for row in rows)

    def test_empty_result_unprovable(self, guarded):
        _, guard = guarded
        with pytest.raises(CompletenessError):
            guard.verified_range("Employees", "salary", 999998, 999999)


class TestOmissionDetection:
    def omit(self, source, indexes, rate, seed):
        for i in indexes:
            source.cluster.inject_fault(
                i, Fault(FailureMode.OMIT, rate=rate,
                         rng=DeterministicRNG(seed, f"o{i}"))
            )

    def test_quorum_wide_omission_detected(self, guarded):
        source, guard = guarded
        # both quorum providers drop the same logical rows only by chance;
        # any inconsistency → under-quorum drop (invisible) but the chain
        # still catches the gap
        self.omit(source, [0, 1], rate=0.4, seed=5)
        with pytest.raises(CompletenessError):
            guard.verified_range("Employees", "salary", 0, 10**6)

    def test_unprotected_query_misses_omission(self, guarded):
        """Contrast: the plain select silently returns fewer rows."""
        from repro.sqlengine.expression import Between
        from repro.sqlengine.query import Select

        source, _ = guarded
        self.omit(source, [0, 1], rate=0.4, seed=6)
        rows = source.select(Select("Employees", where=Between("salary", 0, 10**6)))
        assert len(rows) < 60  # silent data loss, no exception


class TestStaleness:
    def test_invalidate_blocks_verification(self, guarded):
        _, guard = guarded
        guard.invalidate("Employees", "salary")
        with pytest.raises(CompletenessError):
            guard.verified_range("Employees", "salary", 0, 10**6)

    def test_unprotected_table_rejected(self, guarded):
        _, guard = guarded
        with pytest.raises(CompletenessError):
            guard.verified_range("Employees", "eid", 0, 10**6)
