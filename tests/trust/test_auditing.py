"""End-to-end tests for the audit registry wired into a data source."""

import pytest

from repro import DataSource, ProviderCluster, Select
from repro.errors import IntegrityError, QueryError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import Between
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.trust.auditing import AuditRegistry
from repro.workloads.employees import employees_table


@pytest.fixture
def audited():
    cluster = ProviderCluster(4, 2)
    registry = AuditRegistry(4)
    source = DataSource(cluster, seed=31, audit=registry)
    source.outsource_table(employees_table(50, seed=31))
    return source, registry


class TestHonestPath:
    def test_verified_select(self, audited):
        source, registry = audited
        rows = source.select_verified(
            Select("Employees", where=Between("salary", 30000, 70000))
        )
        plain = source.select(
            Select("Employees", where=Between("salary", 30000, 70000))
        )
        assert len(rows) == len(plain)
        assert registry.rows_verified > 0

    def test_root_audit_all_pass(self, audited):
        source, registry = audited
        results = registry.audit_roots(source.cluster, "Employees")
        assert all(results.values()) and len(results) == 4

    def test_spot_check_passes(self, audited):
        source, registry = audited
        registry.spot_check(source.cluster, "Employees", 0, 2)

    def test_audit_survives_writes(self, audited):
        source, registry = audited
        source.sql("UPDATE Employees SET salary = 12345 WHERE salary > 90000")
        source.sql("DELETE FROM Employees WHERE department = 'HR'")
        source.sql(
            "INSERT INTO Employees (eid, name, lastname, department, salary) "
            "VALUES (999999, 'NEW', 'ROW', 'ENG', 1)"
        )
        assert all(registry.audit_roots(source.cluster, "Employees").values())
        source.select_verified(Select("Employees", where=Between("salary", 0, 10**6)))


class TestMisbehaviourDetection:
    def test_response_tampering_detected(self, audited):
        source, registry = audited
        source.cluster.inject_fault(
            1, Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(1, "t"))
        )
        with pytest.raises(IntegrityError):
            source.select_verified(Select("Employees", where=Between("salary", 0, 10**6)))
        assert registry.tampering_detected > 0

    def test_unverified_read_misses_tampering(self, audited):
        """The contrast: without verification, a tampered random-share
        column reconstructs to garbage or raises only sometimes; the OP
        columns raise on interpolation mismatch, but nothing names the
        culprit.  The verified path always detects and names it."""
        source, _ = audited
        source.cluster.inject_fault(
            1, Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(2, "t"))
        )
        # quorum [0,1,2] includes the tamperer; plain select may raise
        # ReconstructionError (detectable corruption) — it never silently
        # verifies per-provider attribution
        from repro.errors import ReconstructionError

        with pytest.raises((ReconstructionError, IntegrityError)):
            source.select(Select("Employees", where=Between("salary", 0, 10**6)))

    def test_root_audit_flags_storage_divergence(self, audited):
        source, registry = audited
        source.cluster.inject_fault(
            3, Fault(FailureMode.TAMPER, rate=1.0, rng=DeterministicRNG(3, "t"))
        )
        results = registry.audit_roots(source.cluster, "Employees")
        assert results[3] is False
        assert results[0] and results[1] and results[2]

    def test_omission_detected_strictly(self, audited):
        source, registry = audited
        source.cluster.inject_fault(
            0, Fault(FailureMode.OMIT, rate=0.5, rng=DeterministicRNG(4, "o"))
        )
        with pytest.raises(IntegrityError):
            source.select_verified(Select("Employees", where=Between("salary", 0, 10**6)))


class TestGuards:
    def test_verified_select_requires_registry(self, cluster):
        source = DataSource(cluster, seed=1)
        source.outsource_table(employees_table(5, seed=1))
        with pytest.raises(QueryError):
            source.select_verified(Select("Employees"))

    def test_verified_aggregates_rejected(self, audited):
        source, _ = audited
        with pytest.raises(QueryError):
            source.select_verified(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )

    def test_registry_validation(self):
        with pytest.raises(IntegrityError):
            AuditRegistry(0)

    def test_duplicate_table_rejected(self):
        registry = AuditRegistry(2)
        registry.on_create_table("T")
        with pytest.raises(IntegrityError):
            registry.on_create_table("T")
