"""Unit tests for canary-based execution assurance."""

import pytest

from repro import DataSource, ProviderCluster, Select
from repro.errors import IntegrityError, QueryError
from repro.providers.failures import Fault, FailureMode
from repro.sim.rng import DeterministicRNG
from repro.sqlengine.expression import Between, Comparison, ComparisonOp
from repro.sqlengine.query import Aggregate, AggregateFunc
from repro.trust.assurance import (
    AssuranceWrapper,
    detection_probability,
)
from repro.workloads.employees import employees_table


def canary_factory(rng, i):
    return {
        "eid": 900_000 + i,
        "name": rng.choice(["JOHN", "MARY", "OMAR"]),
        "lastname": "CANARY",
        "department": "ENG",
        "salary": rng.randint(10_000, 90_000),
    }


@pytest.fixture
def wrapped():
    cluster = ProviderCluster(3, 2)
    source = DataSource(cluster, seed=51)
    wrapper = AssuranceWrapper(source, DeterministicRNG(51, "a"))
    real, canaries = wrapper.outsource_with_canaries(
        employees_table(40, seed=51), canary_factory, 12
    )
    assert (real, canaries) == (40, 12)
    return source, wrapper


class TestDetectionProbability:
    def test_closed_form(self):
        assert detection_probability(0.0, 10) == 0.0
        assert detection_probability(1.0, 1) == 1.0
        assert detection_probability(0.5, 2) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_probability(1.5, 1)
        with pytest.raises(ValueError):
            detection_probability(0.5, -1)


class TestHonestPath:
    def test_canaries_filtered_from_results(self, wrapped):
        _, wrapper = wrapped
        rows = wrapper.select(Select("Employees", where=Between("salary", 0, 10**6)))
        assert len(rows) == 40
        assert all(row["lastname"] != "CANARY" for row in rows)

    def test_projection_applied(self, wrapped):
        _, wrapper = wrapped
        rows = wrapper.select(
            Select("Employees", columns=("name",),
                   where=Between("salary", 20_000, 80_000))
        )
        assert all(set(row) == {"name"} for row in rows)

    def test_check_counter(self, wrapped):
        _, wrapper = wrapped
        wrapper.select(Select("Employees", where=Between("salary", 0, 10**6)))
        assert wrapper.checks_performed == 1
        assert wrapper.omissions_detected == 0

    def test_canaries_recorded(self, wrapped):
        _, wrapper = wrapped
        assert len(wrapper.canaries_for("Employees")) == 12


class TestOmissionDetection:
    def test_heavy_omission_detected(self, wrapped):
        source, wrapper = wrapped
        for i in (0, 1):
            source.cluster.inject_fault(
                i, Fault(FailureMode.OMIT, rate=0.6,
                         rng=DeterministicRNG(7, f"o{i}"))
            )
        with pytest.raises(IntegrityError):
            wrapper.select(Select("Employees", where=Between("salary", 0, 10**6)))
        assert wrapper.omissions_detected == 1

    def test_expected_rate_formula(self, wrapped):
        _, wrapper = wrapped
        rate = wrapper.expected_detection_rate(
            "Employees", Between("salary", 0, 10**6), omission_rate=0.5
        )
        assert rate == pytest.approx(1 - 0.5**12)

    def test_rate_zero_when_no_canary_in_range(self, wrapped):
        _, wrapper = wrapped
        rate = wrapper.expected_detection_rate(
            "Employees",
            Comparison("salary", ComparisonOp.GT, 999_998),
            omission_rate=0.9,
        )
        assert rate == 0.0


class TestGuards:
    def test_aggregates_rejected(self, wrapped):
        _, wrapper = wrapped
        with pytest.raises(QueryError):
            wrapper.select(
                Select("Employees", aggregate=Aggregate(AggregateFunc.COUNT, None))
            )

    def test_zero_canaries_rejected(self, cluster):
        source = DataSource(cluster, seed=1)
        wrapper = AssuranceWrapper(source)
        with pytest.raises(QueryError):
            wrapper.outsource_with_canaries(
                employees_table(5, seed=1), canary_factory, 0
            )
