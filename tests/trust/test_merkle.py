"""Unit tests for Merkle commitments and the share auditor."""

import pytest

from repro.errors import IntegrityError
from repro.trust.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    ShareAuditor,
    column_hash,
    leaf_hash,
    leaf_hash_from_column_hashes,
    tree_for_rows,
    verify_proof,
)


class TestHashes:
    def test_column_hash_distinguishes_null(self):
        assert column_hash("c", None) != column_hash("c", 0)

    def test_column_hash_binds_column_name(self):
        assert column_hash("a", 5) != column_hash("b", 5)

    def test_leaf_hash_consistency(self):
        values = {"a": 1, "b": None}
        direct = leaf_hash("T", 3, values)
        via_columns = leaf_hash_from_column_hashes(
            "T", 3, {c: column_hash(c, v) for c, v in values.items()}
        )
        assert direct == via_columns

    def test_leaf_hash_binds_table_and_row(self):
        values = {"a": 1}
        assert leaf_hash("T", 1, values) != leaf_hash("U", 1, values)
        assert leaf_hash("T", 1, values) != leaf_hash("T", 2, values)


class TestMerkleTree:
    def leaves(self, n):
        return [leaf_hash("T", i, {"a": i}) for i in range(n)]

    def test_empty_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT

    def test_single_leaf(self):
        leaves = self.leaves(1)
        assert MerkleTree(leaves).root == leaves[0]

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13])
    def test_proofs_verify(self, n):
        leaves = self.leaves(n)
        tree = MerkleTree(leaves)
        for i in range(n):
            assert verify_proof(tree.root, leaves[i], tree.proof(i))

    def test_wrong_leaf_fails(self):
        leaves = self.leaves(8)
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, leaves[1], tree.proof(0))

    def test_tampered_path_fails(self):
        leaves = self.leaves(8)
        tree = MerkleTree(leaves)
        path = tree.proof(3)
        bad = [(s, bytes(32)) for s, _ in path]
        assert not verify_proof(tree.root, leaves[3], bad)

    def test_proof_bounds(self):
        tree = MerkleTree(self.leaves(4))
        with pytest.raises(IntegrityError):
            tree.proof(4)

    def test_bad_side_marker(self):
        with pytest.raises(IntegrityError):
            verify_proof(bytes(32), bytes(32), [("X", bytes(32))])

    def test_root_depends_on_order(self):
        leaves = self.leaves(4)
        assert MerkleTree(leaves).root != MerkleTree(list(reversed(leaves))).root

    def test_tree_for_rows_canonical_order(self):
        rows = {3: {"a": 3}, 1: {"a": 1}}
        tree = tree_for_rows("T", rows)
        expected = MerkleTree(
            [leaf_hash("T", 1, {"a": 1}), leaf_hash("T", 3, {"a": 3})]
        )
        assert tree.root == expected.root


class TestShareAuditor:
    def make(self):
        auditor = ShareAuditor("T", 0)
        auditor.record_insert(0, {"a": 10, "b": 20})
        auditor.record_insert(1, {"a": 11, "b": 21})
        return auditor

    def test_verify_row_passes(self):
        auditor = self.make()
        auditor.verify_row(0, {"a": 10, "b": 20})
        auditor.verify_row(0, {"a": 10})  # projection subset OK

    def test_tampered_share_detected(self):
        auditor = self.make()
        with pytest.raises(IntegrityError):
            auditor.verify_row(0, {"a": 999})

    def test_unknown_row_detected(self):
        auditor = self.make()
        with pytest.raises(IntegrityError):
            auditor.verify_row(99, {"a": 1})

    def test_unknown_column_detected(self):
        auditor = self.make()
        with pytest.raises(IntegrityError):
            auditor.verify_row(0, {"zzz": 1})

    def test_update_changes_expectation(self):
        auditor = self.make()
        auditor.record_update(0, {"a": 999})
        auditor.verify_row(0, {"a": 999, "b": 20})
        with pytest.raises(IntegrityError):
            auditor.verify_row(0, {"a": 10})

    def test_update_unknown_row(self):
        with pytest.raises(IntegrityError):
            self.make().record_update(9, {"a": 1})

    def test_delete(self):
        auditor = self.make()
        auditor.record_delete(0)
        assert auditor.row_count == 1
        with pytest.raises(IntegrityError):
            auditor.record_delete(0)

    def test_duplicate_insert(self):
        with pytest.raises(IntegrityError):
            self.make().record_insert(0, {"a": 1})

    def test_root_matches_provider_tree(self):
        """Client auditor and provider storage derive the same root."""
        auditor = self.make()
        provider_rows = {0: {"a": 10, "b": 20}, 1: {"a": 11, "b": 21}}
        assert auditor.expected_root() == tree_for_rows("T", provider_rows).root

    def test_verify_root(self):
        auditor = self.make()
        auditor.verify_root(auditor.expected_root())
        with pytest.raises(IntegrityError):
            auditor.verify_root(bytes(32))

    def test_spot_proof(self):
        auditor = self.make()
        provider_rows = {0: {"a": 10, "b": 20}, 1: {"a": 11, "b": 21}}
        tree = tree_for_rows("T", provider_rows)
        auditor.verify_spot_proof(1, provider_rows[1], tree.proof(1))
        with pytest.raises(IntegrityError):
            auditor.verify_spot_proof(1, {"a": 99, "b": 21}, tree.proof(1))

    def test_leaf_index(self):
        auditor = self.make()
        assert auditor.leaf_index(1) == 1
        with pytest.raises(IntegrityError):
            auditor.leaf_index(42)
