"""Tests for symmetric PIR (oblivious-transfer-based)."""

import pytest

from repro.errors import QueryError
from repro.pir.spir import SPIRClient, SPIRServer
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def records():
    rng = DeterministicRNG(11, "spir-db")
    return [rng.bytes(40) for _ in range(32)]


@pytest.fixture
def client(records):
    server = SPIRServer(records, seed=12)
    return SPIRClient(server, rng=DeterministicRNG(13, "c"))


class TestRetrieval:
    def test_every_index_retrievable(self, client, records):
        for index in (0, 7, 15, 31):
            assert client.retrieve(index) == records[index]

    def test_bounds(self, client):
        with pytest.raises(QueryError):
            client.retrieve(32)

    def test_empty_db_rejected(self):
        with pytest.raises(QueryError):
            SPIRServer([], seed=1)

    def test_repeated_queries_work(self, client, records):
        assert client.retrieve(3) == records[3]
        assert client.retrieve(3) == records[3]
        assert client.retrieve(4) == records[4]


class TestQueryPrivacy:
    def test_blinded_point_independent_of_index(self, records):
        """The server's view: one uniform group element.  Different target
        indexes with the same blinding stream are indistinguishable in
        distribution; here we check the transcript literally differs from
        the unblinded h(i) for every i (no direct index leak)."""
        from repro.baselines.intersection import _hash_to_group

        server = SPIRServer(records, seed=14)
        client = SPIRClient(server, rng=DeterministicRNG(15, "p"))
        p = server.modulus
        direct_points = {_hash_to_group(i, p) for i in range(len(records))}
        sent = []
        original = SPIRServer.raise_blinded

        def spy(self, blinded):
            sent.append(blinded)
            return original(self, blinded)

        SPIRServer.raise_blinded = spy
        try:
            client.retrieve(5)
        finally:
            SPIRServer.raise_blinded = original
        assert sent[0] not in direct_points

    def test_server_never_sees_index(self, client, records):
        """API-level check: no server method takes the index."""
        import inspect

        for name, member in inspect.getmembers(SPIRServer):
            if name.startswith("_") or not callable(member):
                continue
            parameters = inspect.signature(member).parameters
            assert "index" not in parameters, name


class TestDataPrivacy:
    def test_wrong_record_undecryptable(self, client):
        """The symmetric part: the key for index i opens only record i."""
        failures = 0
        for other in (1, 9, 20):
            ok, _ = client.attempt_decrypt_other(5, other)
            if not ok:
                failures += 1
        assert failures == 3

    def test_keys_differ_per_index(self, records):
        from repro.pir.spir import _key_from_point
        from repro.baselines.intersection import _hash_to_group

        server = SPIRServer(records, seed=16)
        p = server.modulus
        keys = {
            _key_from_point(pow(_hash_to_group(i, p), server.secret_exponent, p))
            for i in range(10)
        }
        assert len(keys) == 10


class TestCosts:
    def test_communication_is_trivial_like(self, records):
        """SPIR here pays O(N) ciphertext transfer — the honest price of
        single-server data privacy; the benchmark narrative depends on it."""
        server = SPIRServer(records, seed=17)
        client = SPIRClient(server, rng=DeterministicRNG(18, "c"))
        client.retrieve(0)
        database_bytes = sum(len(r) for r in records)
        assert client.network.total_bytes > database_bytes

    def test_modexp_counts(self, records):
        server = SPIRServer(records, seed=19)
        client = SPIRClient(server, rng=DeterministicRNG(20, "c"))
        client.retrieve(0)
        # server: N encryption-key derivations + 1 blinded raise
        assert server.cost.count("modexp") == len(records) + 1
        assert client.cost.count("modexp") == 2
