"""Unit tests for the PIR protocols."""

import pytest

from repro.errors import QueryError
from repro.pir.multiserver import (
    CubePIRClient,
    CubePIRServer,
    build_cube_cluster,
    cube_side,
    index_to_coordinates,
)
from repro.pir.trivial import TrivialPIRClient, TrivialPIRServer
from repro.pir.xor2 import XorPIRServer, Xor2ServerPIRClient, xor_blocks
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def records():
    rng = DeterministicRNG(5, "pir-test")
    return [rng.bytes(24) for _ in range(64)]


class TestXorHelper:
    def test_xor_blocks(self):
        assert xor_blocks(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_identity(self):
        assert xor_blocks(b"ab", b"\x00\x00") == b"ab"

    def test_length_mismatch(self):
        with pytest.raises(QueryError):
            xor_blocks(b"a", b"ab")


class TestTrivial:
    def test_retrieval(self, records):
        client = TrivialPIRClient(TrivialPIRServer(records))
        for i in (0, 31, 63):
            assert client.retrieve(i) == records[i]

    def test_bounds(self, records):
        client = TrivialPIRClient(TrivialPIRServer(records))
        with pytest.raises(QueryError):
            client.retrieve(64)

    def test_downloads_everything(self, records):
        client = TrivialPIRClient(TrivialPIRServer(records))
        client.retrieve(0)
        total = sum(len(r) for r in records)
        assert client.network.total_bytes > total

    def test_empty_db_rejected(self):
        with pytest.raises(QueryError):
            TrivialPIRServer([])


class TestXor2:
    def make(self, records, seed=9):
        return Xor2ServerPIRClient(
            XorPIRServer(records, "A"),
            XorPIRServer(records, "B"),
            rng=DeterministicRNG(seed, "x"),
        )

    def test_every_index_retrievable(self, records):
        client = self.make(records)
        for i in range(0, 64, 7):
            assert client.retrieve(i) == records[i]

    def test_single_server_view_independent_of_index(self, records):
        """Privacy: the mask sent to server A is the same random subset
        regardless of the target (only B's differs by one flip)."""
        client_a = self.make(records, seed=11)
        client_b = self.make(records, seed=11)
        masks = []
        original_answer = XorPIRServer.answer

        def spy(self, mask):
            masks.append(list(mask))
            return original_answer(self, mask)

        XorPIRServer.answer = spy
        try:
            client_a.retrieve(3)
            client_b.retrieve(57)
        finally:
            XorPIRServer.answer = original_answer
        assert masks[0] == masks[2]  # server A saw identical distributions

    def test_unequal_lengths_rejected(self, records):
        with pytest.raises(QueryError):
            XorPIRServer([b"a", b"bb"], "A")

    def test_replica_size_mismatch(self, records):
        with pytest.raises(QueryError):
            Xor2ServerPIRClient(
                XorPIRServer(records, "A"),
                XorPIRServer(records[:10], "B"),
            )

    def test_index_bounds(self, records):
        with pytest.raises(QueryError):
            self.make(records).retrieve(64)


class TestCube:
    def test_cube_side(self):
        assert cube_side(64, 3) == 4
        assert cube_side(65, 3) == 5
        assert cube_side(1, 2) == 1

    def test_index_coordinates_roundtrip(self):
        side, dims = 5, 3
        for index in range(side**dims):
            coords = index_to_coordinates(index, side, dims)
            rebuilt = sum(c * side**i for i, c in enumerate(coords))
            assert rebuilt == index

    @pytest.mark.parametrize("dimensions", [1, 2, 3])
    def test_every_index_retrievable(self, records, dimensions):
        client = build_cube_cluster(
            records, dimensions, rng=DeterministicRNG(13, "c")
        )
        for i in range(0, 64, 9):
            assert client.retrieve(i) == records[i]
        assert client.retrieve(63) == records[63]

    def test_wrong_server_count_rejected(self, records):
        servers = [CubePIRServer(records, 2, f"S{i}") for i in range(3)]
        with pytest.raises(QueryError):
            CubePIRClient(servers)

    def test_sublinear_communication(self):
        """Cube query bytes grow like N^(1/d), trivial like N."""
        rng = DeterministicRNG(17, "grow")
        small = [rng.bytes(16) for _ in range(64)]
        big = [rng.bytes(16) for _ in range(4096)]

        def bytes_for(records):
            client = build_cube_cluster(
                records, 3, rng=DeterministicRNG(1, "q")
            )
            client.retrieve(0)
            return client.network.total_bytes

        small_bytes = bytes_for(small)
        big_bytes = bytes_for(big)
        # 64x data → cube side x4 → far less than 64x traffic
        assert big_bytes < 10 * small_bytes

    def test_non_replicas_rejected(self, records):
        servers = [CubePIRServer(records, 2, f"S{i}") for i in range(3)]
        servers.append(CubePIRServer(records[:10], 2, "S3"))
        with pytest.raises(QueryError):
            CubePIRClient(servers)
