"""Unit tests for PIR communication/computation models."""

import pytest

from repro.pir.analysis import (
    PIRTimeModel,
    communication_table,
    cube_communication_bytes,
    kserver_communication_bytes,
    trivial_communication_bytes,
)


class TestCommunicationModels:
    def test_trivial_linear(self):
        assert trivial_communication_bytes(1000, 64) == 64_000
        assert trivial_communication_bytes(2000, 64) == 128_000

    def test_trivial_validation(self):
        with pytest.raises(ValueError):
            trivial_communication_bytes(0, 64)

    def test_kserver_sublinear(self):
        small = kserver_communication_bytes(2**10, 64, 2)
        large = kserver_communication_bytes(2**20, 64, 2)
        # N grew 1024x; N^(1/3) grows ~10x
        assert large < 20 * small

    def test_more_servers_less_communication_at_scale(self):
        n = 2**30
        assert kserver_communication_bytes(n, 64, 4) < kserver_communication_bytes(n, 64, 2)

    def test_kserver_validation(self):
        with pytest.raises(ValueError):
            kserver_communication_bytes(100, 64, 1)

    def test_kserver_beats_trivial_at_scale(self):
        """The paper's Sec. II-B point: replication buys sublinearity."""
        n = 2**20
        assert kserver_communication_bytes(n, 64, 2) < trivial_communication_bytes(n, 64)

    def test_cube_model_positive_and_sublinear(self):
        small = cube_communication_bytes(2**10, 64, 3)
        large = cube_communication_bytes(2**20, 64, 3)
        assert 0 < small < large
        assert large < 100 * small  # ≪ the 1024x data growth

    def test_table_shape(self):
        rows = communication_table([1024, 4096], record_bytes=32, k_values=[2, 3])
        assert len(rows) == 2
        assert set(rows[0]) == {"N", "trivial", "k=2", "k=3"}


class TestTimeModel:
    model = PIRTimeModel()

    def test_cpir_slower_than_trivial(self):
        """Sion–Carbunar (ref [16]): cPIR is orders of magnitude slower."""
        slowdown = self.model.slowdown(10_000, 64)
        assert slowdown > 100

    def test_trivial_bandwidth_bound(self):
        fast = self.model.trivial_seconds(1000, 64)
        slow = self.model.trivial_seconds(100_000, 64)
        assert slow > 50 * fast

    def test_cpir_linear_in_bits(self):
        assert self.model.cpir_seconds(2000, 64) == pytest.approx(
            2 * self.model.cpir_seconds(1000, 64)
        )
