"""Structural validation of .github/workflows/ci.yml.

actionlint isn't vendorable here, so this is the executable equivalent:
the workflow must parse as YAML, reference only jobs that exist, pin
action versions, and run the same tier-1 command ROADMAP.md documents —
so a CI regression is caught by the suite CI itself runs.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"

EXPECTED_JOBS = {
    "lint",
    "tests",
    "bench-smoke",
    "chaos-smoke",
    "chaos-long",
    "editable-install",
    "coverage",
}


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


@pytest.fixture(scope="module")
def jobs(workflow):
    return workflow["jobs"]


class TestWorkflowShape:
    def test_parses_and_has_required_top_level_keys(self, workflow):
        assert workflow["name"] == "CI"
        # YAML 1.1 reads the bare `on:` key as boolean True
        triggers = workflow.get("on", workflow.get(True))
        assert "push" in triggers and "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_long_matrix_triggers_present(self, workflow):
        """chaos-long needs a weekly schedule and a manual trigger."""
        triggers = workflow.get("on", workflow.get(True))
        assert "workflow_dispatch" in triggers
        crons = [entry["cron"] for entry in triggers["schedule"]]
        assert crons and all(len(c.split()) == 5 for c in crons)

    def test_setup_python_steps_cache_pip(self, jobs):
        """Every job restores the pip cache keyed on pyproject.toml."""
        for name, job in jobs.items():
            setup = [
                s for s in job["steps"]
                if str(s.get("uses", "")).startswith("actions/setup-python")
            ]
            assert setup, f"job {name} never sets up python"
            for step in setup:
                assert step["with"].get("cache") == "pip", name
                assert (
                    step["with"].get("cache-dependency-path")
                    == "pyproject.toml"
                ), name

    def test_expected_jobs_present(self, jobs):
        assert set(jobs) == EXPECTED_JOBS

    def test_every_job_runs_on_pinned_ubuntu(self, jobs):
        for name, job in jobs.items():
            assert job["runs-on"] == "ubuntu-latest", name
            assert job["steps"], f"job {name} has no steps"

    def test_needs_reference_existing_jobs(self, jobs):
        for name, job in jobs.items():
            for dependency in job.get("needs", []):
                assert dependency in jobs, (
                    f"job {name} needs unknown job {dependency}"
                )

    def test_actions_are_version_pinned(self, jobs):
        for name, job in jobs.items():
            for step in job["steps"]:
                uses = step.get("uses")
                if uses is not None:
                    assert "@" in uses, (
                        f"unpinned action {uses!r} in job {name}"
                    )

    def test_steps_are_well_formed(self, jobs):
        for name, job in jobs.items():
            for step in job["steps"]:
                assert "run" in step or "uses" in step, (
                    f"step in {name} does neither run nor use: {step}"
                )
                if "run" in step:
                    assert step["run"].strip(), f"empty run step in {name}"


class TestTier1Gate:
    def test_matrix_covers_supported_pythons(self, jobs):
        matrix = jobs["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.9", "3.11", "3.13"]
        assert jobs["tests"]["strategy"]["fail-fast"] is False

    def test_matrix_runs_with_and_without_numpy(self, jobs):
        """The scalar oracle is a supported runtime, not a dev fallback:
        every python version runs the suite both with the numpy backend
        and with numpy absent entirely."""
        matrix = jobs["tests"]["strategy"]["matrix"]
        assert matrix["kernels"] == ["numpy", "no-numpy"]
        steps = jobs["tests"]["steps"]
        base_install = [
            s for s in steps
            if "run" in s and s["run"].startswith("python -m pip install")
            and "numpy" not in s["run"]
        ]
        assert base_install, "base dependency install must not pull numpy"
        numpy_install = [
            s for s in steps if "run" in s and "pip install numpy" in s["run"]
        ]
        assert numpy_install, "no step installs numpy for the vector leg"
        assert numpy_install[0]["if"] == "matrix.kernels == 'numpy'"

    def test_tests_job_runs_tier1_command_with_pythonpath(self, jobs):
        steps = jobs["tests"]["steps"]
        run_steps = [s for s in steps if "run" in s]
        tier1 = [s for s in run_steps if "pytest -x -q" in s["run"]]
        assert tier1, "tests job never runs the tier-1 suite"
        assert tier1[0]["env"]["PYTHONPATH"] == "src"

    def test_bench_smoke_runs_check_mode(self, jobs):
        runs = " ".join(
            s["run"] for s in jobs["bench-smoke"]["steps"] if "run" in s
        )
        assert "bench_hotpath.py --check" in runs
        assert "bench_service.py --check" in runs
        assert "bench_provider.py --check" in runs
        assert "bench_resilience.py --check" in runs
        assert "bench_sharding.py --check" in runs
        assert "bench_txn.py --check" in runs
        assert "bench_updates.py --check" in runs
        assert "bench_overload.py --check" in runs
        assert "repro.cli trace" in runs
        # the hot-path check gates the >=10x vectorized speedup, which
        # requires numpy in the bench-smoke environment
        assert "pip install numpy" in runs

    def test_provider_gates_run_on_both_backends(self, jobs):
        """The provider engine check must pass on the vectorized backend
        (speedup gates) AND with the backend forced to the scalar oracle
        (equivalence + relaxed gates) in the same numpy-equipped env."""
        steps = jobs["bench-smoke"]["steps"]
        checks = [
            s for s in steps
            if "run" in s and "bench_provider.py --check" in s["run"]
        ]
        assert len(checks) == 2
        forced = [
            s for s in checks
            if s.get("env", {}).get("REPRO_KERNEL_BACKEND") == "scalar"
        ]
        assert len(forced) == 1

    def test_bench_smoke_uploads_regenerated_reports(self, jobs):
        steps = jobs["bench-smoke"]["steps"]
        runs = " ".join(s["run"] for s in steps if "run" in s)
        # the sharding and txn benches regenerate their JSON before upload
        run_lines = "\n".join(s["run"] for s in steps if "run" in s) + "\n"
        assert "python benchmarks/bench_sharding.py\n" in run_lines
        assert "python benchmarks/bench_txn.py\n" in run_lines
        assert "python benchmarks/bench_provider.py\n" in run_lines
        assert "python benchmarks/bench_overload.py\n" in run_lines
        uploads = [
            s for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        ]
        assert uploads and uploads[0]["with"]["path"] == "BENCH_*.json"
        assert "bench_sharding.py --check" in runs

    def test_chaos_smoke_runs_fault_matrix_and_gates(self, jobs):
        runs = " ".join(
            s["run"] for s in jobs["chaos-smoke"]["steps"] if "run" in s
        )
        assert "tests/integration/test_fault_matrix.py" in runs
        assert "tests/sharding/test_shard_chaos.py" in runs
        assert "tests/txn/test_recovery.py" in runs
        assert "bench_resilience.py --check" in runs
        assert "repro.cli repair" in runs
        assert "repro.cli shard-split" in runs

    def test_chaos_smoke_runs_overload_drills(self, jobs):
        """The overload gates run in chaos-smoke too (the --check mode
        includes the combined 4x flood + (n-k) crash + breakers drill),
        plus an open-loop flood through the CLI with breakers armed."""
        runs = [
            s["run"] for s in jobs["chaos-smoke"]["steps"] if "run" in s
        ]
        assert any("bench_overload.py --check" in r for r in runs)
        floods = [r for r in runs if "serve-sim --open-loop" in r]
        assert floods and all("--breakers" in r for r in floods)

    def test_chaos_smoke_runs_crash_replay_drills(self, jobs):
        """The WAL kill-at-every-phase drill runs through the CLI both
        unsharded and sharded — the command exits nonzero on divergence."""
        runs = [
            s["run"] for s in jobs["chaos-smoke"]["steps"] if "run" in s
        ]
        drills = [r for r in runs if "repro.cli txn-replay" in r]
        assert len(drills) == 2
        assert any("--sharded" in r for r in drills)

    def test_chaos_long_is_gated_and_exhaustive(self, jobs):
        job = jobs["chaos-long"]
        condition = job["if"]
        assert "schedule" in condition
        assert "workflow_dispatch" in condition
        matrix_steps = [
            s for s in job["steps"]
            if "run" in s and "test_chaos_long.py" in s["run"]
        ]
        assert matrix_steps, "chaos-long never runs the long matrix"
        assert matrix_steps[0]["env"]["REPRO_CHAOS_LONG"] == "1"
        assert matrix_steps[0]["env"]["PYTHONPATH"] == "src"

    def test_editable_install_exercises_package_metadata(self, jobs):
        runs = " ".join(
            s["run"] for s in jobs["editable-install"]["steps"] if "run" in s
        )
        assert "pip install -e .[dev]" in runs
        assert "pytest" in runs

    def test_coverage_job_gates_and_uploads(self, jobs):
        steps = jobs["coverage"]["steps"]
        runs = " ".join(s["run"] for s in steps if "run" in s)
        assert "--cov=repro" in runs
        uploads = [
            s for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        ]
        assert uploads and uploads[0]["with"]["path"] == "coverage.xml"


class TestRatchetConfigured:
    def test_pyproject_records_coverage_ratchet(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.coverage.report]" in text
        assert "fail_under" in text

    def test_pyproject_configures_ruff(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.ruff]" in text
