"""Unit tests for the simulated network and byte accounting."""

from decimal import Decimal

import pytest

from repro.sim.network import (
    LatencyModel,
    NetworkStats,
    SimulatedNetwork,
    measure_bytes,
)


class TestMeasureBytes:
    def test_primitives(self):
        assert measure_bytes(None) == 1
        assert measure_bytes(True) == 1
        assert measure_bytes(0) == 3  # 2 header + 1 magnitude byte
        assert measure_bytes(255) == 3
        assert measure_bytes(256) == 4
        assert measure_bytes(1.5) == 9

    def test_big_integers_cost_more(self):
        small = measure_bytes(100)
        huge = measure_bytes(2**200)
        assert huge > small + 20

    def test_negative_magnitude(self):
        assert measure_bytes(-256) == measure_bytes(256)

    def test_strings_and_bytes(self):
        assert measure_bytes("abc") == 5
        assert measure_bytes(b"abc") == 5
        assert measure_bytes("é") == 2 + 2  # UTF-8 two bytes

    def test_decimal(self):
        assert measure_bytes(Decimal("1.25")) == 2 + 4

    def test_containers(self):
        assert measure_bytes([1, 2]) == 4 + 3 + 3
        assert measure_bytes((1,)) == 4 + 3
        assert measure_bytes({"a": 1}) == 4 + 3 + 3

    def test_nested(self):
        payload = {"rows": [[1, {"k": 2}]]}
        assert measure_bytes(payload) > 0

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            measure_bytes(object())


class TestLatencyModel:
    def test_transfer_time(self):
        model = LatencyModel(rtt_seconds=0.1, bandwidth_bits_per_second=1000)
        # 125 bytes = 1000 bits → 1 s + half-RTT
        assert model.transfer_seconds(125) == pytest.approx(1.05)


class TestNetworkStats:
    def test_per_link_breakdown(self):
        stats = NetworkStats()
        stats.record("c", "s1", 100)
        stats.record("c", "s2", 50)
        stats.record("s1", "c", 30)
        assert stats.bytes_between("c", "s1") == 100
        assert stats.bytes_to("c") == 30
        assert stats.bytes_from("c") == 150
        assert stats.messages_sent == 3
        assert stats.snapshot() == {"messages": 3, "bytes": 180}


class TestSimulatedNetwork:
    def test_send_accounts(self):
        network = SimulatedNetwork()
        size = network.send("a", "b", {"x": [1, 2, 3]})
        assert size == measure_bytes({"x": [1, 2, 3]})
        assert network.total_bytes == size
        assert network.total_messages == 1
        assert network.modelled_seconds > 0

    def test_reset(self):
        network = SimulatedNetwork()
        network.send("a", "b", 42)
        network.reset()
        assert network.total_bytes == 0
        assert network.modelled_seconds == 0.0
