"""Tests for the benchmark measurement/reporting infrastructure."""


import pytest

from repro import DataSource, ProviderCluster, parse_sql
from repro.baselines.encryption import OPEClient
from repro.bench.metrics import measure_encrypted_query, measure_share_query
from repro.bench.reporting import format_table, print_experiment, record_experiment
from repro.workloads.employees import employees_table


@pytest.fixture(scope="module")
def source():
    source = DataSource(ProviderCluster(3, 2), seed=91)
    source.outsource_table(employees_table(30, seed=91))
    return source


class TestMeasurement:
    def test_share_query_measurement(self, source):
        query = parse_sql(
            "SELECT * FROM Employees WHERE salary BETWEEN 20000 AND 80000"
        )
        measurement = measure_share_query(source, query)
        assert measurement.system == "secret-sharing"
        assert measurement.messages > 0
        assert measurement.bytes_transferred > 0
        assert measurement.result_rows is not None
        assert measurement.modelled_seconds() > 0
        assert measurement.client_seconds() >= 0
        assert measurement.server_seconds() >= 0

    def test_scalar_query_has_no_row_count(self, source):
        measurement = measure_share_query(
            source, parse_sql("SELECT COUNT(*) FROM Employees")
        )
        assert measurement.result_rows is None
        assert measurement.as_row()["rows"] == "-"

    def test_encrypted_query_measurement(self):
        client = OPEClient()
        client.outsource_table(employees_table(20, seed=92))
        measurement = measure_encrypted_query(
            client, parse_sql("SELECT * FROM Employees WHERE salary > 0"), "ope"
        )
        assert measurement.system == "ope"
        assert measurement.bytes_transferred > 0

    def test_as_row_keys(self, source):
        row = measure_share_query(
            source, parse_sql("SELECT * FROM Employees")
        ).as_row()
        assert set(row) == {
            "system", "rows", "msgs", "KB", "client ops", "server ops",
            "model sec",
        }


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # aligned widths

    def test_format_table_union_of_keys(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.1235" in text

    def test_record_experiment_writes_file(self, tmp_path, capsys):
        rows = [{"metric": "v", "value": 1}]
        rendered = record_experiment(
            "EXP-TEST", "a test table", rows, output_dir=str(tmp_path)
        )
        assert "metric" in rendered
        path = tmp_path / "EXP-TEST.txt"
        assert path.exists()
        assert "a test table" in path.read_text()
        captured = capsys.readouterr()
        assert "EXP-TEST" in captured.out

    def test_print_experiment(self, capsys):
        print_experiment("X", "title", [{"a": 1}])
        assert "== X: title ==" in capsys.readouterr().out
