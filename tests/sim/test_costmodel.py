"""Unit tests for the explicit cost model."""

import pytest

from repro.sim.costmodel import DEFAULT_RATES, CostModel, CostRecorder


class TestCostModel:
    def test_default_rates_present(self):
        for op in ("modexp", "cipher_block", "poly_eval", "interpolate", "hash",
                   "compare", "xor"):
            assert op in DEFAULT_RATES

    def test_seconds_for(self):
        model = CostModel()
        assert model.seconds_for("modexp", 1000) == pytest.approx(1.0)

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            CostModel().seconds_for("teleport", 1)

    def test_modexp_dominates_poly_eval(self):
        """The calibration that drives the paper's headline contrast."""
        model = CostModel()
        assert model.seconds_for("modexp", 1) > 100 * model.seconds_for("poly_eval", 1)


class TestCostRecorder:
    def test_record_and_count(self):
        recorder = CostRecorder("t")
        recorder.record("hash", 3)
        recorder.record("hash")
        assert recorder.count("hash") == 4
        assert recorder.count("modexp") == 0
        assert recorder.total_operations() == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostRecorder("t").record("hash", -1)

    def test_modelled_seconds(self):
        recorder = CostRecorder("t")
        recorder.record("modexp", 500)
        assert recorder.modelled_seconds() == pytest.approx(0.5)

    def test_merge(self):
        a = CostRecorder("a")
        b = CostRecorder("b")
        a.record("hash", 1)
        b.record("hash", 2)
        b.record("compare", 5)
        a.merge(b)
        assert a.count("hash") == 3 and a.count("compare") == 5

    def test_reset_and_snapshot(self):
        recorder = CostRecorder("t")
        recorder.record("xor", 7)
        assert recorder.snapshot() == {"xor": 7}
        recorder.reset()
        assert recorder.snapshot() == {}
