"""Unit tests for deterministic randomness."""

import pytest

from repro.sim.rng import DeterministicRNG, zipf_sampler


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(5)
        b = DeterministicRNG(5)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(5)
        b = DeterministicRNG(6)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(-1)

    def test_substreams_order_independent(self):
        root_a = DeterministicRNG(5)
        root_a.randint(0, 100)  # consume from the root
        child_a = root_a.substream("x")
        child_b = DeterministicRNG(5).substream("x")
        assert child_a.randint(0, 10**9) == child_b.randint(0, 10**9)

    def test_substream_names_independent(self):
        root = DeterministicRNG(5)
        x = root.substream("x").randint(0, 10**9)
        y = root.substream("y").randint(0, 10**9)
        assert x != y


class TestDraws:
    rng = DeterministicRNG(7)

    def test_ranges_respected(self):
        for _ in range(100):
            assert 5 <= self.rng.randint(5, 9) <= 9
            assert 0 <= self.rng.randrange(10) < 10
            assert 0.0 <= self.rng.random() < 1.0

    def test_choice_and_sample(self):
        items = ["a", "b", "c"]
        assert self.rng.choice(items) in items
        sample = self.rng.sample(items, 2)
        assert len(set(sample)) == 2

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            self.rng.choice([])

    def test_shuffled_is_permutation(self):
        items = list(range(20))
        shuffled = self.rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_bytes_length(self):
        assert len(self.rng.bytes(16)) == 16

    def test_field_elements(self):
        for _ in range(50):
            assert 0 <= self.rng.field_element(97) < 97
            assert 1 <= self.rng.nonzero_field_element(97) < 97

    def test_distinct_field_elements(self):
        values = self.rng.distinct_field_elements(10, 97)
        assert len(set(values)) == 10
        assert all(1 <= v < 97 for v in values)

    def test_distinct_overflow_rejected(self):
        with pytest.raises(ValueError):
            self.rng.distinct_field_elements(97, 97)


class TestZipf:
    def test_rank_bounds(self):
        rng = DeterministicRNG(9)
        draw = zipf_sampler(rng, 100, 1.0)
        ranks = [draw() for _ in range(1000)]
        assert all(1 <= r <= 100 for r in ranks)

    def test_skew_concentrates_mass(self):
        rng = DeterministicRNG(9)
        draw = zipf_sampler(rng, 100, 1.5)
        ranks = [draw() for _ in range(2000)]
        top_share = sum(1 for r in ranks if r <= 10) / len(ranks)
        assert top_share > 0.5

    def test_zero_skew_uniformish(self):
        rng = DeterministicRNG(9)
        draw = zipf_sampler(rng, 10, 0.0)
        ranks = [draw() for _ in range(5000)]
        counts = [ranks.count(r) for r in range(1, 11)]
        assert max(counts) < 2 * min(counts)

    def test_validation(self):
        rng = DeterministicRNG(9)
        with pytest.raises(ValueError):
            zipf_sampler(rng, 0)
        with pytest.raises(ValueError):
            zipf_sampler(rng, 10, -1.0)
