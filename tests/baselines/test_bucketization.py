"""Unit tests for bucketized encrypted indexes."""

import pytest

from repro.baselines.bucketization import BucketIndex
from repro.core.order_preserving import IntegerDomain
from repro.errors import ConfigurationError, DomainError
from repro.sim.costmodel import CostRecorder

KEY = b"\x03" * 32


@pytest.fixture
def index():
    return BucketIndex(KEY, IntegerDomain(0, 999), n_buckets=10)


class TestConstruction:
    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketIndex(b"x", IntegerDomain(0, 9), 2)

    def test_zero_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            BucketIndex(KEY, IntegerDomain(0, 9), 0)

    def test_buckets_capped_at_domain_size(self):
        index = BucketIndex(KEY, IntegerDomain(0, 4), n_buckets=100)
        assert index.n_buckets == 5


class TestBucketing:
    def test_equi_width(self, index):
        assert index.bucket_of(0) == 0
        assert index.bucket_of(99) == 0
        assert index.bucket_of(100) == 1
        assert index.bucket_of(999) == 9

    def test_out_of_domain(self, index):
        with pytest.raises(DomainError):
            index.bucket_of(1000)

    def test_labels_opaque_and_stable(self, index):
        a = index.bucket_label(3)
        assert a == index.bucket_label(3)
        assert a != index.bucket_label(4)
        assert a != 3  # not the ordinal itself

    def test_labels_unordered(self, index):
        """Keyed labels must not reveal bucket order (unlike OPE)."""
        labels = [index.bucket_label(i) for i in range(10)]
        assert labels != sorted(labels)

    def test_label_of_value(self, index):
        assert index.label_of_value(150) == index.bucket_label(1)

    def test_bad_bucket_rejected(self, index):
        with pytest.raises(DomainError):
            index.bucket_label(10)


class TestRangeLabels:
    def test_covering_buckets(self, index):
        labels = index.labels_for_range(150, 349)
        assert labels == [index.bucket_label(b) for b in (1, 2, 3)]

    def test_range_clamps(self, index):
        labels = index.labels_for_range(-100, 5000)
        assert len(labels) == 10

    def test_empty_range_rejected(self, index):
        with pytest.raises(DomainError):
            index.labels_for_range(5, 4)

    def test_cost_recorded(self, index):
        cost = CostRecorder("t")
        index.labels_for_range(0, 999, cost=cost)
        assert cost.count("hash") == 10


class TestSupersetFactor:
    def test_formula(self, index):
        # 10% selectivity, 10 buckets → factor 1 + 1/(0.1*10) = 2.0
        assert index.expected_superset_factor(0.1) == pytest.approx(2.0)

    def test_more_buckets_tighter(self):
        few = BucketIndex(KEY, IntegerDomain(0, 999), 10)
        many = BucketIndex(KEY, IntegerDomain(0, 999), 100)
        assert many.expected_superset_factor(0.1) < few.expected_superset_factor(0.1)

    def test_validation(self, index):
        with pytest.raises(ValueError):
            index.expected_superset_factor(0.0)
