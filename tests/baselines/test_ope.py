"""Unit tests for order-preserving encryption."""

import pytest

from repro.baselines.ope import OrderPreservingEncryption
from repro.core.order_preserving import IntegerDomain
from repro.errors import ConfigurationError, DomainError
from repro.sim.costmodel import CostRecorder

KEY = b"\x07" * 32


@pytest.fixture
def ope():
    return OrderPreservingEncryption(KEY, IntegerDomain(0, 1000))


class TestConstruction:
    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            OrderPreservingEncryption(b"x", IntegerDomain(0, 10))

    def test_small_expansion_rejected(self):
        with pytest.raises(ConfigurationError):
            OrderPreservingEncryption(KEY, IntegerDomain(0, 10), expansion_bits=4)


class TestMonotonicity:
    def test_strictly_increasing_dense(self):
        ope = OrderPreservingEncryption(KEY, IntegerDomain(0, 300))
        previous = -1
        for v in range(301):
            current = ope.encrypt(v)
            assert current > previous, v
            previous = current

    def test_strictly_increasing_sparse(self, ope):
        values = [0, 1, 7, 100, 500, 999, 1000]
        ciphers = [ope.encrypt(v) for v in values]
        assert ciphers == sorted(ciphers)
        assert len(set(ciphers)) == len(ciphers)

    def test_negative_domain(self):
        ope = OrderPreservingEncryption(KEY, IntegerDomain(-100, 100))
        assert ope.encrypt(-100) < ope.encrypt(0) < ope.encrypt(100)

    def test_deterministic(self, ope):
        assert ope.encrypt(42) == ope.encrypt(42)

    def test_key_dependence(self):
        domain = IntegerDomain(0, 1000)
        a = OrderPreservingEncryption(b"\x01" * 32, domain)
        b = OrderPreservingEncryption(b"\x02" * 32, domain)
        assert [a.encrypt(v) for v in (1, 2, 3)] != [b.encrypt(v) for v in (1, 2, 3)]

    def test_out_of_domain_rejected(self, ope):
        with pytest.raises(DomainError):
            ope.encrypt(1001)

    def test_singleton_domain(self):
        ope = OrderPreservingEncryption(KEY, IntegerDomain(5, 5))
        assert ope.encrypt(5) == 0


class TestRangeEncryption:
    def test_range_brackets_members_exactly(self, ope):
        lo, hi = ope.encrypt_range(100, 200)
        assert lo == ope.encrypt(100) and hi == ope.encrypt(200)
        assert lo <= ope.encrypt(150) <= hi
        assert ope.encrypt(99) < lo and ope.encrypt(201) > hi

    def test_range_clamps(self, ope):
        lo, hi = ope.encrypt_range(-50, 99999)
        assert lo == ope.encrypt(0) and hi == ope.encrypt(1000)

    def test_empty_range_rejected(self, ope):
        with pytest.raises(DomainError):
            ope.encrypt_range(5, 4)

    def test_cost_recorded(self, ope):
        cost = CostRecorder("t")
        ope.encrypt(500, cost=cost)
        assert cost.count("hash") >= 9  # ~log2(1001) descent steps


class TestWideDomains:
    def test_string_sized_domain(self):
        # 27^8 ≈ 2.8e11: descent depth ~38, must stay strict
        ope = OrderPreservingEncryption(KEY, IntegerDomain(0, 27**8 - 1))
        values = [0, 1, 27**4, 27**8 - 2, 27**8 - 1]
        ciphers = [ope.encrypt(v) for v in values]
        assert ciphers == sorted(ciphers)
        assert len(set(ciphers)) == len(ciphers)
