"""Unit tests for the toy Feistel cipher and row serialisation."""

import datetime
from decimal import Decimal

import pytest

from repro.baselines.cipher import (
    FeistelCipher,
    deserialize_row,
    serialize_row,
)
from repro.errors import EncodingError
from repro.sim.costmodel import CostRecorder

KEY = b"\x42" * 32


@pytest.fixture
def cipher():
    return FeistelCipher(KEY)


class TestBlocks:
    def test_block_roundtrip(self, cipher):
        for block in (0, 1, 2**63, 2**64 - 1, 0xDEADBEEFCAFEBABE):
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_encryption_changes_value(self, cipher):
        assert cipher.encrypt_block(0) != 0
        assert cipher.encrypt_block(1) != 1

    def test_key_dependence(self):
        a = FeistelCipher(b"\x01" * 32)
        b = FeistelCipher(b"\x02" * 32)
        assert a.encrypt_block(42) != b.encrypt_block(42)

    def test_short_key_rejected(self):
        with pytest.raises(EncodingError):
            FeistelCipher(b"short")

    def test_round_validation(self):
        with pytest.raises(EncodingError):
            FeistelCipher(KEY, rounds=1)


class TestBytes:
    def test_roundtrip(self, cipher):
        for plaintext in (b"", b"x", b"hello world", b"\x00" * 100, bytes(range(256))):
            assert cipher.decrypt_bytes(cipher.encrypt_bytes(plaintext)) == plaintext

    def test_length_is_block_multiple(self, cipher):
        assert len(cipher.encrypt_bytes(b"abc")) % 8 == 0

    def test_cbc_chaining_differs_across_blocks(self, cipher):
        # identical plaintext blocks must not produce identical ciphertext
        ciphertext = cipher.encrypt_bytes(b"A" * 16)
        assert ciphertext[:8] != ciphertext[8:16]

    def test_bad_length_rejected(self, cipher):
        with pytest.raises(EncodingError):
            cipher.decrypt_bytes(b"1234567")

    def test_wrong_key_detected_by_padding(self, cipher):
        other = FeistelCipher(b"\x99" * 32)
        blob = cipher.encrypt_bytes(b"secret")
        with pytest.raises(EncodingError):
            other.decrypt_bytes(blob)

    def test_cost_recorded(self, cipher):
        cost = CostRecorder("test")
        cipher.encrypt_bytes(b"x" * 24, cost=cost)
        assert cost.count("cipher_block") == 4  # 24 bytes + padding = 4 blocks

    def test_deterministic_token(self, cipher):
        assert cipher.deterministic_token(5) == cipher.deterministic_token(5)
        assert cipher.deterministic_token(5) != cipher.deterministic_token(6)


class TestRowSerialisation:
    def test_full_roundtrip(self):
        row = {
            "i": 42,
            "neg": -7,
            "s": "HELLO",
            "d": Decimal("19.99"),
            "t": datetime.date(2009, 3, 29),
            "b": True,
            "n": None,
        }
        assert deserialize_row(serialize_row(row)) == row

    def test_empty_row(self):
        assert deserialize_row(serialize_row({})) == {}

    def test_bool_not_confused_with_int(self):
        row = deserialize_row(serialize_row({"b": False, "i": 0}))
        assert row["b"] is False and row["i"] == 0

    def test_control_chars_rejected(self):
        with pytest.raises(EncodingError):
            serialize_row({"s": "a\x1fb"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            serialize_row({"x": [1, 2]})

    def test_cipher_roundtrip_of_row(self):
        cipher = FeistelCipher(KEY)
        row = {"name": "ALICE", "salary": 50000}
        blob = cipher.encrypt_bytes(serialize_row(row))
        assert deserialize_row(cipher.decrypt_bytes(blob)) == row
