"""Oracle-equivalence and behaviour tests for the encryption-model clients."""

import pytest

from repro import JoinSelect, parse_sql
from repro.baselines.encryption import (
    BucketizationClient,
    OPEClient,
    RowEncryptionClient,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import PlaintextExecutor, rows_equal_unordered
from repro.sqlengine.table import Table
from repro.workloads.employees import employees_table, managers_table

CLIENTS = [RowEncryptionClient, BucketizationClient, OPEClient]

QUERIES = [
    "SELECT * FROM Employees WHERE salary = 60000",
    "SELECT name FROM Employees WHERE salary BETWEEN 30000 AND 70000",
    "SELECT * FROM Employees WHERE department = 'ENG' AND salary > 40000",
    "SELECT * FROM Employees WHERE name LIKE 'M%'",
    "SELECT COUNT(*) FROM Employees WHERE salary > 50000",
    "SELECT SUM(salary) FROM Employees WHERE salary BETWEEN 10000 AND 90000",
    "SELECT AVG(salary) FROM Employees",
    "SELECT MIN(salary) FROM Employees WHERE department = 'HR'",
    "SELECT MAX(salary) FROM Employees",
    "SELECT MEDIAN(salary) FROM Employees WHERE salary > 20000",
    "SELECT * FROM Employees WHERE salary < 20000 OR salary > 90000",
]


@pytest.fixture(scope="module")
def tables():
    employees = employees_table(80, seed=21)
    managers = managers_table(employees, fraction=0.25, seed=21)
    return employees, managers


@pytest.fixture(scope="module")
def oracle(tables):
    employees, managers = tables
    catalog = Catalog()
    catalog.add_table(Table(employees.schema, employees.rows()))
    catalog.add_table(Table(managers.schema, managers.rows()))
    return PlaintextExecutor(catalog)


@pytest.fixture(params=CLIENTS, scope="module")
def client(request, tables):
    employees, managers = tables
    instance = request.param()
    instance.outsource_table(employees)
    instance.outsource_table(managers)
    return instance


class TestOracleEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_select_matches(self, client, oracle, sql):
        query = parse_sql(sql)
        mine = client.select(query)
        truth = oracle.execute(query)
        if isinstance(mine, list):
            assert rows_equal_unordered(mine, truth)
        else:
            assert mine == truth

    def test_join_matches(self, client, oracle):
        query = JoinSelect(
            "Employees", "Managers", "eid", "eid",
            columns=("Employees.name", "Managers.manager_username"),
        )
        assert rows_equal_unordered(client.join(query), oracle.execute(query))


class TestModelBehaviour:
    def test_row_encryption_always_full_scan(self, tables):
        employees, _ = tables
        client = RowEncryptionClient()
        client.outsource_table(employees)
        client.reset_accounting()
        client.select(parse_sql("SELECT * FROM Employees WHERE salary = 1"))
        # every blob decrypted despite zero matches
        assert client.cost.count("cipher_block") > len(employees)

    def test_bucketization_returns_superset(self, tables):
        """Bucket filtering transfers more rows than match (Sec. II-A)."""
        employees, _ = tables
        client = BucketizationClient(n_buckets=8)
        client.outsource_table(employees)
        client.reset_accounting()
        rows = client.select(
            parse_sql("SELECT * FROM Employees WHERE salary BETWEEN 50000 AND 51000")
        )
        decrypted_blocks = client.cost.count("cipher_block")
        # exact result is small, but whole buckets were decrypted
        matching = len(rows)
        assert decrypted_blocks > matching * 5

    def test_ope_filters_exactly(self, tables):
        employees, _ = tables
        client = OPEClient()
        client.outsource_table(employees)
        truth = [
            r for r in employees.rows() if 40000 <= r["salary"] <= 60000
        ]
        client.reset_accounting()
        rows = client.select(
            parse_sql("SELECT * FROM Employees WHERE salary BETWEEN 40000 AND 60000")
        )
        assert len(rows) == len(truth)
        server_rows_fetched = client.cost.count("cipher_block")
        # only matched blobs decrypted (each row ~ a handful of blocks)
        assert server_rows_fetched <= (len(truth) + 1) * 20

    def test_bucket_join_filters_false_positives(self, tables):
        """Bucket-token joins over-match; decrypt-then-filter must fix it."""
        employees, managers = tables
        client = BucketizationClient(n_buckets=4)  # coarse → collisions
        client.outsource_table(employees)
        client.outsource_table(managers)
        query = JoinSelect("Employees", "Managers", "eid", "eid")
        rows = client.join(query)
        truth_keys = {m["eid"] for m in managers.rows()}
        assert {r["Employees.eid"] for r in rows} == truth_keys
