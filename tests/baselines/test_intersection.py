"""Unit tests for the private-intersection contenders (EXP-T5)."""

import pytest

from repro.baselines.intersection import (
    SAFE_PRIME_256,
    CommutativeIntersection,
    plaintext_intersection,
    share_based_intersection,
)
from repro.core.field import is_probable_prime
from repro.core.order_preserving import IntegerDomain
from repro.errors import ConfigurationError


class TestGroup:
    def test_modulus_is_safe_prime(self):
        assert is_probable_prime(SAFE_PRIME_256)
        assert is_probable_prime((SAFE_PRIME_256 - 1) // 2)


class TestCommutative:
    def test_correct_intersection(self):
        a = list(range(0, 50))
        b = list(range(25, 80))
        result = CommutativeIntersection(seed=1).run(a, b)
        assert result.intersection == plaintext_intersection(a, b)

    def test_disjoint_sets(self):
        result = CommutativeIntersection(seed=2).run([1, 2], [3, 4])
        assert result.intersection == set()

    def test_identical_sets(self):
        result = CommutativeIntersection(seed=3).run([5, 6], [5, 6])
        assert result.intersection == {5, 6}

    def test_modexp_count_linear(self):
        a, b = list(range(10)), list(range(20))
        result = CommutativeIntersection(seed=4).run(a, b)
        # A: |a| + |b| modexp; B: |a| + |b| modexp
        assert result.total_modexp() == 2 * (len(a) + len(b))

    def test_bytes_scale_with_sets(self):
        small = CommutativeIntersection(seed=5).run(list(range(5)), list(range(5)))
        large = CommutativeIntersection(seed=5).run(list(range(50)), list(range(50)))
        assert large.bytes_transferred > 5 * small.bytes_transferred

    def test_modelled_time_dominated_by_modexp(self):
        result = CommutativeIntersection(seed=6).run(list(range(100)), list(range(100)))
        # 400 modexp at 1000/s → ≥ 0.4 s modelled
        assert result.modelled_seconds() >= 0.4


class TestShareBased:
    DOMAIN = IntegerDomain(0, 10**6)

    def test_correct_intersection(self):
        a = list(range(100, 300))
        b = list(range(250, 400))
        result = share_based_intersection(a, b, self.DOMAIN, seed=1)
        assert result.intersection == plaintext_intersection(a, b)

    def test_disjoint(self):
        result = share_based_intersection([1, 2], [3, 4], self.DOMAIN, seed=2)
        assert result.intersection == set()

    def test_no_modexp_used(self):
        result = share_based_intersection(
            list(range(50)), list(range(50)), self.DOMAIN, seed=3
        )
        assert result.total_modexp() == 0
        assert result.party_a_cost.count("poly_eval") > 0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            share_based_intersection(
                [1], [2], self.DOMAIN, n_providers=2, threshold=3
            )

    def test_orders_of_magnitude_cheaper(self):
        """The paper's core claim: sharing beats encryption by a lot."""
        a = list(range(0, 200))
        b = list(range(100, 300))
        crypto = CommutativeIntersection(seed=7).run(a, b)
        shared = share_based_intersection(a, b, self.DOMAIN, seed=7)
        assert shared.intersection == crypto.intersection
        assert crypto.modelled_seconds() > 100 * shared.modelled_seconds()
