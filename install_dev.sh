#!/bin/sh
# Editable install with an offline fallback.
#
# `pip install -e .` needs the `wheel` package for PEP 660 editable wheels;
# fully offline environments sometimes lack it.  In that case an editable
# install is equivalent to a path file pointing at src/, which this script
# writes instead.
set -e

if pip install -e . 2>/dev/null; then
    echo "installed via pip (editable)"
    exit 0
fi

echo "pip editable install unavailable (offline / no wheel); using a .pth file"
SITE=$(python -c "import site; print(site.getsitepackages()[0])")
echo "$(pwd)/src" > "$SITE/repro-dev.pth"
python -c "import repro; print('repro', repro.__version__, 'importable')"
